"""The two ways per-slot greedy optimization goes wrong (paper Figure 1).

Walks through the Section II-E counterexamples — greedy being too
aggressive (migrating for gains that a round trip erases) and too
conservative (never migrating although the gain persists) — and then shows
the regularized online algorithm navigating the same two systems, built as
real :class:`ProblemInstance` objects.

Run:  python examples/greedy_pitfalls.py
"""

import numpy as np

from repro import (
    OfflineOptimal,
    OnlineGreedy,
    OnlineRegularizedAllocator,
    ProblemInstance,
    total_cost,
)
from repro.experiments.fig1 import EXAMPLE_A, EXAMPLE_B, run_example
from repro.pricing.bandwidth import MigrationPrices


def paper_walkthrough() -> None:
    print("=== Paper Figure 1: worked examples ===")
    for example in (EXAMPLE_A, EXAMPLE_B):
        result = run_example(example)
        flavor = "aggressive" if example.name == "a" else "conservative"
        print(f"\nExample ({example.name}) - greedy is too {flavor}:")
        print(f"  user path        : {'-'.join(example.user_path)}")
        print(f"  inter-cloud delay: {example.inter_cloud_delay}")
        print(
            f"  greedy  : {'-'.join(result.greedy_placements)}  "
            f"cost {result.greedy_cost:.1f}"
        )
        print(
            f"  optimal : {'-'.join(result.optimal_placements)}  "
            f"cost {result.optimal_cost:.1f}"
        )
        print(f"  greedy pays {100 * result.gap:.0f}% extra")


def as_problem_instance(delay: float, path: list[int], num_repeats: int) -> ProblemInstance:
    """The Figure 1 system as a ProblemInstance, with the path repeated so
    the pattern recurs (and slot-0 provisioning amortizes away)."""
    full_path = path * num_repeats
    num_slots = len(full_path)
    return ProblemInstance(
        workloads=np.array([1.0]),
        capacities=np.array([2.0, 2.0]),
        op_prices=np.ones((num_slots, 2)),
        reconfig_prices=np.array([1.0, 1.0]),
        migration_prices=MigrationPrices(
            out=np.array([0.5, 0.5]), into=np.array([0.5, 0.5])
        ),
        inter_cloud_delay=np.array([[0.0, delay], [delay, 0.0]]),
        attachment=np.array([[p] for p in full_path]),
        access_delay=np.full((num_slots, 1), 1.5),
    )


def full_algorithms() -> None:
    print("\n=== The same systems, repeated over 30 slots ===")
    cases = [
        ("ping-pong user, delay 2.1 (greedy too aggressive)", 2.1, [0, 1, 0]),
        ("one-way user, delay 1.9 (greedy too conservative)", 1.9, [0, 1, 1]),
    ]
    for label, delay, path in cases:
        instance = as_problem_instance(delay, path, num_repeats=10)
        offline = total_cost(OfflineOptimal().run(instance), instance)
        greedy = total_cost(OnlineGreedy().run(instance), instance)
        approx = total_cost(OnlineRegularizedAllocator().run(instance), instance)
        print(f"\n{label}:")
        print(f"  offline-opt   {offline:7.2f}  (ratio 1.000)")
        print(f"  online-greedy {greedy:7.2f}  (ratio {greedy / offline:.3f})")
        print(f"  online-approx {approx:7.2f}  (ratio {approx / offline:.3f})")


if __name__ == "__main__":
    paper_walkthrough()
    full_algorithms()
