"""Random-walk mobility and scaling in the number of users (paper Figure 5).

Users ride the metro as a random walk over the station graph. This example
sweeps the user count, comparing online-approx and online-greedy against
the offline optimum, for both the paper's uniform walk and a dwell-biased
walk (a metro hop takes several one-minute slots) — the regime where
greedy's myopia shows.

Run:  python examples/random_walk_scaling.py
"""

from repro import (
    OfflineOptimal,
    OnlineGreedy,
    OnlineRegularizedAllocator,
    Scenario,
    compare_algorithms,
)
from repro.mobility import RandomWalkMobility
from repro.topology import rome_metro_topology

USER_COUNTS = (8, 16, 32)
SLOTS = 12


def sweep(stay_bias: float) -> None:
    topology = rome_metro_topology()
    mobility = RandomWalkMobility(topology, stay_bias=stay_bias)
    print(f"{'users':>6s} {'online-approx':>14s} {'online-greedy':>14s}")
    for num_users in USER_COUNTS:
        scenario = Scenario(
            topology=topology,
            mobility=mobility,
            num_users=num_users,
            num_slots=SLOTS,
        )
        instance = scenario.build(seed=2017 + num_users)
        comparison = compare_algorithms(
            [OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator()],
            instance,
        )
        print(
            f"{num_users:6d} "
            f"{comparison.ratio('online-approx'):14.3f} "
            f"{comparison.ratio('online-greedy'):14.3f}"
        )


def main() -> None:
    print("Uniform random walk (the paper's Section V-D process):")
    sweep(stay_bias=0.0)
    print("\nDwell-biased walk (hops take several slots):")
    sweep(stay_bias=3.0)
    print(
        "\nExpected shape: online-approx stays flat as users grow; greedy "
        "degrades once user positions persist long enough to matter."
    )


if __name__ == "__main__":
    main()
