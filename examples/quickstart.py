"""Quickstart: allocate resources for mobile users in Rome's edge clouds.

Builds the paper's evaluation scenario (15 edge clouds at Rome metro
stations, taxi-like user mobility, power-law workloads), runs the paper's
online algorithm against the offline optimum and the greedy baseline, and
prints the empirical competitive ratios plus a cost breakdown.

Run:  python examples/quickstart.py
"""

from repro import (
    OfflineOptimal,
    OnlineGreedy,
    OnlineRegularizedAllocator,
    Scenario,
    compare_algorithms,
)


def main() -> None:
    # A scenario is a reproducible experiment configuration; build() draws
    # a concrete instance (workloads, prices, mobility) from one seed.
    scenario = Scenario(num_users=20, num_slots=15)
    instance = scenario.build(seed=42)
    print(
        f"Instance: {instance.num_clouds} edge clouds, "
        f"{instance.num_users} users, {instance.num_slots} time slots, "
        f"total workload {instance.total_workload:.0f}"
    )

    comparison = compare_algorithms(
        [
            OfflineOptimal(),  # impractical hindsight baseline (= ratio 1)
            OnlineGreedy(),  # myopic per-slot optimization
            OnlineRegularizedAllocator(),  # the paper's algorithm
        ],
        instance,
    )

    print("\nEmpirical competitive ratios (total cost / offline optimum):")
    for name, ratio in comparison.ratios().items():
        print(f"  {name:15s} {ratio:.3f}")

    print("\nCost breakdown of online-approx:")
    breakdown = comparison.results["online-approx"].breakdown
    for component, value in breakdown.totals().items():
        print(f"  {component:15s} {value:10.2f}")

    improvement = comparison.improvement_over("online-approx", "online-greedy")
    if improvement >= 0:
        print(f"\nonline-approx is {100 * improvement:.1f}% cheaper than online-greedy")
    else:
        print(
            f"\nonline-approx is {-100 * improvement:.1f}% more expensive than "
            "online-greedy on this draw (they trade places instance by "
            "instance; see the Figure 2/5 benchmarks for aggregates)"
        )


if __name__ == "__main__":
    main()
