"""Telemetry quickstart: metrics, spans, and run manifests.

Runs a small three-algorithm comparison inside a telemetry session, then
shows the three things the session recorded (docs/OBSERVABILITY.md):

1. the metrics summary — solver iterations, warm-start hits, per-slot
   wall time, accumulated cost components;
2. the span tree — the nested `run` / `simulate` timings per algorithm;
3. a JSON-lines run manifest — written, read back, and cross-checked
   (each run's per-slot cost events must sum to its reported breakdown).

Telemetry observes only: the ratios printed here are bit-identical to a
run without the session.

Run:  python examples/telemetry_quickstart.py
"""

import tempfile
from pathlib import Path

from repro import (
    OfflineOptimal,
    OnlineGreedy,
    OnlineRegularizedAllocator,
    Scenario,
    compare_algorithms,
    telemetry_session,
    write_manifest,
)
from repro.analysis import load_manifest, verify_manifest_costs
from repro.telemetry import render_spans


def main() -> None:
    """Run the comparison under telemetry and inspect what it recorded."""
    instance = Scenario(num_users=10, num_slots=8).build(seed=7)

    with telemetry_session() as registry:
        comparison = compare_algorithms(
            [OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator()],
            instance,
        )

    print("Empirical competitive ratios (unchanged by telemetry):")
    for name, ratio in comparison.ratios().items():
        print(f"  {name:15s} {ratio:.3f}")

    # 1. Metrics: every counter/gauge/histogram the run touched.
    print("\n" + registry.summary_table())

    # 2. Spans: the timing tree, one `run` root per algorithm.
    print("\nspan tree")
    print("---------")
    print(render_spans(registry.snapshot()["spans"]))

    # 3. Manifest: persist, reload, and verify the cost accounting.
    path = Path(tempfile.gettempdir()) / "telemetry_quickstart.jsonl"
    write_manifest(path, registry, config={"example": "telemetry_quickstart"})
    record = load_manifest(path)
    print(f"manifest: {path} ({len(record.events)} events)")
    for check in verify_manifest_costs(record):
        status = "ok" if check.ok(tol=1e-9) else "MISMATCH"
        print(
            f"  {check.algorithm:15s} {check.slots:3d} slots  "
            f"total {check.summed['total']:10.2f}  "
            f"deviation {check.deviation:.1e}  {status}"
        )


if __name__ == "__main__":
    main()
