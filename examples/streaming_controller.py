"""Deploy-style usage: a controller that only ever sees the present.

In production the operator doesn't hold a ProblemInstance — each minute it
*observes* current prices and user attachments and must commit an
allocation. This example drives :class:`RegularizedController` through a
live observation stream, prints per-slot decisions as they happen, and
verifies at the end that the streamed trajectory matches the batch run
(which proves the batch implementation never peeked at the future).

Run:  python examples/streaming_controller.py
"""

import numpy as np

from repro import OnlineRegularizedAllocator, Scenario, total_cost
from repro.analysis import churn_timeline
from repro.simulation import (
    RegularizedController,
    SystemDescription,
    observations_from_instance,
    run_algorithm,
)

USERS = 10
SLOTS = 8


def main() -> None:
    instance = Scenario(num_users=USERS, num_slots=SLOTS).build(seed=11)
    system = SystemDescription.from_instance(instance)
    controller = RegularizedController(system)

    print(f"Streaming {SLOTS} one-minute slots ({USERS} users, 15 clouds)\n")
    decisions = []
    for observation in observations_from_instance(instance):
        x = controller.observe(observation)
        decisions.append(x)
        switches = int(
            np.sum(observation.attachment != instance.attachment[max(0, observation.slot - 1)])
        )
        active_clouds = int(np.sum(x.sum(axis=1) > 0.01))
        print(
            f"slot {observation.slot:2d}: {switches:2d} users moved, "
            f"allocation spread over {active_clouds:2d} clouds, "
            f"cheapest op price {observation.op_prices.min():.2f}"
        )

    from repro.core.allocation import AllocationSchedule

    streamed = AllocationSchedule.from_slots(decisions)
    batch = run_algorithm(OnlineRegularizedAllocator(), instance)

    print(f"\nstreamed total cost: {total_cost(streamed, instance):10.2f}")
    print(f"batch    total cost: {batch.total_cost:10.2f}")
    print(f"max allocation difference: {np.abs(streamed.x - batch.schedule.x).max():.2e}")
    churn = churn_timeline(batch)
    print(f"allocation churn per slot: {np.array2string(churn, precision=1)}")


if __name__ == "__main__":
    main()
