"""Batched P2 solves + zero-copy fan-out on the Figure 2 sweep.

The same sweep three ways — plain serial, lockstep-batched in one
process, and batched across a shared-memory process pool — verifying the
mean ratios are *identical* (not merely close) and printing the wall
clocks and the batching telemetry. The equivalent CLI invocation is:

    repro-edge fig2 --batch-solves --shm --workers 4

See docs/PERFORMANCE.md for how the batching works and what it buys.

Run:  python examples/batched_sweep.py
"""

import dataclasses
import time

from repro.experiments.fig2 import run_fig2
from repro.experiments.settings import ExperimentScale
from repro.telemetry import telemetry_session

HOURS = ("3pm", "4pm")


def run(scale: ExperimentScale, label: str):
    with telemetry_session() as registry:
        start = time.perf_counter()
        points = run_fig2(scale, hours=HOURS)
        wall_s = time.perf_counter() - start
    counters = registry.snapshot()["counters"]
    print(
        f"  {label:28s} {wall_s:6.2f}s"
        f"   ipm solves={counters.get('solver.ipm.solves', 0):.0f}"
        f"   batched instances={counters.get('solver.batched.instances', 0):.0f}"
    )
    return points


def main() -> None:
    base = ExperimentScale(num_users=16, num_slots=8, repetitions=2)
    print(
        f"Figure 2 sweep, hours {', '.join(HOURS)} "
        f"(users={base.num_users}, slots={base.num_slots}, "
        f"repetitions={base.repetitions}):"
    )
    plain = run(base, "serial")
    batched = run(
        dataclasses.replace(base, batch_solves=True), "batched (one process)"
    )
    pooled = run(
        dataclasses.replace(base, batch_solves=True, use_shm=True, workers=4),
        "batched + shm pool (x4)",
    )

    # The accelerated paths are bit-identical, so the ratio statistics
    # must match exactly — no tolerance.
    for fast, label in ((batched, "batched"), (pooled, "batched+shm")):
        assert all(
            p.label == q.label and p.stats == q.stats
            for p, q in zip(plain, fast)
        ), f"{label} diverged from serial"
    print("\nAll three runs produced identical ratio statistics.")

    print("\nMean competitive ratios (identical across paths):")
    for point in plain:
        print(
            f"  {point.label:6s} online-approx "
            f"{point.mean_ratio('online-approx'):.3f}   "
            f"online-greedy {point.mean_ratio('online-greedy'):.3f}"
        )


if __name__ == "__main__":
    main()
