"""VM-granular allocation: rounding the fractional optimum to whole VMs.

The paper's decisions are fractional, but VMs are "the smallest resource
segment in the edge clouds". This example runs the online algorithm, rounds
every slot to integral allocations (largest-remainder per user + capacity
repair), and quantifies the integrality premium and how the rounded
trajectory differs.

Run:  python examples/integral_allocation.py
"""

import numpy as np

from repro import (
    OfflineOptimal,
    OnlineRegularizedAllocator,
    Scenario,
    cost_breakdown,
    total_cost,
)
from repro.core.rounding import integrality_gap


def main() -> None:
    instance = Scenario(num_users=12, num_slots=10).build(seed=5)
    offline_cost = total_cost(OfflineOptimal().run(instance), instance)

    fractional = OnlineRegularizedAllocator().run(instance)
    rounded, gap = integrality_gap(fractional, instance)

    print("online-approx, fractional vs integral (VM-granular):")
    print(f"  fractional ratio : {total_cost(fractional, instance) / offline_cost:.3f}")
    print(f"  integral ratio   : {total_cost(rounded, instance) / offline_cost:.3f}")
    print(f"  integrality gap  : {100 * gap:.2f}%")

    assert np.allclose(rounded.x, np.rint(rounded.x))
    assert rounded.is_feasible(instance)
    print("\nintegral schedule: feasible, every allocation a whole number of VMs")

    # Where does the premium come from? Compare cost components.
    frac = cost_breakdown(fractional, instance).totals()
    integ = cost_breakdown(rounded, instance).totals()
    print(f"\n{'component':16s} {'fractional':>12s} {'integral':>12s}")
    for key in ("operation", "service_quality", "reconfiguration", "migration"):
        print(f"{key:16s} {frac[key]:12.2f} {integ[key]:12.2f}")

    # The rounded trajectory still tracks the fractional one closely.
    drift = np.abs(rounded.x - fractional.x).max()
    print(f"\nlargest per-entry deviation from the fractional plan: {drift:.2f} VMs")


if __name__ == "__main__":
    main()
