"""Live watching: stream a run's manifest and tail it while it runs.

One process, two threads, the full streaming stack:

* a worker thread runs a three-algorithm comparison inside
  :func:`repro.telemetry.streaming_manifest_session` — every slot event
  is appended to the manifest file as it happens, the default watchdog
  rules scan the stream for anomalies, and nothing accumulates in
  memory (``max_events=0``);
* the main thread tails the growing file with the same machinery behind
  ``repro-edge watch`` (:class:`repro.telemetry.ManifestTail` feeding a
  :class:`repro.telemetry.WatchState`) and renders dashboard frames
  until the ``manifest_end`` record lands.

Afterwards the finalized manifest is read back, its cost accounting is
verified, and the span tree is exported as a Chrome ``trace_event`` file
(load it in ``chrome://tracing`` or https://ui.perfetto.dev).

In real use the two sides are separate processes::

    repro-edge fig2 --telemetry run.jsonl --stream --watchdog   # terminal 1
    repro-edge watch run.jsonl --strict                         # terminal 2

Run:  python examples/live_watch.py
"""

import tempfile
import threading
import time
from pathlib import Path

from repro import (
    OfflineOptimal,
    OnlineGreedy,
    OnlineRegularizedAllocator,
    Scenario,
    compare_algorithms,
)
from repro.analysis import load_manifest, verify_manifest_costs
from repro.telemetry import (
    ManifestTail,
    WatchState,
    default_rules,
    streaming_manifest_session,
    write_chrome_trace,
)


def run_comparison(path: Path) -> None:
    """Worker: run the comparison, streaming telemetry into ``path``."""
    instance = Scenario(num_users=10, num_slots=8).build(seed=7)
    with streaming_manifest_session(
        path,
        config={"example": "live_watch"},
        flush_interval_s=0.05,  # tight flushes so the tail sees slots early
        watchdog_rules=default_rules(),
    ):
        compare_algorithms(
            [OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator()],
            instance,
        )


def main() -> None:
    """Stream a run into a manifest and watch it live from another thread."""
    path = Path(tempfile.gettempdir()) / "live_watch.jsonl"
    path.unlink(missing_ok=True)

    worker = threading.Thread(target=run_comparison, args=(path,))
    worker.start()

    # Tail the file the worker is writing. This is what `repro-edge watch`
    # does, unrolled so the pieces are visible.
    tail = ManifestTail(path)
    state = WatchState()
    frame = 0
    while not state.done:
        state.update_all(tail.poll())
        frame += 1
        print(f"--- frame {frame} " + "-" * 48)
        print(state.render(title=str(path)))
        time.sleep(0.1)
    worker.join()

    # The finalized manifest is a complete, verifiable run record.
    record = load_manifest(path)
    checks = verify_manifest_costs(record)
    print(f"\nfinalized: {len(record.events)} events, "
          f"{len(checks)} runs cost-verified")

    trace_path = path.with_suffix(".trace.json")
    write_chrome_trace(trace_path, record.spans)
    print(f"chrome trace: {trace_path} (open in chrome://tracing)")


if __name__ == "__main__":
    main()
