"""A working day of edge-cloud allocation in Rome (paper Figure 2 setting).

Simulates several "hours" of taxi mobility over the 15 metro-station edge
clouds, runs the full algorithm roster on each hour, prints the paper-style
ratio table, and archives the traces (CSV) and results (JSON) under
``./out`` — the artifacts a real evaluation would keep.

Run:  python examples/rome_taxi_day.py
"""

from pathlib import Path

import numpy as np

from repro import Scenario, aggregate_ratios, compare_algorithms
from repro.experiments import all_paper_algorithms, format_mean_std, format_table
from repro.io import save_comparison_json, save_trace_csv
from repro.mobility import TaxiMobility
from repro.topology import rome_metro_topology

HOURS = ("3pm", "4pm", "5pm")
USERS = 16
SLOTS = 12
REPETITIONS = 2
OUT_DIR = Path(__file__).parent / "out"


def main() -> None:
    topology = rome_metro_topology()
    scenario = Scenario(num_users=USERS, num_slots=SLOTS)
    algorithms = all_paper_algorithms()
    OUT_DIR.mkdir(exist_ok=True)

    rows = []
    for case, hour in enumerate(HOURS):
        comparisons = []
        for rep in range(REPETITIONS):
            seed = 2017 + 1000 * case + rep
            instance = scenario.build(seed=seed)
            comparison = compare_algorithms(algorithms, instance)
            comparisons.append(comparison)
            save_comparison_json(comparison, OUT_DIR / f"{hour}_rep{rep}.json")
        stats = aggregate_ratios(comparisons)
        rows.append(
            [hour]
            + [
                format_mean_std(*stats[name])
                for name in sorted(stats)
                if name != "offline-opt"
            ]
        )
        print(f"{hour}: done ({REPETITIONS} repetitions)")

    names = [a.name for a in algorithms if a.name != "offline-opt"]
    print()
    print(format_table(["hour", *sorted(names)], rows))

    # Archive one trace for inspection (e.g. replay or plotting).
    trace = TaxiMobility(topology).generate(USERS, SLOTS, np.random.default_rng(2017))
    trace_path = OUT_DIR / "taxi_trace_3pm.csv"
    save_trace_csv(trace, trace_path)
    print(f"\nResults in {OUT_DIR}/ (ratio JSONs + {trace_path.name})")


if __name__ == "__main__":
    main()
