""""Arbitrary user mobility": the same algorithm under four movement laws.

The paper's central claim is that its guarantee needs no mobility
assumptions. This example runs online-approx (and greedy) under four
structurally different mobility processes — smooth taxi trips, the paper's
uniform metro walk, a lazy Markov walk, heavy-tailed Levy flights — then
prints the trace statistics, the ratio table, and the dual "congestion
rents" the interior-point solver exposes for the busiest process.

Run:  python examples/mobility_robustness.py
"""

import numpy as np

from repro import OnlineRegularizedAllocator, Scenario
from repro.analysis import extract_dual_prices
from repro.experiments import ExperimentScale, ratio_table
from repro.experiments.robustness import (
    mobility_suite,
    robustness_spread,
    run_mobility_robustness,
)
from repro.mobility import trace_stats
from repro.solvers import get_backend
from repro.topology import rome_metro_topology


def main() -> None:
    topology = rome_metro_topology()

    print("Trace statistics of each mobility process (20 users, 15 slots):")
    print(f"{'process':14s} {'switch rate':>12s} {'mean dwell':>11s} {'entropy':>8s}")
    for name, model in mobility_suite(topology).items():
        stats = trace_stats(model.generate(20, 15, np.random.default_rng(1)))
        print(
            f"{name:14s} {stats.switch_rate:12.3f} "
            f"{stats.mean_dwell:11.2f} {stats.occupancy_entropy:8.2f}"
        )

    scale = ExperimentScale(num_users=10, num_slots=8, repetitions=2)
    points = run_mobility_robustness(scale)
    print("\nEmpirical competitive ratios under each process:")
    print(ratio_table(points, axis_name="mobility"))
    spread = robustness_spread(points, "online-approx")
    print(f"\nonline-approx spread across processes: {spread:.3f}")

    # The economic view: congestion rents under the uniform walk.
    scenario = Scenario(
        topology=topology,
        mobility=mobility_suite(topology)["uniform-walk"],
        num_users=10,
        num_slots=8,
    )
    instance = scenario.build(seed=3)
    algorithm = OnlineRegularizedAllocator(backend=get_backend("ipm"))
    algorithm.run(instance)
    prices = extract_dual_prices(algorithm)
    slot, cloud, rent = prices.peak_congestion()
    print(
        f"\npeak congestion rent: cloud {topology.names[cloud]!r} "
        f"at slot {slot} (rent {rent:.2f}); "
        f"{int(prices.congested_clouds().sum())} congested (slot, cloud) pairs"
    )


if __name__ == "__main__":
    main()
