"""Tuning the regularization parameter eps (paper Figure 4, left).

Theorem 2 gives the worst-case ratio r = 1 + gamma|I| with gamma shrinking
as eps grows, while the empirical ratio follows its own curve. This example
sweeps eps on a fixed scenario, prints both curves side by side, and shows
the heuristic default from :func:`repro.core.bounds.suggest_epsilon`.

Run:  python examples/parameter_tuning.py
"""

import numpy as np

from repro import (
    OfflineOptimal,
    OnlineRegularizedAllocator,
    Scenario,
    competitive_ratio_bound,
    total_cost,
)
from repro.core.bounds import suggest_epsilon

EPS_VALUES = [1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3]


def main() -> None:
    scenario = Scenario(num_users=12, num_slots=10)
    instance = scenario.build(seed=7)
    offline_cost = total_cost(OfflineOptimal().run(instance), instance)

    print(f"{'eps':>10s} {'empirical ratio':>16s} {'Theorem 2 bound':>16s}")
    for eps in EPS_VALUES:
        algorithm = OnlineRegularizedAllocator(eps1=eps, eps2=eps)
        cost = total_cost(algorithm.run(instance), instance)
        bound = competitive_ratio_bound(instance, eps, eps)
        print(f"{eps:10g} {cost / offline_cost:16.3f} {bound:16.4g}")

    suggested = suggest_epsilon(instance)
    algorithm = OnlineRegularizedAllocator(eps1=suggested, eps2=suggested)
    cost = total_cost(algorithm.run(instance), instance)
    print(
        f"\nsuggest_epsilon() -> {suggested:.3g} "
        f"(empirical ratio {cost / offline_cost:.3f})"
    )
    print(
        "\nNote: the theoretical bound decreases monotonically in eps "
        "(Remark after Theorem 2); the empirical curve is far below it and "
        "nearly flat, matching the paper's Figure 4."
    )


if __name__ == "__main__":
    main()
