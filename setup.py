"""Legacy setup shim.

This environment is offline and lacks the ``wheel`` package, so modern
PEP 517/660 editable installs cannot build; ``pip install -e .`` uses this
shim via the legacy ``setup.py develop`` path instead. All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
