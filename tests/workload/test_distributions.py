"""Tests for the workload distributions of Section V-A."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import (
    WORKLOAD_DISTRIBUTIONS,
    make_workloads,
    normal_workloads,
    power_workloads,
    uniform_workloads,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestPower:
    def test_integer_and_at_least_one(self):
        w = power_workloads(500, rng())
        assert w.dtype == np.int64
        assert w.min() >= 1

    def test_cap_respected(self):
        w = power_workloads(2000, rng(), max_workload=20)
        assert w.max() <= 20

    def test_skewed(self):
        # Power-law workloads are right-skewed: mean > median.
        w = power_workloads(5000, rng())
        assert w.mean() > np.median(w)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            power_workloads(10, rng(), exponent=0.0)
        with pytest.raises(ValueError):
            power_workloads(10, rng(), scale=-1.0)
        with pytest.raises(ValueError):
            power_workloads(-1, rng())

    def test_empty(self):
        assert power_workloads(0, rng()).shape == (0,)


class TestUniform:
    def test_range(self):
        w = uniform_workloads(1000, rng(), low=2, high=7)
        assert w.min() >= 2
        assert w.max() <= 7

    def test_all_values_hit(self):
        w = uniform_workloads(3000, rng(), low=1, high=5)
        assert set(np.unique(w)) == {1, 2, 3, 4, 5}

    def test_degenerate_range(self):
        w = uniform_workloads(10, rng(), low=3, high=3)
        assert np.all(w == 3)

    @pytest.mark.parametrize("low,high", [(0, 5), (5, 4), (-2, 3)])
    def test_invalid_range(self, low, high):
        with pytest.raises(ValueError):
            uniform_workloads(10, rng(), low=low, high=high)


class TestNormal:
    def test_truncated_at_one(self):
        w = normal_workloads(2000, rng(), mean=1.0, std=3.0)
        assert w.min() >= 1

    def test_mean_roughly_respected(self):
        w = normal_workloads(5000, rng(), mean=10.0, std=2.0)
        assert 9.0 < w.mean() < 11.0

    def test_zero_std(self):
        w = normal_workloads(10, rng(), mean=4.0, std=0.0)
        assert np.all(w == 4)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            normal_workloads(10, rng(), std=-1.0)


class TestDispatch:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_DISTRIBUTIONS))
    def test_known_names(self, name):
        w = make_workloads(name, 20, rng())
        assert w.shape == (20,)
        assert w.min() >= 1

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown workload distribution"):
            make_workloads("cauchy", 10, rng())

    def test_kwargs_forwarded(self):
        w = make_workloads("uniform", 100, rng(), low=4, high=4)
        assert np.all(w == 4)

    def test_deterministic_given_generator_state(self):
        a = make_workloads("power", 50, rng(123))
        b = make_workloads("power", 50, rng(123))
        assert np.array_equal(a, b)


@given(
    name=st.sampled_from(sorted(WORKLOAD_DISTRIBUTIONS)),
    n=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_property_always_valid_workloads(name, n, seed):
    """Every distribution yields integer workloads >= 1 (Lemma 6 assumption)."""
    w = make_workloads(name, n, np.random.default_rng(seed))
    assert w.shape == (n,)
    assert np.issubdtype(w.dtype, np.integer)
    if n:
        assert w.min() >= 1
