"""Tests for operation-price generation (Section V-A)."""

import numpy as np
import pytest

from repro.pricing.operation import (
    PRICE_FLOOR_FRACTION,
    base_operation_prices,
    gaussian_operation_prices,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBasePrices:
    def test_inverse_to_capacity(self):
        capacities = np.array([10.0, 20.0, 40.0])
        base = base_operation_prices(capacities)
        # Price ratios are the inverse capacity ratios.
        assert base[0] / base[1] == pytest.approx(2.0)
        assert base[1] / base[2] == pytest.approx(2.0)

    def test_capacity_weighted_mean_is_reference(self):
        capacities = np.array([5.0, 15.0, 30.0])
        base = base_operation_prices(capacities, reference_price=2.0)
        weighted = float(np.sum(base * capacities) / capacities.sum())
        assert weighted == pytest.approx(2.0)

    def test_positive(self):
        base = base_operation_prices(np.array([1.0, 100.0, 10000.0]))
        assert np.all(base > 0)

    @pytest.mark.parametrize("bad", [np.array([]), np.array([1.0, 0.0]), np.array([-1.0])])
    def test_invalid_capacities(self, bad):
        with pytest.raises(ValueError):
            base_operation_prices(bad)


class TestGaussianPrices:
    def test_shape(self):
        prices = gaussian_operation_prices(np.array([10.0, 20.0]), 7, rng())
        assert prices.shape == (7, 2)

    def test_strictly_positive(self):
        # Huge std would drive many samples negative without the floor.
        prices = gaussian_operation_prices(
            np.array([10.0, 20.0]), 500, rng(), std_fraction=5.0
        )
        assert np.all(prices > 0)

    def test_floor_value(self):
        capacities = np.array([10.0])
        base = base_operation_prices(capacities)
        prices = gaussian_operation_prices(capacities, 2000, rng(), std_fraction=10.0)
        assert prices.min() >= PRICE_FLOOR_FRACTION * base[0] - 1e-12

    def test_mean_tracks_base(self):
        capacities = np.array([10.0, 40.0])
        base = base_operation_prices(capacities)
        prices = gaussian_operation_prices(capacities, 20000, rng(), std_fraction=0.1)
        assert np.allclose(prices.mean(axis=0), base, rtol=0.05)

    def test_paper_volatility_default(self):
        # Paper: std is half of the base price.
        capacities = np.array([10.0])
        base = base_operation_prices(capacities)[0]
        prices = gaussian_operation_prices(capacities, 50000, rng())
        # Floor-clipping biases the std slightly low; stay loose.
        assert prices.std() == pytest.approx(0.5 * base, rel=0.15)

    def test_zero_slots(self):
        prices = gaussian_operation_prices(np.array([5.0]), 0, rng())
        assert prices.shape == (0, 1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            gaussian_operation_prices(np.array([5.0]), -1, rng())
        with pytest.raises(ValueError):
            gaussian_operation_prices(np.array([5.0]), 3, rng(), std_fraction=-0.1)

    def test_deterministic_per_seed(self):
        capacities = np.array([3.0, 6.0])
        a = gaussian_operation_prices(capacities, 5, rng(9))
        b = gaussian_operation_prices(capacities, 5, rng(9))
        assert np.array_equal(a, b)
