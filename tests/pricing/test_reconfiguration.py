"""Tests for reconfiguration-price generation (Section V-A)."""

import numpy as np
import pytest

from repro.pricing.reconfiguration import gaussian_reconfiguration_prices


def rng(seed=0):
    return np.random.default_rng(seed)


class TestReconfigurationPrices:
    def test_shape(self):
        prices = gaussian_reconfiguration_prices(8, rng())
        assert prices.shape == (8,)

    def test_strictly_positive_despite_heavy_tail(self):
        # mean 0.1, std 5: nearly half the raw draws are negative.
        prices = gaussian_reconfiguration_prices(2000, rng(), mean=0.1, std=5.0)
        assert np.all(prices > 0)

    def test_mean_roughly_respected(self):
        prices = gaussian_reconfiguration_prices(20000, rng(), mean=2.0, std=0.2)
        assert prices.mean() == pytest.approx(2.0, rel=0.05)

    def test_zero_std_gives_constant(self):
        prices = gaussian_reconfiguration_prices(10, rng(), mean=1.5, std=0.0)
        assert np.allclose(prices, 1.5)

    def test_varies_across_clouds(self):
        prices = gaussian_reconfiguration_prices(50, rng(), mean=1.0, std=0.5)
        assert np.unique(prices).size > 1

    def test_empty(self):
        assert gaussian_reconfiguration_prices(0, rng()).shape == (0,)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            gaussian_reconfiguration_prices(-1, rng())
        with pytest.raises(ValueError):
            gaussian_reconfiguration_prices(5, rng(), mean=0.0)
        with pytest.raises(ValueError):
            gaussian_reconfiguration_prices(5, rng(), std=-1.0)

    def test_deterministic_per_seed(self):
        a = gaussian_reconfiguration_prices(10, rng(4))
        b = gaussian_reconfiguration_prices(10, rng(4))
        assert np.array_equal(a, b)
