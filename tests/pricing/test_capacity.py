"""Tests for capacity provisioning (Section V-A)."""

import numpy as np
import pytest

from repro.pricing.capacity import (
    DEFAULT_OVERPROVISION,
    attachment_frequency,
    provision_capacities,
)


class TestAttachmentFrequency:
    def test_counts(self):
        attachment = np.array([[0, 1, 1], [2, 1, 0]])
        freq = attachment_frequency(attachment, num_clouds=4)
        assert list(freq) == [2, 3, 1, 0]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            attachment_frequency(np.array([[0, 5]]), num_clouds=3)

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            attachment_frequency(np.array([0, 1, 2]), num_clouds=3)


class TestProvisionCapacities:
    def test_total_is_125_percent(self):
        workloads = np.array([4.0, 6.0])
        attachment = np.zeros((3, 2), dtype=int)
        caps = provision_capacities(workloads, attachment, num_clouds=3)
        assert caps.sum() == pytest.approx(DEFAULT_OVERPROVISION * 10.0)

    def test_proportional_to_frequency(self):
        workloads = np.array([10.0])
        # Cloud 0 visited 3x, cloud 1 once; smoothing=0 keeps exact ratios.
        attachment = np.array([[0], [0], [0], [1]])
        caps = provision_capacities(
            workloads, attachment, num_clouds=2, smoothing=0.0
        )
        assert caps[0] / caps[1] == pytest.approx(3.0)

    def test_smoothing_gives_unvisited_clouds_capacity(self):
        workloads = np.array([10.0])
        attachment = np.zeros((4, 1), dtype=int)
        caps = provision_capacities(workloads, attachment, num_clouds=3)
        assert np.all(caps > 0)

    def test_custom_overprovision(self):
        workloads = np.array([2.0, 2.0])
        attachment = np.zeros((1, 2), dtype=int)
        caps = provision_capacities(
            workloads, attachment, num_clouds=2, overprovision=2.0
        )
        assert caps.sum() == pytest.approx(8.0)

    def test_invalid_overprovision(self):
        with pytest.raises(ValueError):
            provision_capacities(
                np.array([1.0]), np.zeros((1, 1), dtype=int), 1, overprovision=0.0
            )

    def test_negative_smoothing(self):
        with pytest.raises(ValueError):
            provision_capacities(
                np.array([1.0]), np.zeros((1, 1), dtype=int), 1, smoothing=-1.0
            )

    def test_zero_workload_rejected(self):
        with pytest.raises(ValueError):
            provision_capacities(
                np.array([0.0]), np.zeros((1, 1), dtype=int), 1
            )

    def test_feasibility_invariant(self):
        # Provisioned capacity always covers total workload (P0 feasible).
        rng = np.random.default_rng(0)
        for _ in range(20):
            j = int(rng.integers(1, 30))
            i = int(rng.integers(1, 10))
            t = int(rng.integers(1, 15))
            workloads = rng.integers(1, 20, size=j).astype(float)
            attachment = rng.integers(0, i, size=(t, j))
            caps = provision_capacities(workloads, attachment, num_clouds=i)
            assert caps.sum() >= workloads.sum()
            assert np.all(caps > 0)
