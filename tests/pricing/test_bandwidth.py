"""Tests for migration (bandwidth) pricing: the three-ISP clusters."""

import numpy as np
import pytest

from repro.pricing.bandwidth import (
    ISP_RATES,
    MigrationPrices,
    isp_cluster_assignment,
    isp_migration_prices,
)


class TestMigrationPrices:
    def test_combined(self):
        prices = MigrationPrices(out=np.array([1.0, 2.0]), into=np.array([0.5, 0.5]))
        assert np.allclose(prices.combined, [1.5, 2.5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MigrationPrices(out=np.array([1.0]), into=np.array([1.0, 2.0]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MigrationPrices(out=np.array([-1.0]), into=np.array([1.0]))


class TestClusterAssignment:
    def test_round_robin_without_rng(self):
        clusters = isp_cluster_assignment(7)
        assert list(clusters) == [0, 1, 2, 0, 1, 2, 0]

    def test_shuffled_with_rng_is_permutation(self):
        base = isp_cluster_assignment(9)
        shuffled = isp_cluster_assignment(9, np.random.default_rng(0))
        assert sorted(base) == sorted(shuffled)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            isp_cluster_assignment(-1)


class TestIspPrices:
    def test_paper_rates(self):
        # Tiscali 2.49, Vodafone 4.86, Infostrada-Wind 1.25 EUR/Mbps-month.
        assert [rate for _, rate in ISP_RATES] == [2.49, 4.86, 1.25]

    def test_relative_ratios_preserved(self):
        prices = isp_migration_prices(3)  # round-robin: one cloud per ISP
        combined = prices.combined
        assert combined[1] / combined[0] == pytest.approx(4.86 / 2.49)
        assert combined[2] / combined[0] == pytest.approx(1.25 / 2.49)

    def test_reference_price_is_mean(self):
        prices = isp_migration_prices(6, reference_price=3.0)
        assert prices.combined.mean() == pytest.approx(3.0)

    def test_symmetric_split_default(self):
        prices = isp_migration_prices(5)
        assert np.allclose(prices.out, prices.into)

    def test_asymmetric_split(self):
        prices = isp_migration_prices(5, outbound_fraction=0.25)
        assert np.allclose(prices.out, prices.combined * 0.25)
        assert np.allclose(prices.into, prices.combined * 0.75)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            isp_migration_prices(3, outbound_fraction=1.5)

    def test_negative_reference(self):
        with pytest.raises(ValueError):
            isp_migration_prices(3, reference_price=-1.0)

    def test_empty(self):
        prices = isp_migration_prices(0)
        assert prices.out.shape == (0,)

    def test_rng_shuffles_clusters(self):
        a = isp_migration_prices(9, rng=np.random.default_rng(1))
        b = isp_migration_prices(9)
        assert sorted(a.combined) == pytest.approx(sorted(b.combined))
