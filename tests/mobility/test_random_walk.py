"""Tests for the random-walk mobility of Section V-D."""

import numpy as np
import pytest

from repro.mobility.random_walk import RandomWalkMobility
from repro.topology.generators import ring_topology
from repro.topology.metro import rome_metro_topology


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRandomWalk:
    def test_shape_and_range(self):
        topo = rome_metro_topology()
        trace = RandomWalkMobility(topo).generate(10, 8, rng())
        assert trace.attachment.shape == (8, 10)
        assert trace.attachment.min() >= 0
        assert trace.attachment.max() < topo.num_sites

    def test_zero_access_delay(self):
        # Users sit exactly at stations: d(j, l_{j,t}) = 0.
        topo = rome_metro_topology()
        trace = RandomWalkMobility(topo).generate(5, 5, rng())
        assert np.all(trace.access_delay == 0.0)

    def test_moves_only_to_neighbors_or_stays(self):
        topo = rome_metro_topology()
        trace = RandomWalkMobility(topo).generate(20, 30, rng())
        for t in range(1, trace.num_slots):
            for j in range(trace.num_users):
                prev = int(trace.attachment[t - 1, j])
                curr = int(trace.attachment[t, j])
                assert curr == prev or curr in topo.neighbors(prev)

    def test_uniform_choice_probabilities(self):
        # On a ring every site has 2 neighbors: stay probability should be
        # ~1/3 (uniform over {stay, left, right}), the paper's rule.
        topo = ring_topology(6)
        trace = RandomWalkMobility(topo).generate(300, 40, rng())
        stays = np.mean(trace.attachment[1:] == trace.attachment[:-1])
        assert stays == pytest.approx(1.0 / 3.0, abs=0.03)

    def test_stay_bias_increases_dwell(self):
        topo = rome_metro_topology()
        uniform = RandomWalkMobility(topo).generate(100, 30, rng(1))
        lazy = RandomWalkMobility(topo, stay_bias=4.0).generate(100, 30, rng(1))
        assert lazy.switch_count() < uniform.switch_count()

    def test_negative_bias_rejected(self):
        with pytest.raises(ValueError):
            RandomWalkMobility(rome_metro_topology(), stay_bias=-0.5)

    def test_deterministic_per_seed(self):
        topo = rome_metro_topology()
        model = RandomWalkMobility(topo)
        a = model.generate(5, 10, rng(7))
        b = model.generate(5, 10, rng(7))
        assert np.array_equal(a.attachment, b.attachment)

    def test_empty_cases(self):
        topo = rome_metro_topology()
        model = RandomWalkMobility(topo)
        assert model.generate(0, 5, rng()).attachment.shape == (5, 0)
        assert model.generate(5, 0, rng()).attachment.shape == (0, 5)

    def test_negative_counts_rejected(self):
        model = RandomWalkMobility(rome_metro_topology())
        with pytest.raises(ValueError):
            model.generate(-1, 5, rng())
        with pytest.raises(ValueError):
            model.generate(5, -1, rng())

    def test_all_stations_reachable_long_run(self):
        # The metro graph is connected, so a long walk visits everything.
        topo = rome_metro_topology()
        trace = RandomWalkMobility(topo).generate(30, 200, rng(3))
        assert set(np.unique(trace.attachment)) == set(range(topo.num_sites))
