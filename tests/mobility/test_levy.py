"""Tests for Levy-flight mobility."""

import numpy as np
import pytest

from repro.mobility.attachment import nearest_cloud_attachment
from repro.mobility.levy import LevyFlightMobility, _reflect
from repro.mobility.stats import trace_stats
from repro.topology.metro import rome_metro_topology


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(scope="module")
def topo():
    return rome_metro_topology()


class TestLevyFlight:
    def test_shapes(self, topo):
        trace = LevyFlightMobility(topo).generate(5, 8, rng())
        assert trace.attachment.shape == (8, 5)
        assert trace.positions.shape == (8, 5, 2)

    def test_positions_inside_bounding_box(self, topo):
        trace = LevyFlightMobility(topo).generate(20, 40, rng(1))
        lat_min, lat_max, lon_min, lon_max = topo.bounding_box()
        assert trace.positions[..., 0].min() >= lat_min - 1e-9
        assert trace.positions[..., 0].max() <= lat_max + 1e-9
        assert trace.positions[..., 1].min() >= lon_min - 1e-9
        assert trace.positions[..., 1].max() <= lon_max + 1e-9

    def test_attachment_is_nearest(self, topo):
        trace = LevyFlightMobility(topo).generate(6, 10, rng(2))
        attachment, delay = nearest_cloud_attachment(trace.positions, topo)
        assert np.array_equal(trace.attachment, attachment)
        assert np.allclose(trace.access_delay, delay)

    def test_heavy_tail_jump_lengths(self, topo):
        model = LevyFlightMobility(topo, min_jump_km=0.1, max_jump_km=10.0)
        lengths = model._jump_lengths(rng(3), 20_000)
        assert lengths.min() >= 0.1 - 1e-12
        assert lengths.max() <= 10.0 + 1e-12
        # Heavy tail: the mean far exceeds the median.
        assert lengths.mean() > 1.5 * np.median(lengths)

    def test_pause_probability_reduces_switching(self, topo):
        mobile = LevyFlightMobility(topo, pause_probability=0.0).generate(
            50, 20, rng(4)
        )
        paused = LevyFlightMobility(topo, pause_probability=0.9).generate(
            50, 20, rng(4)
        )
        assert trace_stats(paused).switch_rate < trace_stats(mobile).switch_rate

    def test_deterministic_per_seed(self, topo):
        model = LevyFlightMobility(topo)
        a = model.generate(4, 6, rng(9))
        b = model.generate(4, 6, rng(9))
        assert np.array_equal(a.attachment, b.attachment)

    def test_empty(self, topo):
        model = LevyFlightMobility(topo)
        assert model.generate(0, 3, rng()).attachment.shape == (3, 0)
        assert model.generate(3, 0, rng()).attachment.shape == (0, 3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 1.0},
            {"min_jump_km": 0.0},
            {"min_jump_km": 5.0, "max_jump_km": 1.0},
            {"pause_probability": 1.0},
        ],
    )
    def test_invalid_parameters(self, topo, kwargs):
        with pytest.raises(ValueError):
            LevyFlightMobility(topo, **kwargs)

    def test_works_as_scenario_mobility(self, topo):
        from repro.simulation.scenario import Scenario

        scenario = Scenario(
            topology=topo,
            mobility=LevyFlightMobility(topo),
            num_users=4,
            num_slots=3,
        )
        instance = scenario.build(seed=1)
        assert instance.num_users == 4


class TestReflect:
    def test_inside_unchanged(self):
        values = np.array([0.3, 0.7])
        assert np.allclose(_reflect(values, 0.0, 1.0), values)

    def test_reflects_over(self):
        assert _reflect(np.array([1.3]), 0.0, 1.0)[0] == pytest.approx(0.7)

    def test_reflects_under(self):
        assert _reflect(np.array([-0.2]), 0.0, 1.0)[0] == pytest.approx(0.2)

    def test_clips_extremes(self):
        out = _reflect(np.array([5.0, -5.0]), 0.0, 1.0)
        assert out.min() >= 0.0
        assert out.max() <= 1.0
