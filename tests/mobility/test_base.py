"""Tests for the MobilityTrace container."""

import numpy as np
import pytest

from repro.mobility.base import MobilityTrace


def make_trace(num_slots=4, num_users=3, num_clouds=5):
    rng = np.random.default_rng(0)
    attachment = rng.integers(0, num_clouds, size=(num_slots, num_users))
    access = rng.uniform(0, 1, size=(num_slots, num_users))
    return MobilityTrace(attachment=attachment, access_delay=access, num_clouds=num_clouds)


class TestValidation:
    def test_valid(self):
        trace = make_trace()
        assert trace.num_slots == 4
        assert trace.num_users == 3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MobilityTrace(
                attachment=np.zeros((2, 3), dtype=int),
                access_delay=np.zeros((3, 2)),
                num_clouds=1,
            )

    def test_non_integer_attachment(self):
        with pytest.raises(ValueError, match="integer"):
            MobilityTrace(
                attachment=np.zeros((2, 2)),
                access_delay=np.zeros((2, 2)),
                num_clouds=1,
            )

    def test_out_of_range_attachment(self):
        with pytest.raises(ValueError):
            MobilityTrace(
                attachment=np.full((2, 2), 7, dtype=int),
                access_delay=np.zeros((2, 2)),
                num_clouds=3,
            )

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            MobilityTrace(
                attachment=np.zeros((2, 2), dtype=int),
                access_delay=np.full((2, 2), -1.0),
                num_clouds=1,
            )

    def test_nonpositive_num_clouds(self):
        with pytest.raises(ValueError):
            MobilityTrace(
                attachment=np.zeros((1, 1), dtype=int),
                access_delay=np.zeros((1, 1)),
                num_clouds=0,
            )

    def test_positions_shape_checked(self):
        with pytest.raises(ValueError, match="positions"):
            MobilityTrace(
                attachment=np.zeros((2, 2), dtype=int),
                access_delay=np.zeros((2, 2)),
                num_clouds=1,
                positions=np.zeros((2, 2, 3)),
            )

    def test_1d_attachment_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace(
                attachment=np.zeros(3, dtype=int),
                access_delay=np.zeros(3),
                num_clouds=1,
            )


class TestOperations:
    def test_slice_slots(self):
        trace = make_trace(num_slots=6)
        sub = trace.slice_slots(2, 5)
        assert sub.num_slots == 3
        assert np.array_equal(sub.attachment, trace.attachment[2:5])
        assert sub.num_clouds == trace.num_clouds

    def test_slice_invalid_range(self):
        trace = make_trace(num_slots=4)
        with pytest.raises(ValueError):
            trace.slice_slots(3, 2)
        with pytest.raises(ValueError):
            trace.slice_slots(0, 9)

    def test_slice_preserves_positions(self):
        trace = MobilityTrace(
            attachment=np.zeros((3, 2), dtype=int),
            access_delay=np.zeros((3, 2)),
            num_clouds=1,
            positions=np.arange(12, dtype=float).reshape(3, 2, 2),
        )
        sub = trace.slice_slots(1, 3)
        assert sub.positions.shape == (2, 2, 2)
        assert np.array_equal(sub.positions, trace.positions[1:3])

    def test_switch_count(self):
        attachment = np.array([[0, 1], [0, 2], [1, 2]])
        trace = MobilityTrace(
            attachment=attachment,
            access_delay=np.zeros((3, 2)),
            num_clouds=3,
        )
        # User 0 switches once (slot 2), user 1 switches once (slot 1).
        assert trace.switch_count() == 2

    def test_switch_count_single_slot(self):
        assert make_trace(num_slots=1).switch_count() == 0
