"""Tests for GPS -> nearest-cloud attachment (Voronoi coverage)."""

import numpy as np
import pytest

from repro.mobility.attachment import nearest_cloud_attachment
from repro.topology.geo import GeoPoint
from repro.topology.metro import rome_metro_topology


@pytest.fixture(scope="module")
def topo():
    return rome_metro_topology()


class TestNearestAttachment:
    def test_exact_station_position(self, topo):
        positions = np.array([[p.lat, p.lon] for p in topo.points])
        attachment, delay = nearest_cloud_attachment(positions, topo)
        assert np.array_equal(attachment, np.arange(topo.num_sites))
        assert np.allclose(delay, 0.0)

    def test_matches_brute_force(self, topo):
        rng = np.random.default_rng(0)
        lat_min, lat_max, lon_min, lon_max = topo.bounding_box()
        positions = np.stack(
            [
                rng.uniform(lat_min, lat_max, size=50),
                rng.uniform(lon_min, lon_max, size=50),
            ],
            axis=1,
        )
        attachment, delay = nearest_cloud_attachment(positions, topo)
        for k in range(50):
            point = GeoPoint(positions[k, 0], positions[k, 1])
            dists = [point.distance_km(p) for p in topo.points]
            assert attachment[k] == int(np.argmin(dists))
            assert delay[k] == pytest.approx(min(dists), rel=1e-9)

    def test_multidimensional_batch(self, topo):
        rng = np.random.default_rng(1)
        positions = np.stack(
            [
                rng.uniform(41.88, 41.91, size=(4, 3)),
                rng.uniform(12.45, 12.50, size=(4, 3)),
            ],
            axis=-1,
        )
        attachment, delay = nearest_cloud_attachment(positions, topo)
        assert attachment.shape == (4, 3)
        assert delay.shape == (4, 3)

    def test_price_scaling(self, topo):
        positions = np.array([[41.895, 12.49]])
        _, d1 = nearest_cloud_attachment(positions, topo, price_per_km=1.0)
        _, d3 = nearest_cloud_attachment(positions, topo, price_per_km=3.0)
        assert d3[0] == pytest.approx(3.0 * d1[0])

    def test_invalid_last_axis(self, topo):
        with pytest.raises(ValueError):
            nearest_cloud_attachment(np.zeros((3, 3)), topo)

    def test_negative_price(self, topo):
        with pytest.raises(ValueError):
            nearest_cloud_attachment(np.zeros((1, 2)), topo, price_per_km=-1.0)
