"""Tests for mobility-trace statistics."""

import numpy as np
import pytest

from repro.mobility.base import MobilityTrace
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.stats import (
    dwell_lengths,
    mean_dwell,
    occupancy_distribution,
    occupancy_entropy,
    switch_rate,
    trace_stats,
)
from repro.mobility.taxi import TaxiMobility
from repro.topology.metro import rome_metro_topology


def trace_from(attachment):
    attachment = np.asarray(attachment, dtype=np.int64)
    return MobilityTrace(
        attachment=attachment,
        access_delay=np.zeros_like(attachment, dtype=float),
        num_clouds=int(attachment.max()) + 1,
    )


class TestSwitchRate:
    def test_no_movement(self):
        assert switch_rate(trace_from([[0, 1], [0, 1], [0, 1]])) == 0.0

    def test_constant_movement(self):
        assert switch_rate(trace_from([[0], [1], [0], [1]])) == 1.0

    def test_half_movement(self):
        # One user moves every transition, one never: rate 0.5.
        assert switch_rate(trace_from([[0, 0], [1, 0], [0, 0]])) == 0.5

    def test_single_slot(self):
        assert switch_rate(trace_from([[0, 1]])) == 0.0


class TestDwell:
    def test_lengths(self):
        lengths = dwell_lengths(trace_from([[0], [0], [1], [1], [1]]))
        assert sorted(lengths) == [2, 3]

    def test_mean(self):
        assert mean_dwell(trace_from([[0], [0], [1], [1], [1]])) == pytest.approx(2.5)

    def test_never_moves(self):
        assert mean_dwell(trace_from([[2], [2], [2]])) == 3.0


class TestOccupancy:
    def test_distribution(self):
        dist = occupancy_distribution(trace_from([[0, 0], [0, 1]]))
        assert dist == pytest.approx([0.75, 0.25])

    def test_entropy_uniform(self):
        dist_trace = trace_from([[0, 1]])
        assert occupancy_entropy(dist_trace) == pytest.approx(np.log(2))

    def test_entropy_concentrated(self):
        assert occupancy_entropy(trace_from([[0, 0], [0, 0]])) == 0.0


class TestTraceStats:
    def test_bundle(self):
        stats = trace_stats(trace_from([[0, 1], [1, 1]]))
        assert stats.num_slots == 2
        assert stats.num_users == 2
        assert stats.switch_rate == 0.5
        assert 0 < stats.max_occupancy_share <= 1.0
        assert set(stats.as_dict()) >= {"switch_rate", "mean_dwell"}

    def test_taxi_is_moderate_vs_uniform_walk(self):
        """The substitution claim in DESIGN.md: synthetic taxi traces show
        'moderate mobility' — fewer switches, longer dwells than the
        paper's uniform random walk."""
        topo = rome_metro_topology()
        rng = np.random.default_rng(5)
        taxi = trace_stats(TaxiMobility(topo).generate(20, 30, rng))
        rng = np.random.default_rng(5)
        walk = trace_stats(RandomWalkMobility(topo).generate(20, 30, rng))
        assert taxi.switch_rate < walk.switch_rate
        assert taxi.mean_dwell > walk.mean_dwell
