"""Tests for Markov-chain mobility."""

import numpy as np
import pytest

from repro.mobility.markov import MarkovMobility, lazy_random_walk_matrix


def rng(seed=0):
    return np.random.default_rng(seed)


class TestMarkovValidation:
    def test_valid(self):
        m = MarkovMobility(np.array([[0.5, 0.5], [0.2, 0.8]]))
        assert m.num_clouds == 2

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MarkovMobility(np.array([[0.5, 0.6], [0.2, 0.8]]))

    def test_negative_probability(self):
        with pytest.raises(ValueError):
            MarkovMobility(np.array([[1.2, -0.2], [0.5, 0.5]]))

    def test_non_square(self):
        with pytest.raises(ValueError):
            MarkovMobility(np.ones((2, 3)) / 3.0)

    def test_initial_distribution_validated(self):
        t = np.array([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovMobility(t, initial=np.array([0.9, 0.3]))
        with pytest.raises(ValueError):
            MarkovMobility(t, initial=np.array([0.5, 0.5, 0.0]))


class TestMarkovGeneration:
    def test_respects_transition_support(self):
        # A deterministic cycle 0 -> 1 -> 2 -> 0.
        t = np.array([[0, 1.0, 0], [0, 0, 1.0], [1.0, 0, 0]])
        trace = MarkovMobility(t).generate(4, 9, rng())
        for step in range(1, 9):
            assert np.all(
                trace.attachment[step] == (trace.attachment[step - 1] + 1) % 3
            )

    def test_absorbing_state(self):
        t = np.array([[1.0, 0.0], [1.0, 0.0]])
        trace = MarkovMobility(t).generate(6, 5, rng())
        assert np.all(trace.attachment[1:] == 0)

    def test_initial_distribution_used(self):
        t = np.eye(3)
        initial = np.array([0.0, 1.0, 0.0])
        trace = MarkovMobility(t, initial=initial).generate(10, 3, rng())
        assert np.all(trace.attachment == 1)

    def test_zero_access_delay(self):
        t = np.full((2, 2), 0.5)
        trace = MarkovMobility(t).generate(3, 4, rng())
        assert np.all(trace.access_delay == 0.0)

    def test_empty(self):
        t = np.full((2, 2), 0.5)
        assert MarkovMobility(t).generate(0, 3, rng()).attachment.shape == (3, 0)


class TestLazyWalkMatrix:
    def test_rows_stochastic(self):
        adjacency = np.array(
            [[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=float
        )
        t = lazy_random_walk_matrix(adjacency, stay_probability=0.4)
        assert np.allclose(t.sum(axis=1), 1.0)
        assert t[0, 0] == pytest.approx(0.4)
        assert t[0, 1] == pytest.approx(0.3)

    def test_isolated_node_stays(self):
        adjacency = np.zeros((2, 2))
        t = lazy_random_walk_matrix(adjacency)
        assert np.allclose(t, np.eye(2))

    def test_feeds_markov_mobility(self):
        adjacency = np.array([[0, 1], [1, 0]], dtype=float)
        t = lazy_random_walk_matrix(adjacency, stay_probability=0.5)
        trace = MarkovMobility(t).generate(5, 10, rng())
        assert trace.attachment.shape == (10, 5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lazy_random_walk_matrix(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            lazy_random_walk_matrix(np.zeros((2, 2)), stay_probability=1.5)
