"""Tests for the synthetic Rome-taxi mobility model."""

import numpy as np
import pytest

from repro.mobility.attachment import nearest_cloud_attachment
from repro.mobility.taxi import TaxiMobility
from repro.topology.metro import rome_metro_topology


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(scope="module")
def topo():
    return rome_metro_topology()


class TestTaxiMobility:
    def test_shapes(self, topo):
        trace = TaxiMobility(topo).generate(6, 10, rng())
        assert trace.attachment.shape == (10, 6)
        assert trace.access_delay.shape == (10, 6)
        assert trace.positions.shape == (10, 6, 2)

    def test_attachment_is_nearest_station(self, topo):
        trace = TaxiMobility(topo).generate(5, 8, rng())
        attachment, delay = nearest_cloud_attachment(trace.positions, topo)
        assert np.array_equal(trace.attachment, attachment)
        assert np.allclose(trace.access_delay, delay)

    def test_positions_near_rome(self, topo):
        trace = TaxiMobility(topo).generate(10, 20, rng())
        lat_min, lat_max, lon_min, lon_max = topo.bounding_box()
        # Taxis drive between stations (+ jitter), so stay near the bbox.
        assert trace.positions[..., 0].min() > lat_min - 0.05
        assert trace.positions[..., 0].max() < lat_max + 0.05
        assert trace.positions[..., 1].min() > lon_min - 0.05
        assert trace.positions[..., 1].max() < lon_max + 0.05

    def test_moderate_mobility(self, topo):
        # The paper notes "moderate mobility": users switch attachment
        # sometimes, but far from every slot.
        trace = TaxiMobility(topo).generate(30, 40, rng(1))
        switches = trace.switch_count()
        transitions = (trace.num_slots - 1) * trace.num_users
        assert 0 < switches < 0.5 * transitions

    def test_continuity(self, topo):
        # A taxi moves at most speed*(1+jitter) + noise per slot.
        model = TaxiMobility(topo, speed_km_per_slot=0.5, position_noise_km=0.0)
        trace = model.generate(8, 25, rng(2))
        step_deg = np.abs(np.diff(trace.positions, axis=0))
        step_km = step_deg[..., 0] * 111.32 + step_deg[..., 1] * 83.0
        assert step_km.max() < 2.0  # generous bound for 0.65 km/slot max speed

    def test_price_per_km_scales_access_delay(self, topo):
        cheap = TaxiMobility(topo, price_per_km=1.0).generate(5, 10, rng(3))
        dear = TaxiMobility(topo, price_per_km=4.0).generate(5, 10, rng(3))
        assert np.allclose(dear.access_delay, 4.0 * cheap.access_delay)
        assert np.array_equal(dear.attachment, cheap.attachment)

    def test_station_popularity_favors_interchanges(self, topo):
        model = TaxiMobility(topo)
        popularity = model.station_popularity()
        termini = topo.index_of("Termini")
        battistini = topo.index_of("Battistini")  # line terminus, degree 1
        assert popularity[termini] > popularity[battistini]
        assert popularity.sum() == pytest.approx(1.0)

    def test_deterministic_per_seed(self, topo):
        model = TaxiMobility(topo)
        a = model.generate(4, 6, rng(5))
        b = model.generate(4, 6, rng(5))
        assert np.array_equal(a.attachment, b.attachment)
        assert np.allclose(a.positions, b.positions)

    def test_empty_cases(self, topo):
        model = TaxiMobility(topo)
        assert model.generate(0, 4, rng()).attachment.shape == (4, 0)
        assert model.generate(4, 0, rng()).attachment.shape == (0, 4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"speed_km_per_slot": 0.0},
            {"speed_jitter": 1.5},
            {"dwell_slots": (3, 1)},
            {"position_noise_km": -0.1},
            {"hotspot_zipf": -1.0},
        ],
    )
    def test_invalid_parameters(self, topo, kwargs):
        with pytest.raises(ValueError):
            TaxiMobility(topo, **kwargs)
