"""Shared fixtures: small deterministic problem instances.

Two tiers are used across the suite:

* ``tiny_instance`` — a hand-built 3-cloud / 4-user / 5-slot instance with
  round numbers, for tests that assert exact arithmetic;
* ``small_instance`` — a seeded draw of the default taxi scenario at a very
  small scale, for integration-style tests (session-scoped: building it
  costs a trace generation and a capacity fit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import CostWeights, ProblemInstance
from repro.pricing.bandwidth import MigrationPrices
from repro.simulation.scenario import Scenario


def make_tiny_instance(
    *,
    weights: CostWeights | None = None,
    num_slots: int = 5,
    seed: int = 0,
) -> ProblemInstance:
    """A fully deterministic 3-cloud, 4-user instance with simple numbers."""
    rng = np.random.default_rng(seed)
    num_clouds, num_users = 3, 4
    workloads = np.array([2.0, 3.0, 1.0, 4.0])
    capacities = np.array([6.0, 5.0, 4.0])  # sum 15 > 10 = total workload
    op_prices = 0.5 + rng.uniform(0.0, 1.0, size=(num_slots, num_clouds))
    reconfig = np.array([0.8, 1.0, 1.2])
    migration = MigrationPrices(
        out=np.array([0.4, 0.5, 0.6]), into=np.array([0.6, 0.5, 0.4])
    )
    delay = np.array(
        [
            [0.0, 1.0, 2.0],
            [1.0, 0.0, 1.5],
            [2.0, 1.5, 0.0],
        ]
    )
    attachment = rng.integers(0, num_clouds, size=(num_slots, num_users))
    access_delay = rng.uniform(0.0, 0.5, size=(num_slots, num_users))
    return ProblemInstance(
        workloads=workloads,
        capacities=capacities,
        op_prices=op_prices,
        reconfig_prices=reconfig,
        migration_prices=migration,
        inter_cloud_delay=delay,
        attachment=attachment,
        access_delay=access_delay,
        weights=weights or CostWeights(),
    )


@pytest.fixture
def tiny_instance() -> ProblemInstance:
    return make_tiny_instance()


@pytest.fixture(scope="session")
def small_instance() -> ProblemInstance:
    """A seeded 6-user, 4-slot draw of the default taxi scenario."""
    return Scenario(num_users=6, num_slots=4).build(seed=7)


@pytest.fixture(scope="session")
def medium_instance() -> ProblemInstance:
    """A seeded 10-user, 6-slot draw (integration tests)."""
    return Scenario(num_users=10, num_slots=6).build(seed=11)


def random_schedule(instance: ProblemInstance, seed: int = 0) -> np.ndarray:
    """A random *feasible* allocation trajectory for an instance.

    Each user's workload is split across clouds with random proportions,
    then scaled into capacity if any cloud overflows.
    """
    rng = np.random.default_rng(seed)
    t, i, j = instance.num_slots, instance.num_clouds, instance.num_users
    shares = rng.dirichlet(np.ones(i), size=(t, j))  # (T, J, I)
    x = np.transpose(shares, (0, 2, 1)) * np.asarray(instance.workloads)[None, None, :]
    capacities = np.asarray(instance.capacities, dtype=float)
    for slot in range(t):
        x[slot] = _project_to_capacity(x[slot], capacities)
    return x


def _project_to_capacity(x: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """Shift load between clouds (preserving user totals) until within capacity."""
    x = x.copy()
    for _ in range(1000):
        totals = x.sum(axis=1)
        overload = totals - capacities
        worst = int(np.argmax(overload))
        if overload[worst] <= 1e-12:
            return x
        slack = capacities - totals
        target = int(np.argmax(slack))
        move = min(overload[worst], slack[target])
        fraction = move / totals[worst]
        moved = x[worst] * fraction
        x[worst] -= moved
        x[target] += moved
    raise AssertionError("capacity projection did not converge")
