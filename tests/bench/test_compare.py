"""Baseline gating: self-compare is clean, regressions gate by kind."""

from __future__ import annotations

import pytest

from repro.bench import BenchMetric, BenchRecord, compare_records


def _record(**values) -> BenchRecord:
    defaults = {
        "wall_s": ("time", 2.0),
        "iterations": ("count", 400),
        "cost": ("cost", 150.0),
    }
    metrics = {}
    for name, (kind, default) in defaults.items():
        metrics[name] = BenchMetric(
            value=values.get(name, default), unit="", kind=kind
        )
    return BenchRecord(suite="smoke", metrics=metrics)


class TestSelfCompare:
    def test_round_trip_has_zero_regressions(self):
        record = _record()
        report = compare_records(record, record)
        assert report.ok
        assert report.regressions == []
        assert report.missing == [] and report.added == []

    def test_render_mentions_pass(self):
        record = _record()
        assert "PASS" in compare_records(record, record).render()


class TestTimeGating:
    def test_small_time_noise_is_ok(self):
        report = compare_records(_record(), _record(wall_s=2.1))  # +5%
        assert report.ok and report.regressions == []

    def test_large_time_regression_is_advisory_by_default(self):
        report = compare_records(_record(), _record(wall_s=3.0))  # +50%
        assert report.ok  # time not gated...
        assert [d.name for d in report.regressions] == ["wall_s"]  # ...but listed
        assert "advisory" in report.render()

    def test_gate_time_fails_on_time_regression(self):
        report = compare_records(_record(), _record(wall_s=3.0), gate_time=True)
        assert not report.ok

    def test_threshold_is_configurable(self):
        report = compare_records(
            _record(), _record(wall_s=2.4), time_threshold=0.25
        )
        assert report.regressions == []  # +20% < 25%


class TestDeterministicGating:
    def test_iteration_regression_fails(self):
        report = compare_records(_record(), _record(iterations=500))
        assert not report.ok
        assert [d.name for d in report.gated_regressions] == ["iterations"]
        assert "FAIL" in report.render()

    def test_cost_regression_fails(self):
        report = compare_records(_record(), _record(cost=151.0))
        assert not report.ok

    def test_cost_numerical_noise_is_ok(self):
        report = compare_records(_record(), _record(cost=150.0 * (1 + 1e-9)))
        assert report.ok

    def test_improvements_never_fail(self):
        report = compare_records(
            _record(), _record(wall_s=1.0, iterations=300, cost=100.0)
        )
        assert report.ok and report.regressions == []


class TestSchemaDrift:
    def test_missing_metric_fails_the_gate(self):
        current = _record()
        current = BenchRecord(
            suite="smoke",
            metrics={
                k: v for k, v in current.metrics.items() if k != "iterations"
            },
        )
        report = compare_records(_record(), current)
        assert not report.ok
        assert report.missing == ["iterations"]

    def test_added_metric_is_informational(self):
        current = _record()
        metrics = dict(current.metrics)
        metrics["new_thing"] = BenchMetric(value=1.0, unit="", kind="count")
        report = compare_records(
            _record(), BenchRecord(suite="smoke", metrics=metrics)
        )
        assert report.ok
        assert report.added == ["new_thing"]

    def test_suite_mismatch_raises(self):
        other = BenchRecord(suite="solver")
        with pytest.raises(ValueError, match="suite"):
            compare_records(_record(), other)
