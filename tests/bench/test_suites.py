"""Named suites produce well-formed, gateable records at tiny scale."""

from __future__ import annotations

import pytest

from repro.bench import SUITES, compare_records, run_suite
from repro.experiments.settings import ExperimentScale

TINY = ExperimentScale(num_users=4, num_slots=2, repetitions=1, seed=7)


@pytest.fixture(scope="module")
def smoke_record():
    return run_suite("smoke", TINY)


class TestSmokeSuite:
    def test_expected_metrics_and_kinds(self, smoke_record):
        kinds = {n: m.kind for n, m in smoke_record.metrics.items()}
        assert kinds == {
            "online_run_wall_s": "time",
            "solver_iterations": "count",
            "solves": "count",
            "online_cost": "cost",
            "final_ratio": "cost",
            "worst_relative_gap": "cost",
        }

    def test_diagnostics_capture_algorithm_quality(self, smoke_record):
        diagnostics = smoke_record.diagnostics
        assert diagnostics["certificates_ok"] is True
        assert diagnostics["ratio_certified"] is True
        assert diagnostics["ratio_bound"] > 1.0
        # The suite's own telemetry session harvested solver traces.
        assert diagnostics["convergence"]["solves"] == TINY.num_slots
        assert diagnostics["fallbacks"] == 0

    def test_record_is_stamped(self, smoke_record):
        assert smoke_record.suite == "smoke"
        assert smoke_record.config["num_users"] == TINY.num_users
        assert smoke_record.created_unix > 0

    def test_rerun_is_deterministic_on_gated_metrics(self, smoke_record):
        report = compare_records(smoke_record, run_suite("smoke", TINY))
        assert report.ok  # counts and costs reproduce exactly

    def test_suite_session_does_not_leak(self, smoke_record):
        from repro.telemetry import get_registry

        assert not get_registry().enabled


class TestAggregateSuite:
    @pytest.fixture(scope="class")
    def record(self):
        return run_suite("aggregate", TINY)

    def test_expected_metrics_and_kinds(self, record):
        kinds = {n: m.kind for n, m in record.metrics.items()}
        for label in ("10k", "100k", "1m"):
            assert kinds[f"agg_wall_s_{label}"] == "time"
            assert kinds[f"cohorts_{label}"] == "count"
            assert kinds[f"reduction_{label}"] == "count"
        assert kinds["direct_wall_s_j120"] == "time"
        assert kinds["feasibility_residual"] == "cost"

    def test_disaggregated_slots_stay_feasible(self, record):
        assert record.metrics["feasibility_residual"].value <= 1e-8

    def test_diagnostics_describe_the_scaling_run(self, record):
        diagnostics = record.diagnostics
        # User counts scale with the suite scale but the labels persist.
        assert set(diagnostics["user_counts"]) == {"10k", "100k", "1m"}
        assert diagnostics["user_counts"]["1m"] > diagnostics["user_counts"]["10k"]
        assert diagnostics["shards"] == 4
        assert diagnostics["wall_ratio_1m_vs_direct"] > 0
        assert diagnostics["error_bound_1m"] >= diagnostics["spread_1m"] >= 0

    def test_gated_metrics_reproduce_exactly(self, record):
        report = compare_records(record, run_suite("aggregate", TINY))
        assert report.ok


class TestSolverSuite:
    def test_solver_suite_runs_and_reports_warm_start(self):
        record = run_suite("solver", TINY)
        assert record.metrics["warm_iterations"].value <= (
            record.metrics["cold_iterations"].value
        )
        assert record.diagnostics["warm_cost_matches_cold"] is True


class TestRegistryOfSuites:
    def test_all_declared_suites_are_callable(self):
        assert set(SUITES) == {
            "smoke", "solver", "fig2", "fig5", "parallel", "batched",
            "aggregate", "service",
        }

    def test_unknown_suite_raises_with_known_names(self):
        with pytest.raises(ValueError, match="smoke"):
            run_suite("nope", TINY)
