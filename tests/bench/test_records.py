"""BENCH_<suite>.json schema: round-trip, validation, git stamping."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_FORMAT,
    BenchMetric,
    BenchRecord,
    current_git_commit,
    read_record,
    write_record,
)


def _sample_record() -> BenchRecord:
    return BenchRecord(
        suite="smoke",
        metrics={
            "wall_s": BenchMetric(value=1.25, unit="s", kind="time"),
            "iterations": BenchMetric(value=379, unit="iterations", kind="count"),
            "cost": BenchMetric(value=155.322, unit="cost", kind="cost"),
        },
        config={"num_users": 8, "num_slots": 4},
        diagnostics={"certified": True},
        git_commit="abc123",
        created_unix=1234.5,
    )


class TestRoundTrip:
    def test_write_read_identity(self, tmp_path):
        record = _sample_record()
        path = write_record(tmp_path / "BENCH_smoke.json", record)
        loaded = read_record(path)
        assert loaded == record

    def test_file_is_valid_json_with_format_tag(self, tmp_path):
        path = write_record(tmp_path / "b.json", _sample_record())
        data = json.loads(path.read_text())
        assert data["format"] == BENCH_FORMAT
        assert data["metrics"]["iterations"]["kind"] == "count"


class TestValidation:
    def test_unknown_format_rejected(self, tmp_path):
        path = write_record(tmp_path / "b.json", _sample_record())
        path.write_text(path.read_text().replace(BENCH_FORMAT, "other/0"))
        with pytest.raises(ValueError, match="format"):
            read_record(path)

    def test_unknown_metric_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            BenchMetric(value=1.0, unit="s", kind="vibes")


class TestGitCommit:
    def test_in_repo_returns_a_hash(self):
        commit = current_git_commit()
        assert len(commit) == 40
        assert all(c in "0123456789abcdef" for c in commit)

    def test_outside_repo_returns_empty(self, tmp_path):
        assert current_git_commit(cwd=tmp_path) == ""
