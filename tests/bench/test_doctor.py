"""`repro-edge bench` / `repro-edge doctor` end to end.

The bench round-trip invariant (a record compared against itself passes
with zero regressions) and the doctor post-mortem (complete and torn
manifests) are exercised through the real CLI entry point.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import doctor_report, read_record
from repro.cli import main

TINY = ["--users", "4", "--slots", "2", "--repetitions", "1"]


@pytest.fixture(scope="module")
def bench_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "BENCH_smoke.json"
    assert main(["bench", "--suite", "smoke", *TINY, "--out", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def manifest_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("doctor") / "run.jsonl"
    code = main(["fig2", *TINY, "--telemetry", str(path)])
    assert code == 0
    return path


class TestBenchCli:
    def test_writes_a_readable_record(self, bench_file):
        record = read_record(bench_file)
        assert record.suite == "smoke"
        assert record.metrics["solves"].value == 2

    def test_compare_round_trips_with_zero_regressions(self, bench_file, capsys):
        code = main(
            ["bench", "--suite", "smoke", *TINY, "--out",
             str(bench_file.with_name("again.json")),
             "--compare", str(bench_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "REGRESSED" not in out

    def test_regression_exits_nonzero(self, bench_file, tmp_path, capsys):
        # Shrink the baseline cost so the (identical) current run regresses.
        data = json.loads(bench_file.read_text())
        data["metrics"]["online_cost"]["value"] *= 0.5
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(data))
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["bench", "--suite", "smoke", *TINY, "--out",
                 str(tmp_path / "current.json"), "--compare", str(baseline)]
            )
        assert excinfo.value.code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unknown_suite_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench suite"):
            main(["bench", "--suite", "nope", *TINY,
                  "--out", str(tmp_path / "x.json")])


class TestDoctorReport:
    SECTIONS = (
        "Slowest slots",
        "Solver incidents",
        "Optimality certificates",
        "Competitive ratio vs Theorem 2",
        "Interior-point convergence",
        "Aggregation",
    )

    def test_all_sections_render_on_a_complete_manifest(self, manifest_file):
        report = doctor_report(manifest_file)
        for section in self.SECTIONS:
            assert section in report
        assert "TRUNCATED" not in report

    def test_cli_doctor_prints_the_report(self, manifest_file, capsys):
        assert main(["doctor", str(manifest_file)]) == 0
        out = capsys.readouterr().out
        assert "Slowest slots" in out

    def test_truncated_manifest_gets_a_banner(self, manifest_file, tmp_path):
        lines = manifest_file.read_text().splitlines()
        # Drop manifest_end and tear the new last line mid-JSON.
        torn = tmp_path / "torn.jsonl"
        torn.write_text("\n".join(lines[:-2] + [lines[-2][: len(lines[-2]) // 2]]))
        report = doctor_report(torn)
        assert "TRUNCATED" in report
        for section in self.SECTIONS:
            assert section in report

    def test_alert_section_lists_watchdog_firings(self, manifest_file, tmp_path):
        import json as json_mod

        lines = manifest_file.read_text().splitlines()
        alert = json_mod.dumps(
            {"type": "alert", "rule": "solver-stall", "slot": 1,
             "message": "slot wall time 500.0 ms exceeds 8 x p95"}
        )
        # Splice an alert event in front of the trailing sections and fix
        # the manifest_end event count to match.
        end = json_mod.loads(lines[-1])
        end["events"] += 1
        doctored = tmp_path / "alerts.jsonl"
        doctored.write_text(
            "\n".join(lines[:-3] + [alert] + lines[-3:-1] + [json_mod.dumps(end)])
        )
        report = doctor_report(doctored)
        assert "Watchdog alerts" in report
        assert "solver-stall: 1" in report
        assert "slot wall time 500.0 ms" in report

    def test_no_alerts_renders_none(self, manifest_file):
        report = doctor_report(manifest_file)
        assert "Watchdog alerts" in report
        assert "none recorded" in report

    def test_aggregation_section_without_aggregation(self, manifest_file):
        report = doctor_report(manifest_file)
        assert "Aggregation" in report
        assert "not used (per-user solves)" in report

    def test_aggregation_section_summarizes_aggregated_runs(self, tmp_path):
        path = tmp_path / "agg.jsonl"
        code = main(
            ["fig2", *TINY, "--aggregate", "--lambda-buckets", "4",
             "--telemetry", str(path)]
        )
        assert code == 0
        report = doctor_report(path)
        assert "aggregated slots" in report
        assert "a-priori cost error bound" in report
        assert "disaggregation gap" in report


class TestDoctorDirectory:
    def test_directory_resolves_to_newest_manifest(self, tmp_path):
        import os

        from repro.bench import resolve_manifest_path

        old = tmp_path / "old.jsonl"
        new = tmp_path / "new.jsonl"
        old.write_text("{}\n")
        new.write_text("{}\n")
        past = old.stat().st_mtime - 100
        os.utime(old, (past, past))
        assert resolve_manifest_path(tmp_path) == new
        # A file path passes through untouched, even a nonexistent one.
        assert resolve_manifest_path(old) == old
        assert resolve_manifest_path(tmp_path / "nope.jsonl").name == "nope.jsonl"

    def test_empty_directory_is_an_error(self, tmp_path):
        from repro.bench import resolve_manifest_path

        with pytest.raises(FileNotFoundError, match="no \\*.jsonl"):
            resolve_manifest_path(tmp_path)

    def test_cli_doctor_accepts_a_directory(self, manifest_file, capsys):
        assert main(["doctor", str(manifest_file.parent)]) == 0
        out = capsys.readouterr().out
        assert "Slowest slots" in out
        # The report names the file it picked inside the directory.
        assert manifest_file.name in out


class TestObservabilitySections:
    """The Service / Parallel / Where-the-time-went doctor sections."""

    def _record(self, **kwargs):
        from repro.telemetry import RunRecord

        return RunRecord(**kwargs)

    def test_new_sections_render_their_fallbacks(self, manifest_file):
        report = doctor_report(manifest_file)
        assert "Service" in report
        assert "no service activity recorded" in report
        assert "Where the time went" in report
        assert "no profile recorded (run with --profile)" in report

    def test_service_section_summarizes_requests_and_misses(self):
        record = self._record(
            counters={
                "service.slots": 8,
                "service.protocol.rejected": 2,
                "service.updates.superseded": 1,
                "service.deadline.misses": 3,
                "service.deadline.partial_solves": 1,
            },
            events=[
                {
                    "type": "service.deadline.miss",
                    "slot": 4,
                    "latency_ms": 512.5,
                    "deadline_ms": 250.0,
                    "partial": True,
                }
            ],
        )
        report = doctor_report(record)
        assert "8 request(s) served, 2 rejected, 1 superseded" in report
        assert "deadline misses: 3 (1 budget-truncated solves)" in report
        assert "miss at slot    4" in report and "partial solve" in report

    def test_slo_incident_section_renders_its_fallback(self, manifest_file):
        report = doctor_report(manifest_file)
        assert "SLOs & Incidents" in report
        assert "no SLO plane or flight recorder active" in report

    def test_slo_incident_section_lists_burns_and_bundles(self):
        record = self._record(
            counters={"flight.snapshots": 12, "watchdog.suppressed": 4},
            gauges={
                "slo.burn.fast.deadline-miss": 25.0,
                "slo.burn.slow.deadline-miss": 9.0,
            },
            events=[
                {
                    "type": "slo.burn",
                    "objective": "deadline-miss",
                    "state": "firing",
                    "fast_burn": 25.0,
                    "slow_burn": 9.0,
                    "budget": 0.01,
                },
                {
                    "type": "incident.written",
                    "path": "/tmp/incident-000-deadline-miss.jsonl",
                    "rule": "deadline-miss",
                    "snapshots": 4,
                },
            ],
        )
        report = doctor_report(record)
        assert "SLOs & Incidents" in report
        assert "FIRING [deadline-miss]" in report
        assert "burn [deadline-miss] fast 25.00x / slow 9.00x" in report
        assert "flight snapshots captured: 12" in report
        assert "incident bundles written: 1" in report
        assert "repro-edge incident replay" in report
        assert "suppressed by cooldown: 4" in report

    def test_slo_resolution_clears_the_firing_line(self):
        burn = {
            "type": "slo.burn",
            "objective": "deadline-miss",
            "fast_burn": 1.0,
            "slow_burn": 1.0,
            "budget": 0.01,
        }
        record = self._record(
            events=[
                dict(burn, state="firing"),
                dict(burn, state="resolved"),
            ]
        )
        report = doctor_report(record)
        assert "FIRING" not in report
        assert "0 still firing, 1 resolved" in report

    def test_parallel_fallback_regression_surfaces_in_doctor(self):
        """Regression pin: an inline fallback must never be silent."""
        record = self._record(
            counters={"sweep.cells": 6, "parallel.fallback.inline": 2},
            gauges={"sweep.workers": 4},
            events=[
                {
                    "type": "parallel.fallback.inline",
                    "error": "PicklingError: boom",
                    "cells": 6,
                    "workers": 4,
                }
            ],
        )
        report = doctor_report(record)
        assert "6 cell(s) dispatched over 4 worker(s)" in report
        assert "WARNING: 2 fan-out(s) degraded to inline execution" in report
        assert "PicklingError: boom" in report

    def test_parallel_clean_run_reports_no_fallbacks(self):
        record = self._record(
            counters={"sweep.cells": 4}, gauges={"sweep.workers": 2}
        )
        report = doctor_report(record)
        assert "no inline fallbacks - the pool ran as requested" in report

    def test_where_the_time_went_ranks_phases(self):
        record = self._record(
            events=[
                {
                    "type": "prof.phases",
                    "slot": 0,
                    "wall_ms": 10.0,
                    "phases": {"ipm.line_search": 6.0, "ipm.assemble": 4.0},
                },
                {
                    "type": "prof.phases",
                    "slot": 1,
                    "wall_ms": 4.0,
                    "phases": {"ipm.line_search": 3.0, "ipm.assemble": 1.0},
                },
            ]
        )
        report = doctor_report(record)
        lines = report.splitlines()
        ranked = [
            line for line in lines if "ipm." in line and "%" in line
        ]
        assert len(ranked) == 2
        assert "ipm.line_search" in ranked[0]  # biggest share first
        assert "slowest slot    0" in report and "mostly ipm.line_search" in report

    def test_profiled_cli_run_ranks_phases_end_to_end(self, tmp_path):
        path = tmp_path / "profiled.jsonl"
        assert main(["fig2", *TINY, "--telemetry", str(path), "--profile"]) == 0
        report = doctor_report(path)
        assert "Where the time went" in report
        assert "profiled slot(s)" in report
        assert "ipm." in report
