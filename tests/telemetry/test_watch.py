"""``repro-edge watch``: tailing, live state folding, and strict exits.

The concurrent-writer test is the acceptance test for the live path: a
background thread streams a manifest while ``watch`` follows the file,
and the final frame must reflect the completed run.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.cli import main
from repro.telemetry import (
    ManifestTail,
    MetricsRegistry,
    WatchState,
    read_manifest,
    streaming_manifest_session,
    watch,
    write_manifest,
)
from repro.telemetry.sinks import StreamingManifestWriter


def _write_line(path, record) -> None:
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")


class TestManifestTail:
    def test_missing_file_polls_empty(self, tmp_path):
        tail = ManifestTail(tmp_path / "nope.jsonl")
        assert tail.poll() == []

    def test_incremental_polls_return_only_new_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tail = ManifestTail(path)
        _write_line(path, {"type": "slot", "slot": 0})
        assert [r["slot"] for r in tail.poll()] == [0]
        assert tail.poll() == []
        _write_line(path, {"type": "slot", "slot": 1})
        assert [r["slot"] for r in tail.poll()] == [1]

    def test_torn_trailing_line_is_buffered_until_complete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tail = ManifestTail(path)
        full = json.dumps({"type": "slot", "slot": 7})
        with path.open("w") as handle:
            handle.write(full[:10])  # a write caught mid-line
        assert tail.poll() == []
        assert tail.corrupt_lines == 0
        with path.open("a") as handle:
            handle.write(full[10:] + "\n")
        assert [r["slot"] for r in tail.poll()] == [7]

    def test_complete_but_corrupt_line_is_counted_and_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tail = ManifestTail(path)
        with path.open("w") as handle:
            handle.write("{not json}\n")
            handle.write(json.dumps({"type": "slot", "slot": 1}) + "\n")
        assert [r["slot"] for r in tail.poll()] == [1]
        assert tail.corrupt_lines == 1


class TestWatchState:
    def _slot(self, slot, run=1, **extra):
        return {
            "type": "slot", "slot": slot, "run": run,
            "algorithm": "online-approx", "wall_ms": 1.0,
            "op": 1.0, "sq": 2.0, "rc": 0.5, "mg": 0.5, "total": 4.0,
            **extra,
        }

    def test_folds_slots_runs_and_costs(self):
        state = WatchState(rules=[])
        state.update({"type": "manifest_start", "config": {"users": 4}})
        state.update_all([self._slot(0), self._slot(1)])
        state.update({"type": "run_end", "run": 1, "algorithm": "online-approx"})
        assert state.started and not state.done
        assert state.total_slots == 2
        assert state.totals["total"] == 8.0
        ((_, view),) = state.runs.items()
        assert view.finished
        state.update({"type": "manifest_end", "events": 3})
        assert state.done

    def test_render_shows_the_load_bearing_lines(self):
        state = WatchState(rules=[])
        state.update({"type": "manifest_start", "config": {"users": 4}})
        state.update(self._slot(0))
        state.update({"type": "solver.ipm.trace", "iterations": 12})
        state.update(
            {"type": "diag.ratio.point", "slot": 0, "ratio": 1.4, "bound": 2.0}
        )
        text = state.render(title="run.jsonl")
        assert "[LIVE]" in text
        assert "users=4" in text
        assert "1 done" in text
        assert "12 iterations / 1 solves" in text
        assert "1.4000 vs bound 2.0000" in text
        assert "alerts : none" in text

    def test_render_before_any_data_says_waiting(self):
        assert "[WAITING]" in WatchState(rules=[]).render()

    def test_file_alerts_and_rederived_alerts_dedup(self):
        # Default rules re-derive the same certificate-gap alert the
        # manifest already recorded: it must be listed once.
        state = WatchState()
        state.update({"type": "diag.certificate", "slot": 3, "relative_gap": 1.0})
        assert len(state.alerts) == 1
        state.update(
            {"type": "alert", "rule": "certificate-gap", "slot": 3,
             "message": "recorded in the file"}
        )
        assert len(state.alerts) == 1
        assert state.render().count("certificate-gap") == 1

    def test_service_slots_fold_into_the_svc_line(self):
        state = WatchState(rules=[])
        state.update({"type": "service.slot", "slot": 0, "latency_ms": 2.0})
        state.update(
            {"type": "service.slot", "slot": 1, "latency_ms": 9.0,
             "deadline_miss": True}
        )
        assert state.service_slots == 2
        assert state.service_misses == 1
        text = state.render()
        assert "svc    : 2 request(s)" in text
        assert "p50" in text and "p95" in text
        assert "1 deadline miss(es)" in text

    def test_phase_profiles_fold_into_the_phases_line(self):
        state = WatchState(rules=[])
        state.update(
            {"type": "prof.phases", "slot": 0,
             "phases": {"ipm.line_search": 8.0, "ipm.assemble": 1.0,
                        "spine.account": 0.5, "spine.checkpoint": 0.1}}
        )
        text = state.render()
        # Top-3 by p95, slowest first; the fourth phase is elided.
        phases_line = next(l for l in text.splitlines() if "phases :" in l)
        assert phases_line.index("ipm.line_search") < phases_line.index(
            "ipm.assemble"
        )
        assert "spine.checkpoint" not in phases_line
        assert "p95" in phases_line

    def test_no_service_or_profile_records_no_extra_lines(self):
        state = WatchState(rules=[])
        state.update(self._slot(0))
        text = state.render()
        assert "svc    :" not in text
        assert "phases :" not in text

    def test_slo_burn_and_incidents_fold_into_the_dashboard(self):
        state = WatchState(rules=[])
        state.update(
            {"type": "slo.burn", "objective": "deadline-miss",
             "state": "firing", "fast_burn": 12.0, "slow_burn": 4.0,
             "budget": 0.01}
        )
        state.update(
            {"type": "incident.written", "path": "/tmp/incident-000.jsonl",
             "rule": "deadline-miss", "snapshots": 4}
        )
        text = state.render()
        assert "FIRING deadline-miss" in text
        assert "burn fast 12.0x" in text
        assert "1 bundle(s) written" in text
        assert "/tmp/incident-000.jsonl" in text
        # Resolution clears the firing line but keeps the objective.
        state.update(
            {"type": "slo.burn", "objective": "deadline-miss",
             "state": "resolved", "fast_burn": 0.5, "slow_burn": 1.0,
             "budget": 0.01}
        )
        assert "healthy" in state.render()

    def test_duplicate_incident_paths_are_listed_once(self):
        state = WatchState(rules=[])
        record = {"type": "incident.written", "path": "/tmp/a.jsonl"}
        state.update(record)
        state.update(dict(record))
        assert state.incidents == ["/tmp/a.jsonl"]

    def test_ratio_trace_summary_overrides_points(self):
        state = WatchState(rules=[])
        state.update(
            {"type": "diag.ratio.point", "slot": 0, "ratio": 1.1, "bound": 2.0}
        )
        state.update(
            {"type": "diag.ratio.trace", "bound": 2.0, "final_ratio": 1.3,
             "worst_ratio": 1.5, "certified": True}
        )
        text = state.render()
        assert "1.3000 vs bound 2.0000" in text
        assert "worst prefix 1.5000" in text
        assert "certified: True" in text


class TestWatchLoop:
    def _finished_manifest(self, tmp_path, *, stall=False):
        path = tmp_path / "run.jsonl"
        writer = StreamingManifestWriter(path, flush_every=1)
        for slot in range(20):
            writer.emit({"type": "slot", "slot": slot, "wall_ms": 1.0})
        if stall:
            writer.emit({"type": "slot", "slot": 20, "wall_ms": 500.0})
        writer.finalize(None)
        return path

    def test_once_renders_and_returns_zero(self, tmp_path):
        path = self._finished_manifest(tmp_path)
        out = io.StringIO()
        assert watch(path, follow=False, stream=out) == 0
        assert "[COMPLETE]" in out.getvalue()

    def test_strict_exits_nonzero_on_injected_stall(self, tmp_path):
        path = self._finished_manifest(tmp_path, stall=True)
        out = io.StringIO()
        assert watch(path, follow=False, strict=True, stream=out) == 1
        assert "solver-stall" in out.getvalue()
        # The same manifest without --strict still exits 0.
        assert watch(path, follow=False, stream=io.StringIO()) == 0

    def test_follow_tracks_a_concurrent_writer_to_completion(self, tmp_path):
        path = tmp_path / "run.jsonl"

        def writer_thread():
            writer = StreamingManifestWriter(path, flush_every=1)
            for slot in range(5):
                writer.emit({"type": "slot", "slot": slot, "wall_ms": 1.0,
                             "total": 1.0})
                time.sleep(0.02)
            writer.finalize(None)

        thread = threading.Thread(target=writer_thread)
        thread.start()
        out = io.StringIO()
        code = watch(path, interval=0.02, timeout=30.0, stream=out)
        thread.join()
        assert code == 0
        assert "[COMPLETE]" in out.getvalue()
        assert "5 done" in out.getvalue()

    def test_timeout_stops_an_unfinished_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_line(path, {"type": "manifest_start", "config": {}})
        start = time.monotonic()
        code = watch(path, interval=0.01, timeout=0.05, stream=io.StringIO())
        assert code == 0
        assert time.monotonic() - start < 5.0

    def test_buffered_manifest_is_watchable_too(self, tmp_path):
        registry = MetricsRegistry()
        registry.event("slot", slot=0, wall_ms=1.0, total=2.0)
        path = write_manifest(tmp_path / "run.jsonl", registry)
        out = io.StringIO()
        assert watch(path, follow=False, stream=out) == 0
        assert "[COMPLETE]" in out.getvalue()


class TestWatchCli:
    def test_cli_watch_once(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        with streaming_manifest_session(path) as registry:
            registry.event("slot", slot=0, wall_ms=1.0, total=1.0)
        with pytest.raises(SystemExit) as excinfo:
            main(["watch", str(path), "--once"])
        assert excinfo.value.code == 0
        assert "[COMPLETE]" in capsys.readouterr().out

    def test_cli_watch_strict_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        writer = StreamingManifestWriter(path, flush_every=1)
        for slot in range(20):
            writer.emit({"type": "slot", "slot": slot, "wall_ms": 1.0})
        writer.emit({"type": "slot", "slot": 20, "wall_ms": 500.0})
        writer.finalize(None)
        with pytest.raises(SystemExit) as excinfo:
            main(["watch", str(path), "--once", "--strict"])
        assert excinfo.value.code == 1
        capsys.readouterr()

    def test_watched_streaming_manifest_still_verifies(self, tmp_path):
        # Watching is read-only: the tailed file still strict-reads.
        path = tmp_path / "run.jsonl"
        with streaming_manifest_session(path) as registry:
            registry.event("slot", slot=0, wall_ms=1.0, total=1.0)
        assert watch(path, follow=False, stream=io.StringIO()) == 0
        assert not read_manifest(path).truncated
