"""Watchdog rules engine: each rule, the sink wrapper, and alert injection.

The solver-stall scenario doubles as the acceptance test for the whole
alert path: a run with one injected pathological slot must leave an
``alert`` event in its streamed manifest.
"""

from __future__ import annotations

from repro.telemetry import (
    Alert,
    CertificateGapRule,
    FallbackStormRule,
    MetricsRegistry,
    RatioBoundRule,
    RingSink,
    SolverStallRule,
    Watchdog,
    WatchdogSink,
    default_rules,
    read_manifest,
    streaming_manifest_session,
)


def _slots(count: int, wall_ms: float = 1.0, start: int = 0):
    """``count`` uniform slot events."""
    return [
        {"type": "slot", "slot": start + index, "wall_ms": wall_ms}
        for index in range(count)
    ]


class TestSolverStallRule:
    def test_fires_on_an_outlier_after_warmup(self):
        dog = Watchdog([SolverStallRule(factor=8.0, min_slots=16)])
        assert dog.observe_all(_slots(20)) == []
        fired = dog.observe({"type": "slot", "slot": 20, "wall_ms": 500.0})
        assert [a.rule for a in fired] == ["solver-stall"]
        assert fired[0].slot == 20
        assert fired[0].value == 500.0

    def test_silent_during_warmup(self):
        dog = Watchdog([SolverStallRule(min_slots=16)])
        assert dog.observe_all(_slots(5)) == []
        # Slot 5 is huge but the p95 baseline is not armed yet.
        assert dog.observe({"type": "slot", "slot": 5, "wall_ms": 500.0}) == []

    def test_silent_on_ordinary_slots(self):
        dog = Watchdog([SolverStallRule()])
        assert dog.observe_all(_slots(100)) == []


class TestFallbackStormRule:
    def test_fires_once_when_the_window_fills(self):
        dog = Watchdog([FallbackStormRule(threshold=3, window=25)])
        fallback = {"type": "solver.fallback", "primary": "ipm"}
        assert dog.observe(fallback) == []
        assert dog.observe(fallback) == []
        fired = dog.observe(fallback)
        assert [a.rule for a in fired] == ["fallback-storm"]
        # A fourth fallback inside the same storm does not re-fire.
        assert dog.observe(fallback) == []

    def test_spread_out_fallbacks_stay_silent(self):
        dog = Watchdog([FallbackStormRule(threshold=3, window=10)])
        for batch in range(3):
            dog.observe_all(_slots(50, start=batch * 50))
            assert dog.observe({"type": "solver.fallback"}) == []


class TestCertificateGapRule:
    def test_fires_above_tol_only(self):
        dog = Watchdog([CertificateGapRule(tol=1e-6)])
        ok = {"type": "diag.certificate", "slot": 1, "relative_gap": 1e-9}
        bad = {"type": "diag.certificate", "slot": 2, "relative_gap": 1e-3}
        assert dog.observe(ok) == []
        fired = dog.observe(bad)
        assert [a.rule for a in fired] == ["certificate-gap"]
        assert fired[0].slot == 2


class TestRatioBoundRule:
    def test_point_above_its_own_bound_fires(self):
        dog = Watchdog([RatioBoundRule()])
        below = {"type": "diag.ratio.point", "slot": 3, "ratio": 1.2, "bound": 2.0}
        above = {"type": "diag.ratio.point", "slot": 4, "ratio": 2.5, "bound": 2.0}
        assert dog.observe(below) == []
        fired = dog.observe(above)
        assert [a.rule for a in fired] == ["ratio-over-bound"]

    def test_explicit_violation_event_always_fires(self):
        dog = Watchdog([RatioBoundRule()])
        violation = {
            "type": "diag.ratio.violation", "slot": 1, "ratio": 2.1, "bound": 2.0,
        }
        assert [a.rule for a in dog.observe(violation)] == ["ratio-over-bound"]


class TestWatchdogEngine:
    def test_alert_records_are_never_reevaluated(self):
        dog = Watchdog(default_rules())
        alert = Alert(rule="solver-stall", message="m").as_event()
        assert dog.observe(alert) == []
        assert dog.alerts == []

    def test_alerts_accumulate_in_firing_order(self):
        dog = Watchdog([CertificateGapRule(tol=0.0)])
        dog.observe({"type": "diag.certificate", "slot": 0, "relative_gap": 1.0})
        dog.observe({"type": "diag.certificate", "slot": 1, "relative_gap": 1.0})
        assert [a.slot for a in dog.alerts] == [0, 1]


class TestWatchdogSink:
    def test_unbound_sink_writes_alerts_to_inner(self):
        ring = RingSink()
        sink = WatchdogSink(ring, rules=[CertificateGapRule(tol=0.0)])
        sink.emit({"type": "diag.certificate", "slot": 0, "relative_gap": 1.0})
        kinds = [r["type"] for r in ring.records]
        assert kinds == ["diag.certificate", "alert"]
        assert ring.records[1]["rule"] == "certificate-gap"

    def test_bound_sink_routes_alerts_through_the_registry(self):
        ring = RingSink()
        sink = WatchdogSink(ring, rules=[CertificateGapRule(tol=0.0)])
        registry = MetricsRegistry(sink=sink)
        sink.bind(registry)
        with registry.context(run=3):
            registry.event("diag.certificate", slot=0, relative_gap=1.0)
        # The alert went through registry.event: context-tagged, present
        # both in the in-memory buffer and the inner sink, after its
        # triggering event in both orders.
        assert [e["type"] for e in registry.events] == ["diag.certificate", "alert"]
        assert registry.events[1]["run"] == 3
        assert [r["type"] for r in ring.records] == ["diag.certificate", "alert"]

    def test_repeated_alerts_are_suppressed_within_the_cooldown(self):
        """Regression pin: one alert per rule per cooldown window.

        A sustained certificate gap fires the rule on every slot; the
        sink must emit the first alert, suppress the repeats, and count
        them in both ``.suppressed`` and the ``watchdog.suppressed``
        counter.
        """
        ring = RingSink()
        sink = WatchdogSink(ring, rules=[CertificateGapRule(tol=0.0)], cooldown=25)
        registry = MetricsRegistry(sink=sink)
        sink.bind(registry)
        for slot in range(10):
            registry.event("slot", slot=slot, wall_ms=1.0)
            registry.event("diag.certificate", slot=slot, relative_gap=1.0)
        alerts = [r for r in ring.records if r["type"] == "alert"]
        assert len(alerts) == 1
        assert sink.suppressed == 9
        assert registry.counter("watchdog.suppressed").value == 9
        # The engine's history stays complete for post-mortems.
        assert len(sink.watchdog.alerts) == 10

    def test_alert_re_emits_after_the_cooldown_expires(self):
        ring = RingSink()
        sink = WatchdogSink(ring, rules=[CertificateGapRule(tol=0.0)], cooldown=3)
        registry = MetricsRegistry(sink=sink)
        sink.bind(registry)
        for slot in range(8):
            registry.event("slot", slot=slot, wall_ms=1.0)
            registry.event("diag.certificate", slot=slot, relative_gap=1.0)
        alerts = [r for r in ring.records if r["type"] == "alert"]
        # Emitted at slots 0, 3, 6 — once per 3-slot window.
        assert len(alerts) == 3

    def test_zero_cooldown_disables_suppression(self):
        ring = RingSink()
        sink = WatchdogSink(ring, rules=[CertificateGapRule(tol=0.0)], cooldown=0)
        registry = MetricsRegistry(sink=sink)
        sink.bind(registry)
        for slot in range(5):
            registry.event("slot", slot=slot, wall_ms=1.0)
            registry.event("diag.certificate", slot=slot, relative_gap=1.0)
        alerts = [r for r in ring.records if r["type"] == "alert"]
        assert len(alerts) == 5
        assert sink.suppressed == 0

    def test_injected_solver_stall_lands_in_streamed_manifest(self, tmp_path):
        """Acceptance: a stalled slot produces an alert event in the file."""
        path = tmp_path / "run.jsonl"
        with streaming_manifest_session(
            path, watchdog_rules=default_rules()
        ) as registry:
            for record in _slots(20):
                registry.event("slot", **{k: v for k, v in record.items()
                                          if k != "type"})
            registry.event("slot", slot=20, wall_ms=500.0)  # the stall
        record = read_manifest(path)
        alerts = record.events_of_type("alert")
        assert [a["rule"] for a in alerts] == ["solver-stall"]
        assert alerts[0]["slot"] == 20
