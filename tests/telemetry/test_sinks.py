"""Event sinks: streaming manifest writer, ring buffers, bounded registries.

The acceptance tests of the streaming plane: a manifest streamed
incrementally must be cost-identical (1e-9) to one buffered and written
after the fact — including through the parallel sweep's per-worker
snapshot merge — and must be readable as a valid partial manifest at any
instant before finalize.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import load_manifest, verify_manifest_costs
from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.cli import main
from repro.simulation import Scenario, compare_algorithms
from repro.telemetry import (
    MetricsRegistry,
    RingSink,
    StreamingManifestWriter,
    read_manifest,
    streaming_manifest_session,
    telemetry_session,
    write_manifest,
)

TINY = ["--users", "4", "--slots", "2", "--repetitions", "1"]


def _run_totals(record) -> list[tuple]:
    """(algorithm, totals) per run_end, in file order."""
    return [
        (event.get("algorithm"), event["totals"]) for event in record.run_ends
    ]


class TestRingSink:
    def test_keeps_newest_and_counts_drops(self):
        ring = RingSink(capacity=2)
        for index in range(5):
            ring.emit({"type": "slot", "slot": index})
        assert [r["slot"] for r in ring.records] == [3, 4]
        assert ring.emitted == 5
        assert ring.dropped == 3

    def test_zero_capacity_retains_nothing(self):
        ring = RingSink(capacity=0)
        ring.emit({"type": "slot"})
        assert list(ring.records) == []
        assert ring.dropped == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            RingSink(capacity=-1)


class TestRegistryEventBounds:
    def test_ring_mode_evicts_and_counts(self):
        registry = MetricsRegistry(max_events=2)
        for index in range(5):
            registry.event("slot", slot=index)
        assert [e["slot"] for e in registry.events] == [3, 4]
        assert registry.counter("telemetry.events.dropped").value == 3

    def test_zero_keeps_nothing_in_memory(self):
        registry = MetricsRegistry(max_events=0)
        registry.event("slot", slot=0)
        assert list(registry.events) == []

    def test_default_is_unbounded_without_drop_counter(self):
        registry = MetricsRegistry()
        for index in range(5):
            registry.event("slot", slot=index)
        assert len(registry.events) == 5
        assert "telemetry.events.dropped" not in registry.snapshot()["counters"]

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            MetricsRegistry(max_events=-1)

    def test_events_forward_to_sink_even_when_dropped(self):
        ring = RingSink(capacity=10)
        registry = MetricsRegistry(sink=ring, max_events=0)
        registry.event("slot", slot=7)
        assert [r["slot"] for r in ring.records] == [7]


class TestStreamingManifestWriter:
    def test_start_line_is_on_disk_immediately(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = StreamingManifestWriter(path, config={"users": 4})
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "manifest_start"
        assert first["config"] == {"users": 4}
        assert first["streaming"] is True
        writer.finalize(None)

    def test_partial_file_reads_as_truncated_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = StreamingManifestWriter(path, flush_every=1)
        writer.emit({"type": "slot", "slot": 0, "total": 1.0})
        writer.emit({"type": "slot", "slot": 1, "total": 2.0})
        # Before finalize: a valid partial manifest (satellite c).
        record = read_manifest(path, strict=False)
        assert record.truncated
        assert [e["slot"] for e in record.slot_events] == [0, 1]
        writer.finalize(None)

    def test_finalized_file_passes_strict_read(self, tmp_path):
        path = tmp_path / "run.jsonl"
        registry = MetricsRegistry()
        registry.counter("solver.iterations").inc(3)
        with StreamingManifestWriter(path, flush_every=1) as writer:
            writer.emit({"type": "slot", "slot": 0})
            writer.finalize(registry)
        record = read_manifest(path)  # strict
        assert not record.truncated
        assert record.counters == {"solver.iterations": 3.0}
        assert len(record.events) == 1

    def test_finalize_is_idempotent_and_emit_after_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = StreamingManifestWriter(path)
        writer.emit({"type": "slot", "slot": 0})
        assert writer.finalize(None) == path
        before = path.read_text()
        assert writer.finalize(None) == path
        assert path.read_text() == before
        with pytest.raises(ValueError, match="finalized"):
            writer.emit({"type": "slot", "slot": 1})

    def test_interval_flush_policy(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = StreamingManifestWriter(
            path, flush_every=1000, flush_interval_s=0.0
        )
        writer.emit({"type": "slot", "slot": 0})
        # interval 0 means every emit lands on disk despite flush_every.
        assert sum(1 for _ in path.open()) == 2  # start + slot
        writer.finalize(None)

    def test_bad_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            StreamingManifestWriter(tmp_path / "x.jsonl", flush_every=0)


class TestStreamingSession:
    def test_streamed_equals_buffered_bit_identical(self, tmp_path):
        instance = Scenario(num_users=4, num_slots=3).build(seed=11)
        algorithms = lambda: [OfflineOptimal(), OnlineGreedy()]  # noqa: E731

        buffered = tmp_path / "buffered.jsonl"
        with telemetry_session() as registry:
            compare_algorithms(algorithms(), instance)
        write_manifest(buffered, registry)

        streamed = tmp_path / "streamed.jsonl"
        with streaming_manifest_session(streamed):
            compare_algorithms(algorithms(), instance)

        a, b = load_manifest(buffered), load_manifest(streamed)
        assert _run_totals(a) == _run_totals(b)  # exact float equality
        for check in verify_manifest_costs(b):
            assert check.ok(tol=1e-9), (check.key, check.deviation)

    def test_memory_bounded_by_default(self, tmp_path):
        with streaming_manifest_session(tmp_path / "run.jsonl") as registry:
            for index in range(100):
                registry.event("slot", slot=index)
            assert list(registry.events) == []  # nothing retained in RAM
        record = load_manifest(tmp_path / "run.jsonl")
        assert len(record.slot_events) == 100  # everything on disk

    def test_finalizes_even_when_the_block_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with streaming_manifest_session(path) as registry:
                registry.event("slot", slot=0)
                raise RuntimeError("boom")
        record = read_manifest(path)  # finalized despite the crash
        assert [e["slot"] for e in record.slot_events] == [0]


class TestCliStreaming:
    @pytest.mark.parametrize("workers", ["1", "4"])
    def test_streamed_cli_run_matches_buffered(self, tmp_path, capsys, workers):
        """Acceptance: run_end totals bit-identical (1e-9) buffered vs
        streamed, serial and under ``--workers 4``."""
        argv = ["fig2", *TINY, "--workers", workers]
        buffered = tmp_path / "buffered.jsonl"
        streamed = tmp_path / "streamed.jsonl"
        assert main(argv + ["--telemetry", str(buffered)]) == 0
        assert main(argv + ["--telemetry", str(streamed), "--stream"]) == 0
        capsys.readouterr()

        a, b = load_manifest(buffered), load_manifest(streamed)
        totals_a, totals_b = _run_totals(a), _run_totals(b)
        assert len(totals_a) == len(totals_b) > 0
        for (alg_a, t_a), (alg_b, t_b) in zip(totals_a, totals_b):
            assert alg_a == alg_b
            for key in t_a:
                scale = max(1.0, abs(t_a[key]))
                assert abs(t_a[key] - t_b[key]) <= 1e-9 * scale
        for check in verify_manifest_costs(b):
            assert check.ok(tol=1e-9), (check.key, check.deviation)

    def test_stream_requires_telemetry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig2", *TINY, "--stream"])
        assert excinfo.value.code == 2
        assert "--telemetry" in capsys.readouterr().err

    def test_ring_events_flag_bounds_memory(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        argv = ["fig2", *TINY, "--telemetry", str(path), "--stream",
                "--ring-events", "0"]
        assert main(argv) == 0
        capsys.readouterr()
        record = load_manifest(path)
        assert record.slot_events  # streamed to disk regardless
