"""Profiling plane: phase timers, the sampling profiler, and exports.

The two load-bearing contracts mirror the telemetry spine's: profiling
OFF is a true no-op (``phase()`` hands back a shared no-op timer, no
``prof.*`` events anywhere), and profiling ON observes only — the same
seeded simulation produces bit-identical costs, with every slot's
per-phase attribution summing to its wall time by construction.
"""

from __future__ import annotations

import json
import threading
import time

from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.observations import (
    SystemDescription,
    observations_from_instance,
)
from repro.simulation.scenario import Scenario
from repro.simulation.spine import simulate
from repro.telemetry import (
    MetricsRegistry,
    PhaseAccumulator,
    SamplingProfiler,
    active_profile,
    merge_folded,
    phase,
    profiling_session,
    speedscope_document,
    telemetry_session,
    write_collapsed,
    write_speedscope,
)
from repro.telemetry.profiling import _NOOP_TIMER


class TestPhaseTimers:
    def test_off_by_default_hands_back_the_shared_noop(self):
        assert active_profile() is None
        assert phase("ipm.assemble") is _NOOP_TIMER

    def test_accumulator_add_and_folded(self):
        acc = PhaseAccumulator()
        acc.add("a", 2.0)
        acc.add("a", 3.0)
        acc.add("b", 1.0)
        assert acc.folded() == {"a": 5.0, "b": 1.0}

    def test_marker_since_windows_a_delta(self):
        acc = PhaseAccumulator()
        acc.add("a", 2.0)
        mark = acc.marker()
        acc.add("a", 4.0)
        acc.add("b", 1.0)
        assert acc.since(mark) == {"a": 4.0, "b": 1.0}

    def test_threads_do_not_pollute_each_others_windows(self):
        acc = PhaseAccumulator()
        ready = threading.Event()
        release = threading.Event()

        def other():
            acc.add("a", 100.0)
            ready.set()
            release.wait(5.0)
            acc.add("a", 100.0)

        thread = threading.Thread(target=other)
        thread.start()
        ready.wait(5.0)
        mark = acc.marker()
        acc.add("a", 1.0)
        release.set()
        thread.join(5.0)
        # This thread's window sees only its own 1.0 ms...
        assert acc.since(mark) == {"a": 1.0}
        # ...while the folded profile merges every thread by addition.
        assert acc.folded() == {"a": 201.0}

    def test_session_times_phases_and_emits_profile_events(self):
        registry = MetricsRegistry()
        with telemetry_session(registry):
            with profiling_session(hz=0.0) as handle:
                assert active_profile() is not None
                with phase("work.sleep"):
                    time.sleep(0.002)
        assert active_profile() is None
        assert handle.phase_folded["work.sleep"] >= 1.0  # ms
        sources = [
            e["source"] for e in registry.events if e["type"] == "prof.profile"
        ]
        assert "phases" in sources

    def test_merge_folded_is_associative_addition(self):
        a = {"x;y": 2.0, "z": 1.0}
        b = {"x;y": 3.0}
        assert merge_folded(a, b) == {"x;y": 5.0, "z": 1.0}
        assert merge_folded(merge_folded(a, b), {}) == merge_folded(a, b)


class TestSamplingProfiler:
    def test_sample_once_folds_other_threads_stacks(self):
        marker = threading.Event()
        stop = threading.Event()

        def parked():
            marker.set()
            stop.wait(10.0)

        thread = threading.Thread(target=parked, name="parked")
        thread.start()
        marker.wait(5.0)
        profiler = SamplingProfiler(hz=1.0)
        profiler.sample_once()
        stop.set()
        thread.join(5.0)
        folded = profiler.stop()
        assert folded, "no stacks sampled"
        assert any("parked" in stack for stack in folded)
        # Stacks fold outermost-first, frames joined by ';'.
        assert all(isinstance(count, int) and count > 0 for count in folded.values())


class TestExports:
    FOLDED = {"main;solve": 3.0, "main;solve;factorize": 2.0, "main": 1.0}

    def test_speedscope_document_schema(self):
        doc = speedscope_document(
            [{"name": "phases", "unit": "ms", "folded": self.FOLDED}]
        )
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert set(frames) == {"main", "solve", "factorize"}
        profile = doc["profiles"][0]
        assert profile["unit"] == "milliseconds"
        # Weights are carried per sampled stack; they sum to the fold total.
        assert sum(profile["weights"]) == sum(self.FOLDED.values())
        assert len(profile["samples"]) == len(profile["weights"])
        json.loads(json.dumps(doc))

    def test_write_speedscope_and_collapsed(self, tmp_path):
        out = write_speedscope(
            tmp_path / "p.json",
            [{"name": "phases", "unit": "ms", "folded": self.FOLDED}],
        )
        assert json.loads(out.read_text())["profiles"]
        collapsed = write_collapsed(tmp_path / "p.folded", self.FOLDED)
        lines = collapsed.read_text().splitlines()
        assert "main;solve 3" in lines
        assert len(lines) == len(self.FOLDED)


class TestObserveOnly:
    def _run(self, *, profiled: bool):
        instance = Scenario(num_users=4, num_slots=3).build(seed=11)
        system = SystemDescription.from_instance(instance)
        observations = observations_from_instance(instance)
        registry = MetricsRegistry()
        with telemetry_session(registry):
            controller = OnlineRegularizedAllocator().as_controller(system)
            if profiled:
                with profiling_session(hz=0.0):
                    result = simulate(controller, observations, system)
            else:
                result = simulate(controller, observations, system)
        return result, registry

    def test_costs_bit_identical_with_and_without_profiling(self):
        bare, bare_registry = self._run(profiled=False)
        profiled, prof_registry = self._run(profiled=True)
        assert profiled.total_cost == bare.total_cost  # exact, not approx
        assert profiled.breakdown.totals() == bare.breakdown.totals()
        # Profiling off leaves the manifest clean of prof.* events.
        assert not [
            e
            for e in bare_registry.events
            if str(e.get("type", "")).startswith("prof.")
        ]

    def test_per_slot_phase_sums_match_slot_wall(self):
        _, registry = self._run(profiled=True)
        slots = [e for e in registry.events if e.get("type") == "prof.phases"]
        assert slots, "profiled run emitted no prof.phases events"
        for event in slots:
            attributed = sum(event["phases"].values())
            assert attributed <= event["wall_ms"] * 1.05 + 1e-6
            assert attributed >= event["wall_ms"] * 0.95 - 1e-6
        names = set().union(*(e["phases"] for e in slots))
        assert "spine.unattributed" in names
        assert any(name.startswith("ipm.") for name in names)
        # The per-phase histograms feed /metrics and the live watch.
        assert any(
            name.startswith("prof.phase_ms.")
            for name in registry.snapshot()["histograms"]
        )
