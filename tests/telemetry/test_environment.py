"""Environment fingerprint: content, manifest stamping, doctor surface."""

from __future__ import annotations

from repro.bench.doctor import doctor_report
from repro.telemetry import (
    MetricsRegistry,
    environment_fingerprint,
    read_manifest,
    streaming_manifest_session,
    telemetry_session,
    write_manifest,
)


class TestFingerprint:
    def test_carries_the_reproducibility_relevant_versions(self):
        fingerprint = environment_fingerprint()
        for key in ("python", "implementation", "numpy", "blas", "platform",
                    "machine", "cpu_count", "executable", "repro_flags"):
            assert key in fingerprint, key
        assert fingerprint["python"].count(".") >= 1
        assert isinstance(fingerprint["repro_flags"], dict)

    def test_captures_repro_env_flags(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "on")
        fingerprint = environment_fingerprint()
        assert fingerprint["repro_flags"]["REPRO_TEST_FLAG"] == "on"

    def test_is_json_serializable(self):
        import json

        json.dumps(environment_fingerprint())


class TestManifestStamping:
    def test_buffered_manifest_start_carries_the_fingerprint(self, tmp_path):
        path = tmp_path / "run.jsonl"
        registry = MetricsRegistry()
        with telemetry_session(registry):
            registry.event("slot", slot=0, wall_ms=1.0)
        write_manifest(path, registry, config={"command": "test"})
        record = read_manifest(path)
        assert record.environment["python"]
        assert record.environment["numpy"]

    def test_streamed_manifest_start_carries_the_fingerprint(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with streaming_manifest_session(path, config={}) as registry:
            registry.event("slot", slot=0, wall_ms=1.0)
        record = read_manifest(path)
        assert record.environment["python"]

    def test_pre_fingerprint_manifests_read_back_empty(self, tmp_path):
        import json

        path = tmp_path / "old.jsonl"
        lines = [
            {"type": "manifest_start", "format": "repro.telemetry/1",
             "created_unix": 0.0, "config": {}},
            {"type": "manifest_end", "events": 0},
        ]
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        record = read_manifest(path)
        assert record.environment == {}

    def test_doctor_surfaces_the_environment_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with streaming_manifest_session(path, config={}) as registry:
            registry.event("slot", slot=0, wall_ms=1.0)
        report = doctor_report(path)
        assert "environment:" in report
        assert "numpy" in report

    def test_doctor_flags_pre_fingerprint_manifests(self, tmp_path):
        import json

        path = tmp_path / "old.jsonl"
        lines = [
            {"type": "manifest_start", "format": "repro.telemetry/1",
             "created_unix": 0.0, "config": {}},
            {"type": "manifest_end", "events": 0},
        ]
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        report = doctor_report(path)
        assert "pre-fingerprint" in report
