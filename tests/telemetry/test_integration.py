"""End-to-end telemetry guarantees: bit-identical results, deterministic
parallel aggregation, and a CLI manifest whose costs check out.

These are the acceptance tests of the telemetry layer:

* enabling telemetry changes **nothing** about computed results;
* sweep metrics aggregate identically at any worker count (snapshots
  merge in input order on both paths);
* ``repro-edge fig2 --telemetry run.jsonl`` emits a parseable manifest
  whose summed per-slot costs match the reported breakdowns to 1e-9.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import assert_manifest_costs, load_manifest, verify_manifest_costs
from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.cli import main
from repro.core.regularization import OnlineRegularizedAllocator
from repro.parallel import SweepCell, SweepExecutor
from repro.simulation import Scenario, compare_algorithms
from repro.telemetry import telemetry_session, walk_spans


def _strip_timing(snapshot: dict) -> dict:
    """A snapshot with wall-clock values removed (counts kept)."""
    histograms = {
        name: {"count": data["count"]}
        if "wall" in name
        else dict(data)
        for name, data in snapshot["histograms"].items()
    }
    events = [
        {k: v for k, v in event.items() if k not in ("wall_ms", "wall_s")}
        for event in snapshot["events"]
    ]
    span_shape = [
        (depth, node["name"]) for depth, node in walk_spans(snapshot["spans"])
    ]
    return {
        "counters": snapshot["counters"],
        "gauges": {n: v for n, v in snapshot["gauges"].items() if n != "sweep.workers"},
        "histograms": histograms,
        "events": events,
        "spans": span_shape,
    }


def _cells(seeds):
    scenario = Scenario(num_users=4, num_slots=2)
    algorithms = (OfflineOptimal(), OnlineGreedy())
    return [
        SweepCell(key=("cell", k), scenario=scenario, algorithms=algorithms, seed=seed)
        for k, seed in enumerate(seeds)
    ]


class TestBitIdentical:
    def test_compare_algorithms_unchanged_by_telemetry(self):
        instance = Scenario(num_users=4, num_slots=3).build(seed=11)
        algorithms = [OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator()]
        plain = compare_algorithms(algorithms, instance)
        with telemetry_session():
            observed = compare_algorithms(
                [OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator()],
                instance,
            )
        assert plain.ratios() == observed.ratios()  # exact float equality
        for name, result in plain.results.items():
            assert result.breakdown.totals() == observed.results[name].breakdown.totals()
            assert np.array_equal(result.schedule.x, observed.results[name].schedule.x)

    def test_cli_report_identical_with_and_without_telemetry(self, tmp_path, capsys):
        argv = ["fig2", "--users", "4", "--slots", "2", "--repetitions", "1"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--telemetry", str(tmp_path / "run.jsonl")]) == 0
        assert capsys.readouterr().out == plain


class TestParallelAggregation:
    def test_serial_and_pooled_metrics_agree(self):
        cells = _cells([0, 1, 2, 3])
        with telemetry_session() as serial_registry:
            serial_results = SweepExecutor(max_workers=1).run_cells(cells)
        with telemetry_session() as pooled_registry:
            pooled_results = SweepExecutor(max_workers=2).run_cells(cells)

        assert [r.ok for r in serial_results] == [r.ok for r in pooled_results]
        serial = _strip_timing(serial_registry.snapshot())
        pooled = _strip_timing(pooled_registry.snapshot())
        assert serial == pooled
        # The sweep itself was counted, and the cells really recorded.
        assert serial["counters"]["sweep.cells"] == 4.0
        assert serial["counters"]["accounting.slots"] > 0

    def test_cell_snapshots_ride_home_and_merge_in_input_order(self):
        cells = _cells([5, 6])
        with telemetry_session() as registry:
            results = SweepExecutor(max_workers=1).run_cells(cells)
        assert all(result.telemetry is not None for result in results)
        merged_keys = [
            event.get("cell")
            for event in registry.events
            if event.get("type") == "run_end"
        ]
        # Both cells' runs are present, grouped cell 0 first (input order).
        assert merged_keys == sorted(merged_keys, key=lambda key: key[1])

    def test_no_snapshots_when_disabled(self):
        results = SweepExecutor(max_workers=1).run_cells(_cells([0]))
        assert results[0].telemetry is None

    def test_cell_spans_grouped_under_per_cell_roots(self):
        """Merged sweeps keep one ``cell`` span root per cell (serial and
        pooled alike), so doctor can attribute spans on parallel runs."""
        cells = _cells([7, 8])
        for workers in (1, 2):
            with telemetry_session() as registry:
                SweepExecutor(max_workers=workers).run_cells(cells)
            roots = registry.spans
            assert [node["name"] for node in roots] == ["cell", "cell"]
            assert [node["meta"]["cell"] for node in roots] == [c.key for c in cells]
            for node in roots:
                assert node["duration_ms"] > 0.0
                # The cell's own trace tree survives underneath.
                assert {child["name"] for child in node["children"]} == {"run"}


class TestCliManifest:
    def test_fig2_manifest_costs_match_to_1e_9(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        argv = [
            "fig2",
            "--users",
            "4",
            "--slots",
            "2",
            "--repetitions",
            "1",
            "--telemetry",
            str(path),
        ]
        assert main(argv) == 0
        capsys.readouterr()

        record = load_manifest(path)
        assert record.config["command"] == "fig2"
        assert record.config["users"] == 4
        checks = verify_manifest_costs(record)
        assert checks, "expected at least one run in the manifest"
        for check in checks:
            assert check.slots == 2
            assert check.ok(tol=1e-9), (check.key, check.deviation)
        assert_manifest_costs(record, tol=1e-9)

    def test_metrics_summary_appended(self, capsys):
        argv = [
            "quickstart",
            "--users",
            "4",
            "--slots",
            "2",
            "--metrics-summary",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "metrics summary" in out
        assert "accounting.cost.total" in out


class TestEngineTagging:
    def test_runs_are_tagged_and_spanned(self):
        instance = Scenario(num_users=4, num_slots=2).build(seed=3)
        with telemetry_session() as registry:
            compare_algorithms([OfflineOptimal(), OnlineGreedy()], instance)
        run_ends = [e for e in registry.events if e["type"] == "run_end"]
        assert len(run_ends) == 2
        assert len({event["run"] for event in run_ends}) == 2
        assert {event["algorithm"] for event in run_ends} == {
            "offline-opt",
            "online-greedy",
        }
        roots = [node["name"] for node in registry.spans]
        assert roots == ["run", "run"]
        assert registry.spans[0]["children"][0]["name"] == "simulate"
