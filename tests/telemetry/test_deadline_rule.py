"""DeadlineMissRule: alert on clustered serving deadline misses."""

from repro.telemetry import DeadlineMissRule, Watchdog, default_rules


def _slot(index: int) -> dict:
    return {"type": "slot", "slot": index, "wall_ms": 1.0}


def _miss(slot: int) -> dict:
    return {"type": "service.deadline.miss", "slot": slot, "latency_ms": 9.0}


class TestDeadlineMissRule:
    def test_fires_once_when_the_threshold_is_reached(self):
        dog = Watchdog([DeadlineMissRule(threshold=2, window=5)])
        assert dog.observe(_slot(0)) == []
        assert dog.observe(_miss(0)) == []
        assert dog.observe(_slot(1)) == []
        fired = dog.observe(_miss(1))
        assert [a.rule for a in fired] == ["deadline-miss"]
        assert fired[0].slot == 1
        assert "2 deadline misses" in fired[0].message
        # A third miss in the same storm does not re-fire.
        assert dog.observe(_miss(1)) == []

    def test_old_misses_age_out_of_the_window(self):
        dog = Watchdog([DeadlineMissRule(threshold=2, window=3)])
        dog.observe(_miss(0))
        for index in range(5):
            dog.observe(_slot(index))
        # The first miss is now outside the window: one fresh miss is fine.
        assert dog.observe(_miss(5)) == []

    def test_threshold_one_alerts_on_every_storm(self):
        dog = Watchdog([DeadlineMissRule(threshold=1, window=2)])
        assert len(dog.observe(_miss(0))) == 1
        for index in range(4):
            dog.observe(_slot(index))
        assert len(dog.observe(_miss(4))) == 1

    def test_part_of_the_default_rule_set(self):
        names = [rule.name for rule in default_rules()]
        assert "deadline-miss" in names

    def test_state_counts_misses(self):
        dog = Watchdog([DeadlineMissRule()])
        dog.observe_all([_slot(0), _miss(0), _slot(1), _miss(1)])
        assert dog.state.deadline_misses == 2
