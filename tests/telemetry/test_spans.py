"""Tests for span recording and the trace-tree read-side helpers."""

from __future__ import annotations

from repro.telemetry import (
    MetricsRegistry,
    render_spans,
    span,
    span_durations,
    telemetry_session,
    walk_spans,
)


def _tree() -> list[dict]:
    """Two roots; the first has a child with its own child."""
    return [
        {
            "name": "run",
            "duration_ms": 10.0,
            "children": [
                {
                    "name": "simulate",
                    "duration_ms": 8.0,
                    "children": [
                        {"name": "slot", "duration_ms": 1.0, "children": []}
                    ],
                }
            ],
        },
        {"name": "run", "duration_ms": 5.0, "children": []},
    ]


class TestRecording:
    def test_nested_spans_form_a_tree(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
            with registry.span("inner"):
                pass
        assert len(registry.spans) == 1
        outer = registry.spans[0]
        assert outer["name"] == "outer"
        assert [child["name"] for child in outer["children"]] == ["inner", "inner"]
        assert outer["duration_ms"] >= sum(
            child["duration_ms"] for child in outer["children"]
        )

    def test_meta_merges_context_tags(self):
        registry = MetricsRegistry()
        with registry.context(run=7):
            with registry.span("run", extra="x") as node:
                pass
        assert node["meta"] == {"run": 7, "extra": "x"}

    def test_span_without_meta_omits_key(self):
        registry = MetricsRegistry()
        with registry.span("bare"):
            pass
        assert "meta" not in registry.spans[0]

    def test_duration_recorded_on_exception(self):
        registry = MetricsRegistry()
        try:
            with registry.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert registry.spans[0]["duration_ms"] >= 0.0
        # The stack unwound: a new span is a sibling, not a child.
        with registry.span("after"):
            pass
        assert [s["name"] for s in registry.spans] == ["boom", "after"]

    def test_module_level_span_targets_active_registry(self):
        with telemetry_session() as registry:
            with span("top"):
                pass
        assert [s["name"] for s in registry.spans] == ["top"]


class TestReadSide:
    def test_walk_is_depth_first_with_depths(self):
        walked = [(depth, node["name"]) for depth, node in walk_spans(_tree())]
        assert walked == [
            (0, "run"),
            (1, "simulate"),
            (2, "slot"),
            (0, "run"),
        ]

    def test_span_durations_aggregates_by_name(self):
        durations = span_durations(_tree())
        assert durations["run"] == (2, 15.0)
        assert durations["simulate"] == (1, 8.0)
        assert durations["slot"] == (1, 1.0)

    def test_render_indents_and_formats(self):
        text = render_spans(_tree())
        lines = text.splitlines()
        assert lines[0] == "run: 10.000 ms"
        assert lines[1] == "  simulate: 8.000 ms"
        assert lines[2] == "    slot: 1.000 ms"

    def test_render_min_ms_hides_subtrees(self):
        text = render_spans(_tree(), min_ms=6.0)
        assert "slot" not in text  # its own 1 ms is under the threshold
        assert "simulate" in text
        hidden = render_spans(_tree(), min_ms=9.0)
        # simulate (8 ms) is hidden and takes its slot child down with it.
        assert "simulate" not in hidden
        assert "slot" not in hidden
        assert "run" in hidden

    def test_render_empty(self):
        assert render_spans([]) == "(no spans recorded)"


class TestEdgeCases:
    def test_empty_tree_walks_and_aggregates_to_nothing(self):
        assert list(walk_spans([])) == []
        assert span_durations([]) == {}

    def test_unclosed_span_is_visible_with_zero_duration(self):
        # A crash inside a span leaves the node recorded (duration 0.0
        # until the context exits); the read side must not choke on it.
        registry = MetricsRegistry()
        cm = registry.span("never-exited")
        cm.__enter__()
        assert [s["name"] for s in registry.spans] == ["never-exited"]
        assert registry.spans[0]["duration_ms"] == 0.0
        assert span_durations(registry.spans)["never-exited"] == (1, 0.0)
        assert render_spans(registry.spans).startswith("never-exited: 0.000 ms")

    def test_deep_nesting_walks_iteratively(self):
        # walk_spans is an explicit-stack traversal; a tree far deeper
        # than the interpreter's recursion limit must still walk.
        depth = 5000
        node = {"name": "leaf", "duration_ms": 1.0, "children": []}
        for level in range(depth - 1):
            node = {"name": f"n{level}", "duration_ms": 1.0, "children": [node]}
        walked = list(walk_spans([node]))
        assert len(walked) == depth
        assert walked[0][0] == 0
        assert walked[-1] == (depth - 1, {"name": "leaf", "duration_ms": 1.0,
                                          "children": []})
        counts = span_durations([node])
        assert counts["leaf"] == (1, 1.0)
        assert len(render_spans([node]).splitlines()) == depth

    def test_deeply_nested_live_spans_round_trip(self):
        registry = MetricsRegistry()
        contexts = [registry.span(f"level{i}") for i in range(50)]
        for cm in contexts:
            cm.__enter__()
        for cm in reversed(contexts):
            cm.__exit__(None, None, None)
        walked = list(walk_spans(registry.spans))
        assert [depth for depth, _ in walked] == list(range(50))
        assert all(node["duration_ms"] >= 0.0 for _, node in walked)
