"""Exporters: Chrome trace_event layout and OpenMetrics exposition format.

Chrome traces are validated structurally (complete events, sequential
child layout, one lane per root); OpenMetrics output is re-parsed by a
mini-parser that enforces the invariants Prometheus relies on (cumulative
monotone ``le`` buckets, ``+Inf`` equals ``_count``, ``# EOF``).
"""

from __future__ import annotations

import json
import re

import pytest

from repro.telemetry import (
    MetricsRegistry,
    chrome_trace,
    openmetrics,
    read_manifest,
    sketch_upper_edge,
    write_chrome_trace,
    write_manifest,
    write_openmetrics,
)


def _tree() -> list[dict]:
    return [
        {
            "name": "run",
            "duration_ms": 10.0,
            "meta": {"algorithm": "online-approx"},
            "children": [
                {"name": "simulate", "duration_ms": 6.0, "children": []},
                {"name": "verify", "duration_ms": 2.0, "children": []},
            ],
        },
        {"name": "run", "duration_ms": 5.0, "children": []},
    ]


class TestChromeTrace:
    def test_events_are_complete_phase_with_us_timing(self):
        trace = chrome_trace(_tree())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [e["ph"] for e in events] == ["X"] * 4
        root = events[0]
        assert root["name"] == "run"
        assert root["ts"] == 0.0
        assert root["dur"] == 10_000.0  # ms -> us
        assert root["args"] == {"algorithm": "online-approx"}

    def test_children_laid_out_sequentially_from_parent_start(self):
        events = chrome_trace(_tree())["traceEvents"]
        simulate = next(e for e in events if e["name"] == "simulate")
        verify = next(e for e in events if e["name"] == "verify")
        assert simulate["ts"] == 0.0
        assert verify["ts"] == simulate["ts"] + simulate["dur"]
        # Children stay inside the parent interval.
        assert verify["ts"] + verify["dur"] <= events[0]["dur"]

    def test_each_root_tree_gets_its_own_lane(self):
        events = chrome_trace(_tree(), pid=7)["traceEvents"]
        by_lane = {}
        for event in events:
            assert event["pid"] == 7
            by_lane.setdefault(event["tid"], []).append(event["name"])
        assert by_lane == {0: ["run", "simulate", "verify"], 1: ["run"]}

    def test_empty_spans_give_an_empty_trace(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_write_round_trips_through_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _tree())
        loaded = json.loads(path.read_text())
        assert loaded == chrome_trace(_tree())

    def test_live_registry_spans_export(self, tmp_path):
        registry = MetricsRegistry()
        with registry.span("run", algorithm="x"):
            with registry.span("simulate"):
                pass
        events = chrome_trace(registry.spans)["traceEvents"]
        assert [e["name"] for e in events] == ["run", "simulate"]
        assert events[1]["dur"] <= events[0]["dur"]


def _linked_forest() -> list[dict]:
    """A merged multi-worker + batched-lane forest, as merge_snapshot
    leaves it: cell roots at TOP level (not under the dispatch span),
    connected only by explicit trace meta — worker cells with their own
    pids, plus a lane root parented to a cell span."""
    return [
        {
            "name": "run",
            "duration_ms": 20.0,
            "meta": {"trace_id": "t1", "span_id": "root"},
            "children": [
                {
                    "name": "sweep.map",
                    "duration_ms": 18.0,
                    "meta": {
                        "trace_id": "t1",
                        "span_id": "disp",
                        "parent_span_id": "root",
                    },
                    "children": [],
                }
            ],
        },
        {
            "name": "cell",
            "duration_ms": 9.0,
            "meta": {
                "cell": "c0",
                "pid": 4001,
                "trace_id": "t1",
                "span_id": "cell0",
                "parent_span_id": "disp",
            },
            "children": [{"name": "solve", "duration_ms": 7.0, "children": []}],
        },
        {
            "name": "cell",
            "duration_ms": 8.0,
            "meta": {
                "cell": "c1",
                "pid": 4002,
                "trace_id": "t1",
                "span_id": "cell1",
                "parent_span_id": "disp",
            },
            "children": [],
        },
        {
            "name": "lane",
            "duration_ms": 3.0,
            "meta": {
                "trace_id": "t1",
                "span_id": "lane0",
                "parent_span_id": "cell0",
            },
            "children": [],
        },
    ]


class TestLinkedChromeTrace:
    """Cross-process parent resolution for traced (merged) forests."""

    def test_every_span_has_a_resolvable_parent(self):
        doc = chrome_trace(_linked_forest())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        ids = {e["args"]["span_id"] for e in events}
        roots = [e for e in events if "parent_span_id" not in e["args"]]
        assert [e["name"] for e in roots] == ["run"]
        for event in events:
            if event is not roots[0]:
                assert event["args"]["parent_span_id"] in ids, event["name"]

    def test_untraced_interior_spans_get_synthetic_resolvable_ids(self):
        doc = chrome_trace(_linked_forest())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        solve = next(e for e in events if e["name"] == "solve")
        cell0 = next(e for e in events if e["args"].get("span_id") == "cell0")
        assert solve["args"]["parent_span_id"] == "cell0"
        assert solve["args"]["span_id"].startswith("auto")
        assert solve["pid"] == cell0["pid"] == 4001

    def test_adopted_roots_start_at_their_parents_start(self):
        doc = chrome_trace(_linked_forest())
        events = {
            e["args"]["span_id"]: e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and "span_id" in e.get("args", {})
        }
        disp = events["disp"]
        assert events["cell0"]["ts"] == disp["ts"]
        assert events["cell1"]["ts"] == disp["ts"]
        # Chained adoption: the lane adopts under cell0's realized start.
        assert events["lane0"]["ts"] == events["cell0"]["ts"]

    def test_no_orphan_pids_or_tids(self):
        doc = chrome_trace(_linked_forest(), pid=7)
        named_processes = {
            e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        named_threads = {
            (e["pid"], e["tid"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {(e["pid"], e["tid"]) for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {pid for pid, _ in used} <= named_processes
        assert used <= named_threads
        # Worker cells keep their own pids; untraced pid falls back to 7.
        assert {7, 4001, 4002} <= named_processes

    def test_linked_output_round_trips_through_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "linked.json", _linked_forest())
        assert json.loads(path.read_text()) == chrome_trace(_linked_forest())


def _parse_openmetrics(text: str) -> dict:
    """Mini-parser: families with types, samples, and bucket lists."""
    assert text.endswith("# EOF\n")
    families: dict[str, dict] = {}
    sample_re = re.compile(r'^([a-zA-Z0-9_:]+)(\{le="([^"]+)"\})? (\S+)$')
    for line in text.splitlines()[:-1]:
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            families[name] = {"kind": kind, "samples": {}, "buckets": []}
            continue
        match = sample_re.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, _, le, value = match.groups()
        if le is not None:
            base = name.removesuffix("_bucket")
            families[base]["buckets"].append((le, float(value)))
        else:
            for suffix in ("_total", "_sum", "_count"):
                base = name.removesuffix(suffix)
                if name.endswith(suffix) and base in families:
                    families[base]["samples"][suffix] = float(value)
                    break
            else:
                assert name in families, f"sample without family: {line!r}"
                families[name]["samples"]["value"] = float(value)
    return families


class TestOpenMetrics:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("solver.iterations").inc(42)
        registry.gauge("sweep.workers").set(4)
        for value in (0.5, 1.5, 2.5, 1e9):  # 1e9 lands in the clamp bucket
            registry.histogram("slot.wall_ms").observe(value)
        return registry

    def test_counters_gauges_histograms_render(self):
        families = _parse_openmetrics(openmetrics(self._registry()))
        assert families["repro_solver_iterations"]["kind"] == "counter"
        assert families["repro_solver_iterations"]["samples"]["_total"] == 42.0
        assert families["repro_sweep_workers"]["kind"] == "gauge"
        assert families["repro_sweep_workers"]["samples"]["value"] == 4.0
        hist = families["repro_slot_wall_ms"]
        assert hist["kind"] == "histogram"
        assert hist["samples"]["_count"] == 4.0
        assert hist["samples"]["_sum"] == pytest.approx(1e9 + 4.5)

    def test_buckets_are_cumulative_and_capped_by_inf(self):
        families = _parse_openmetrics(openmetrics(self._registry()))
        buckets = families["repro_slot_wall_ms"]["buckets"]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)  # cumulative => monotone
        labels = [label for label, _ in buckets]
        assert labels.count("+Inf") == 1  # no duplicate from the clamp bucket
        assert buckets[-1] == ("+Inf", 4.0)  # +Inf carries the full count
        # Finite edges are genuine sketch edges, in increasing order.
        finite = [float(label) for label in labels[:-1]]
        assert finite == sorted(finite)

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.with/chars").inc()
        text = openmetrics(registry)
        assert "repro_weird_name_with_chars_total 1" in text

    def test_accepts_run_record_and_snapshot_dict(self, tmp_path):
        registry = self._registry()
        path = write_manifest(tmp_path / "run.jsonl", registry)
        record = read_manifest(path)
        from_record = openmetrics(record)
        from_registry = openmetrics(registry)
        from_snapshot = openmetrics(registry.snapshot())
        assert from_record == from_registry == from_snapshot

    def test_rejects_unknown_sources(self):
        with pytest.raises(TypeError, match="cannot read metrics"):
            openmetrics(42)

    def test_write_openmetrics(self, tmp_path):
        path = write_openmetrics(tmp_path / "m.prom", self._registry())
        assert path.read_text() == openmetrics(self._registry())


class TestSketchEdges:
    def test_edges_are_increasing_and_bracket_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("x")
        hist.observe(3.7)
        ((index, count),) = registry.snapshot()["histograms"]["x"]["buckets"].items()
        assert count == 1
        upper = sketch_upper_edge(int(index))
        lower = sketch_upper_edge(int(index) - 1)
        assert lower < 3.7 <= upper

    def test_clamp_and_floor_edges(self):
        assert sketch_upper_edge(-5) == sketch_upper_edge(0)
        assert sketch_upper_edge(10**9) == float("inf")
