"""Round-trip and corruption tests for the JSON-lines run manifest."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.telemetry import (
    MANIFEST_FORMAT,
    MetricsRegistry,
    read_manifest,
    write_manifest,
)


def _recorded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("solver.iterations").inc(42)
    registry.gauge("sweep.workers").set(4)
    registry.histogram("slot.wall_ms").observe(1.5)
    registry.histogram("slot.wall_ms").observe(2.5)
    with registry.context(run=1, algorithm="online-approx"):
        registry.event("slot", slot=0, op=1.0, sq=2.0, rc=0.0, mg=0.0, total=3.0)
        registry.event("run_end", slots=1, totals={"total": 3.0})
    with registry.span("run"):
        with registry.span("simulate"):
            pass
    return registry


class TestRoundTrip:
    def test_everything_survives(self, tmp_path):
        registry = _recorded_registry()
        path = tmp_path / "run.jsonl"
        config = {"command": "fig2", "users": 6}
        written = write_manifest(path, registry, config=config)
        assert written == path

        record = read_manifest(path)
        assert record.config == config
        assert record.counters == {"solver.iterations": 42.0}
        assert record.gauges == {"sweep.workers": 4.0}
        assert record.histograms["slot.wall_ms"]["count"] == 2
        assert record.histograms["slot.wall_ms"]["total"] == 4.0
        assert record.events == registry.events
        assert record.spans[0]["name"] == "run"
        assert record.spans[0]["children"][0]["name"] == "simulate"
        assert record.created_unix > 0

    def test_event_helpers(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        record = read_manifest(path)
        assert len(record.slot_events) == 1
        assert record.slot_events[0]["algorithm"] == "online-approx"
        assert len(record.run_ends) == 1
        assert record.events_of_type("nope") == []

    def test_empty_registry_round_trips(self, tmp_path):
        path = write_manifest(tmp_path / "empty.jsonl", MetricsRegistry())
        record = read_manifest(path)
        assert record.events == []
        assert record.counters == {}

    def test_numpy_values_serialize(self, tmp_path):
        registry = MetricsRegistry()
        registry.event(
            "slot", slot=np.int64(3), total=np.float64(1.5), vec=np.arange(2)
        )
        record = read_manifest(write_manifest(tmp_path / "np.jsonl", registry))
        event = record.slot_events[0]
        assert event["slot"] == 3
        assert event["total"] == 1.5
        assert event["vec"] == [0, 1]

    def test_file_is_one_json_object_per_line(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "manifest_start"
        assert records[0]["format"] == MANIFEST_FORMAT
        assert records[-1]["type"] == "manifest_end"
        assert {"metrics", "spans"} <= {r["type"] for r in records}


class TestCorruption:
    def test_truncated_file_is_rejected(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop manifest_end
        with pytest.raises(ValueError, match="truncated"):
            read_manifest(path)

    def test_event_count_mismatch_is_rejected(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        lines = path.read_text().splitlines()
        del lines[1]  # drop one event line but keep manifest_end's count
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="events"):
            read_manifest(path)

    def test_unknown_format_is_rejected(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", MetricsRegistry())
        text = path.read_text().replace(MANIFEST_FORMAT, "someone.else/9")
        path.write_text(text)
        with pytest.raises(ValueError, match="format"):
            read_manifest(path)

    def test_torn_json_line_is_rejected_when_strict(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ValueError):
            read_manifest(path)


class TestNonStrictLoad:
    def test_truncated_manifest_loads_with_flag(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop manifest_end
        record = read_manifest(path, strict=False)
        assert record.truncated
        assert record.slot_events  # everything before the tear survives

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        text = path.read_text()
        path.write_text(text[: int(len(text) * 0.6)])  # mid-record tear
        # Parse keeps every complete record and stops at the torn line.
        record = read_manifest(path, strict=False)
        assert record.truncated

    def test_complete_manifest_is_not_marked_truncated(self, tmp_path):
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        record = read_manifest(path, strict=False)
        assert not record.truncated

    def test_every_mid_line_tear_yields_a_usable_partial_record(self, tmp_path):
        """Regression sweep: tearing the file at *any* byte inside its
        last line must still return every earlier complete record."""
        path = write_manifest(tmp_path / "run.jsonl", _recorded_registry())
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        body_end = len(text) - len(lines[-1])
        # Cut at a spread of offsets inside the final line: nothing of it,
        # one byte, half of it, and all but the closing brace+newline.
        last_len = len(lines[-1])
        for offset in {0, 1, last_len // 2, last_len - 2}:
            torn = tmp_path / f"torn{offset}.jsonl"
            torn.write_text(text[: body_end + offset])
            record = read_manifest(torn, strict=False)
            assert record.truncated
            assert len(record.slot_events) == 1  # the body survived intact

    def test_live_streaming_file_reads_as_partial_run_record(self, tmp_path):
        """A manifest mid-stream (no metrics/spans/end yet, torn tail)
        loads non-strict with events intact — what `watch` relies on."""
        from repro.telemetry import StreamingManifestWriter

        path = tmp_path / "live.jsonl"
        writer = StreamingManifestWriter(path, flush_every=1)
        for slot in range(3):
            writer.emit({"type": "slot", "slot": slot, "total": 1.0})
        # Simulate a write caught mid-line by appending a torn record.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "slot", "slot": 3, "to')
        record = read_manifest(path, strict=False)
        assert record.truncated
        assert [e["slot"] for e in record.slot_events] == [0, 1, 2]
        assert record.counters == {}  # metrics section not written yet
        writer.finalize(None)
