"""Flight recorder: ring eviction, bundle IO, and deterministic replay.

The replay tests are the acceptance gate of the incident plane: a
bundle dumped from a budget-truncated run must reproduce every captured
slot's costs, iteration count, and partial flag bit-for-bit when
replayed, and a tampered or torn bundle must be caught, not glossed
over.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.observations import (
    SystemDescription,
    observations_from_instance,
)
from repro.simulation.spine import SlotStepper
from repro.solvers.base import SolveBudget
from repro.telemetry import (
    FlightRecorder,
    FlightRecorderSink,
    RingSink,
    active_recorder,
    flight_session,
    read_bundle,
    replay_bundle,
)
from repro.telemetry.flight import decode_state, encode_state
from tests.conftest import make_tiny_instance


def _tiny_setup(num_slots: int = 5, budget: SolveBudget | None = None):
    instance = make_tiny_instance(num_slots=num_slots)
    system = SystemDescription.from_instance(instance)
    observations = observations_from_instance(instance)
    allocator = OnlineRegularizedAllocator(budget=budget)
    return system, observations, allocator.as_controller(system)


def _record_run(recorder: FlightRecorder, num_slots: int = 5, budget=None):
    system, observations, controller = _tiny_setup(num_slots, budget)
    stepper = SlotStepper(
        controller, system, keep_schedule=False, recorder=recorder
    )
    for observation in observations:
        stepper.step(observation)


class TestStateCodec:
    def test_round_trips_arrays_with_dtype(self):
        value = np.arange(6, dtype=np.float64).reshape(2, 3)
        decoded = decode_state(json.loads(json.dumps(encode_state(value))))
        np.testing.assert_array_equal(decoded, value)
        assert decoded.dtype == value.dtype

    def test_round_trips_integer_arrays(self):
        value = np.array([[1, 2], [3, 4]], dtype=np.int64)
        decoded = decode_state(json.loads(json.dumps(encode_state(value))))
        assert decoded.dtype == np.int64
        np.testing.assert_array_equal(decoded, value)

    def test_distinguishes_tuples_from_lists(self):
        value = {"t": (1, 2.5, "x"), "l": [1, 2.5, "x"]}
        decoded = decode_state(json.loads(json.dumps(encode_state(value))))
        assert decoded["t"] == (1, 2.5, "x")
        assert isinstance(decoded["t"], tuple)
        assert isinstance(decoded["l"], list)

    def test_round_trips_bytes(self):
        value = {"digest": b"\x00\xffsig"}
        decoded = decode_state(json.loads(json.dumps(encode_state(value))))
        assert decoded["digest"] == b"\x00\xffsig"

    def test_numpy_scalars_become_python_scalars(self):
        assert encode_state(np.float64(1.5)) == 1.5
        assert encode_state(np.int32(7)) == 7

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            encode_state({"bad": {1, 2}})


class TestRingEviction:
    @settings(max_examples=50, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        slots=st.integers(min_value=0, max_value=40),
    )
    def test_never_exceeds_capacity_and_evicts_oldest_first(
        self, capacity, slots
    ):
        recorder = FlightRecorder(capacity)
        stepper = SimpleNamespace(
            system=object(),
            controller=object(),
            checkpoint=lambda: object(),
        )
        costs = SimpleNamespace(
            operation=0.0,
            service_quality=0.0,
            reconfiguration=0.0,
            migration=0.0,
            total=0.0,
        )
        for slot in range(slots):
            observation = SimpleNamespace(slot=slot)
            recorder.begin_slot(stepper, observation)
            recorder.end_slot(stepper, observation, costs, 0.0)
        assert len(recorder.snapshots) <= capacity
        assert recorder.snapshots_taken == slots
        expected = list(range(max(0, slots - capacity), slots))
        assert [s.slot for s in recorder.snapshots] == expected

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_unmatched_begin_is_discarded(self):
        recorder = FlightRecorder(4)
        stepper = SimpleNamespace(
            system=object(), controller=object(), checkpoint=lambda: object()
        )
        costs = SimpleNamespace(
            operation=0.0,
            service_quality=0.0,
            reconfiguration=0.0,
            migration=0.0,
            total=0.0,
        )
        recorder.begin_slot(stepper, SimpleNamespace(slot=0))
        # A different observation seals nothing (interleaved steppers).
        recorder.end_slot(stepper, SimpleNamespace(slot=0), costs, 0.0)
        assert len(recorder.snapshots) == 0


class TestFlightSession:
    def test_session_installs_and_restores_the_recorder(self):
        recorder = FlightRecorder(2)
        assert active_recorder() is None
        with flight_session(recorder):
            assert active_recorder() is recorder
            with flight_session(None):
                assert active_recorder() is None
            assert active_recorder() is recorder
        assert active_recorder() is None

    def test_global_recorder_captures_spine_slots(self):
        recorder = FlightRecorder(3)
        system, observations, controller = _tiny_setup()
        with flight_session(recorder):
            stepper = SlotStepper(controller, system, keep_schedule=False)
            for observation in observations:
                stepper.step(observation)
        assert recorder.snapshots_taken == len(observations)
        assert len(recorder.snapshots) == 3


class TestBundleIO:
    def test_dump_and_read_round_trip(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder)
        path = recorder.dump()
        bundle = read_bundle(path)
        assert bundle.reason == "manual"
        assert not bundle.truncated
        assert len(bundle.snapshots) == 4
        assert bundle.controller["kind"] == "regularized"
        assert bundle.controller["replayable"] is True
        assert bundle.environment["python"]
        assert [s["slot"] for s in bundle.snapshots] == [1, 2, 3, 4]

    def test_dump_without_snapshots_writes_nothing(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        assert recorder.dump() is None
        assert list(tmp_path.iterdir()) == []

    def test_alert_event_triggers_auto_dump(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder)
        recorder.observe_event(
            {"type": "alert", "rule": "deadline-miss", "message": "storm"}
        )
        assert len(recorder.bundles_written) == 1
        bundle = read_bundle(recorder.bundles_written[0])
        assert bundle.reason == "alert:deadline-miss"
        assert bundle.alert["rule"] == "deadline-miss"

    def test_repeated_alerts_are_cooled_down(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder)
        alert = {"type": "alert", "rule": "deadline-miss", "message": "storm"}
        recorder.observe_event(alert)
        recorder.observe_event(alert)  # same ring content: suppressed
        assert len(recorder.bundles_written) == 1
        assert recorder.dumps_suppressed == 1

    def test_sink_tees_events_into_the_context_window(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        inner = RingSink(capacity=16)
        sink = FlightRecorderSink(inner, recorder)
        sink.emit({"type": "slot", "slot": 0, "wall_ms": 1.0})
        assert inner.records[0]["type"] == "slot"
        _record_run(recorder)
        sink.emit({"type": "alert", "rule": "solver-stall", "message": "x"})
        assert len(recorder.bundles_written) == 1
        bundle = read_bundle(recorder.bundles_written[0])
        kinds = [e.get("type") for e in bundle.context["events"]]
        assert "slot" in kinds and "alert" in kinds


class TestTornBundles:
    def _torn_copy(self, tmp_path, drop_lines: int = 2):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder)
        path = recorder.dump()
        lines = path.read_text().splitlines()
        torn = tmp_path / "torn.jsonl"
        torn.write_text("\n".join(lines[:-drop_lines]) + "\n")
        return torn

    def test_strict_read_raises_on_truncation(self, tmp_path):
        torn = self._torn_copy(tmp_path)
        with pytest.raises(ValueError, match="truncated"):
            read_bundle(torn)

    def test_salvage_read_marks_truncated(self, tmp_path):
        torn = self._torn_copy(tmp_path)
        bundle = read_bundle(torn, strict=False)
        assert bundle.truncated
        assert len(bundle.snapshots) >= 1

    def test_salvage_read_drops_a_half_written_line(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder)
        path = recorder.dump()
        lines = path.read_text().splitlines()
        torn = tmp_path / "half.jsonl"
        torn.write_text("\n".join(lines[:-2]) + "\n" + lines[-2][: len(lines[-2]) // 2])
        with pytest.raises(ValueError, match="unparseable"):
            read_bundle(torn)
        bundle = read_bundle(torn, strict=False)
        assert bundle.truncated

    def test_replay_refuses_truncated_bundles(self, tmp_path):
        torn = self._torn_copy(tmp_path)
        bundle = read_bundle(torn, strict=False)
        with pytest.raises(ValueError, match="refusing to replay"):
            replay_bundle(bundle)

    def test_read_rejects_non_bundles(self, tmp_path):
        other = tmp_path / "not-a-bundle.jsonl"
        other.write_text(json.dumps({"type": "slot", "slot": 0}) + "\n")
        with pytest.raises(ValueError, match="incident_start"):
            read_bundle(other)

    def test_read_rejects_unknown_formats(self, tmp_path):
        other = tmp_path / "future.jsonl"
        other.write_text(
            json.dumps({"type": "incident_start", "format": "repro.incident/99"})
            + "\n"
        )
        with pytest.raises(ValueError, match="unknown incident format"):
            read_bundle(other)


class TestReplay:
    def test_unbudgeted_run_reproduces_bit_for_bit(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder)
        report = replay_bundle(recorder.dump())
        assert report.ok
        assert report.slots == 4
        assert "REPRODUCED bit-for-bit" in report.render()

    def test_iteration_truncated_run_reproduces_bit_for_bit(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder, budget=SolveBudget(max_iterations=1))
        bundle = read_bundle(recorder.dump())
        assert all(s["recorded"]["partial"] for s in bundle.snapshots)
        report = replay_bundle(bundle)
        assert report.ok

    def test_replay_does_not_re_record(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder)
        path = recorder.dump()
        taken = recorder.snapshots_taken
        with flight_session(recorder):
            assert replay_bundle(path).ok
        assert recorder.snapshots_taken == taken

    def test_tampered_costs_are_reported_per_field(self, tmp_path):
        recorder = FlightRecorder(4, incident_dir=tmp_path)
        _record_run(recorder)
        path = recorder.dump()
        lines = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            if record.get("type") == "snapshot" and record["slot"] == 2:
                record["recorded"]["costs"]["migration"] += 1e-9
            lines.append(json.dumps(record))
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        report = replay_bundle(tampered)
        assert not report.ok
        assert [(d.slot, d.field) for d in report.diffs] == [
            (2, "costs.migration")
        ]
        assert "DIVERGED" in report.render()

    def test_refuses_non_replayable_controllers(self, tmp_path):
        class OpaqueController:
            def solve_slot(self, observation, x_prev):  # pragma: no cover
                raise NotImplementedError

        system, _, _ = _tiny_setup()
        recorder = FlightRecorder(2, incident_dir=tmp_path)
        stepper = SimpleNamespace(
            system=system, controller=OpaqueController(), checkpoint=lambda: None
        )
        costs = SimpleNamespace(
            operation=0.0,
            service_quality=0.0,
            reconfiguration=0.0,
            migration=0.0,
            total=0.0,
        )
        observation = SimpleNamespace(slot=0)
        recorder.begin_slot(stepper, observation)
        recorder.end_slot(stepper, observation, costs, 0.0)
        path = recorder.dump()
        with pytest.raises(ValueError, match="not replayable"):
            replay_bundle(path)
