"""SLO objectives and the multi-window burn-rate tracker.

Pins the alerting contract: an objective fires only when the fast AND
slow windows both burn past their thresholds, resolves when the fast
window recovers, and every transition payload carries enough context
(rates, thresholds, budget) to be rendered without the tracker.
"""

from __future__ import annotations

import pytest

from repro.telemetry import SloObjective, SloTracker, default_slos


def _service_slots(count, *, miss=False, latency_ms=1.0, start=0):
    return [
        {
            "type": "service.slot",
            "slot": start + index,
            "latency_ms": latency_ms,
            "deadline_miss": miss,
            "partial": miss,
        }
        for index in range(count)
    ]


def _miss_objective(**overrides):
    kwargs = dict(
        name="deadline-miss",
        signal="deadline-miss",
        budget=0.1,
        fast_window=8,
        slow_window=16,
        fast_burn=5.0,
        slow_burn=2.0,
        min_samples=4,
    )
    kwargs.update(overrides)
    return SloObjective(**kwargs)


class TestSloObjective:
    def test_rejects_unknown_signals(self):
        with pytest.raises(ValueError, match="unknown SLO signal"):
            SloObjective(name="x", signal="throughput", budget=0.01)

    def test_rejects_out_of_range_budgets(self):
        with pytest.raises(ValueError, match="budget"):
            SloObjective(name="x", signal="deadline-miss", budget=0.0)
        with pytest.raises(ValueError, match="budget"):
            SloObjective(name="x", signal="deadline-miss", budget=1.5)

    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError, match="windows"):
            SloObjective(
                name="x",
                signal="deadline-miss",
                budget=0.01,
                fast_window=64,
                slow_window=32,
            )

    def test_latency_requires_a_threshold(self):
        with pytest.raises(ValueError, match="threshold_ms"):
            SloObjective(name="x", signal="latency", budget=0.01)

    def test_default_slos_cover_the_serving_story(self):
        objectives = default_slos()
        assert [o.name for o in objectives] == [
            "latency-p99",
            "deadline-miss",
            "fallback-rate",
            "ratio-bound",
        ]
        assert all(o.signal in ("latency", "deadline-miss", "fallback", "ratio-bound") for o in objectives)

    def test_default_latency_threshold_follows_the_deadline(self):
        latency = default_slos(deadline_ms=40.0)[0]
        assert latency.threshold_ms == 40.0
        assert default_slos()[0].threshold_ms == 250.0


class TestBurnRateAlerting:
    def test_all_good_slots_never_fire(self):
        tracker = SloTracker((_miss_objective(),))
        for record in _service_slots(100):
            assert tracker.observe(record) == []
        assert tracker.active == ()
        rates = tracker.burn_rates()["deadline-miss"]
        assert rates["fast"] == 0.0 and rates["slow"] == 0.0

    def test_storm_fires_once_and_resolves_on_recovery(self):
        tracker = SloTracker((_miss_objective(),))
        transitions = []
        for record in _service_slots(8, miss=True):
            transitions += tracker.observe(record)
        assert [t["state"] for t in transitions] == ["firing"]
        firing = transitions[0]
        assert firing["objective"] == "deadline-miss"
        assert firing["fast_burn"] >= firing["fast_threshold"]
        assert firing["slow_burn"] >= firing["slow_threshold"]
        assert firing["budget"] == 0.1
        assert "slot" in firing
        assert tracker.active == ("deadline-miss",)
        # Steady burn is silent; recovery resolves exactly once.
        transitions = []
        for record in _service_slots(16, miss=False, start=8):
            transitions += tracker.observe(record)
        assert [t["state"] for t in transitions] == ["resolved"]
        assert tracker.active == ()
        assert tracker.transitions == 2

    def test_short_blip_below_min_samples_is_silent(self):
        tracker = SloTracker((_miss_objective(min_samples=6),))
        transitions = []
        for record in _service_slots(3, miss=True):
            transitions += tracker.observe(record)
        assert transitions == []

    def test_slow_window_gates_a_fresh_storm(self):
        # fast window saturates immediately but the slow window holds the
        # long good history, so a brief storm after a long healthy run
        # must clear the slow threshold too before firing.
        objective = _miss_objective(slow_burn=6.0)
        tracker = SloTracker((objective,))
        for record in _service_slots(16):
            tracker.observe(record)
        transitions = []
        for record in _service_slots(8, miss=True, start=16):
            transitions += tracker.observe(record)
        # 8 bad of 16 slow samples = 0.5/0.1 = 5x < 6x: not firing.
        assert transitions == []
        assert tracker.active == ()


class TestSignalSampling:
    def test_latency_signal_classifies_against_threshold(self):
        objective = SloObjective(
            name="latency",
            signal="latency",
            budget=0.5,
            threshold_ms=10.0,
            fast_window=4,
            slow_window=8,
            fast_burn=1.5,
            slow_burn=1.0,
            min_samples=2,
        )
        tracker = SloTracker((objective,))
        for record in _service_slots(4, latency_ms=50.0):
            tracker.observe(record)
        assert tracker.active == ("latency",)

    def test_fallback_signal_pairs_fallback_events_with_slots(self):
        objective = SloObjective(
            name="fallback",
            signal="fallback",
            budget=0.5,
            fast_window=4,
            slow_window=8,
            fast_burn=1.5,
            slow_burn=1.0,
            min_samples=2,
        )
        tracker = SloTracker((objective,))
        for slot in range(4):
            tracker.observe({"type": "solver.fallback", "primary": "ipm"})
            tracker.observe({"type": "slot", "slot": slot, "wall_ms": 1.0})
        assert tracker.active == ("fallback",)
        rates = tracker.burn_rates()["fallback"]
        assert rates["fast"] == pytest.approx(2.0)

    def test_fallback_flag_clears_after_its_slot(self):
        tracker = SloTracker((default_slos()[2],))
        tracker.observe({"type": "solver.fallback", "primary": "ipm"})
        tracker.observe({"type": "slot", "slot": 0, "wall_ms": 1.0})
        tracker.observe({"type": "slot", "slot": 1, "wall_ms": 1.0})
        state = tracker._states["fallback-rate"]
        assert list(state.fast) == [True, False]

    def test_ratio_bound_signal_burns_on_violation(self):
        tracker = SloTracker((default_slos()[3],))
        transitions = tracker.observe(
            {"type": "diag.ratio.point", "slot": 3, "ratio": 1.4, "bound": 1.3}
        )
        assert [t["state"] for t in transitions] == ["firing"]

    def test_unknown_records_are_ignored(self):
        tracker = SloTracker()
        assert tracker.observe({"type": "spans"}) == []
        assert tracker.observe({}) == []
        assert tracker.burn_rates() == {}
