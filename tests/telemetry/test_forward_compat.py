"""Forward compatibility of ``repro.telemetry/1`` with unknown event kinds.

A newer writer may emit ``aggregate.*`` (or any other) event kinds this
reader has never heard of, inside the same manifest format. The contract:
readers keep unknown events verbatim, and every consumer — ``doctor``,
``watch`` — degrades gracefully instead of raising.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.doctor import doctor_report
from repro.telemetry import WatchState, read_manifest
from repro.telemetry.manifest import MANIFEST_FORMAT

KNOWN_AGG_EVENT = {
    "type": "aggregate.slot",
    "slot": 0,
    "users": 100,
    "cohorts": 10,
    "shards": 2,
    "reduction": 10.0,
    "spread": 0.25,
    "bound": 0.5,
    "disagg_error": 1e-6,
    "iterations": 12,
}

#: Plausible events from a future minor revision of the writer.
UNKNOWN_AGG_EVENTS = [
    {"type": "aggregate.rebalance", "slot": 1, "moved": 3},
    {"type": "aggregate.bucket_stats", "slot": 1, "histogram": [1, 2, 3]},
    {"type": "aggregate.slot.v2", "slot": 2, "cohorts": "ten"},
]


def write_lines(path, records, *, end_count=None) -> None:
    with path.open("w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {
                    "type": "manifest_start",
                    "format": MANIFEST_FORMAT,
                    "created_unix": 0.0,
                    "config": {},
                }
            )
            + "\n"
        )
        for record in records:
            handle.write(json.dumps(record) + "\n")
        handle.write(
            json.dumps({"type": "metrics", "counters": {}, "gauges": {}, "histograms": {}})
            + "\n"
        )
        handle.write(json.dumps({"type": "spans", "spans": []}) + "\n")
        if end_count is not None:
            handle.write(
                json.dumps({"type": "manifest_end", "events": end_count}) + "\n"
            )


@pytest.mark.parametrize("strict", [True, False])
def test_read_manifest_keeps_unknown_aggregate_kinds(tmp_path, strict):
    path = tmp_path / "future.jsonl"
    events = [KNOWN_AGG_EVENT, *UNKNOWN_AGG_EVENTS]
    write_lines(path, events, end_count=len(events))
    record = read_manifest(path, strict=strict)
    assert not record.truncated
    assert [e["type"] for e in record.events] == [e["type"] for e in events]
    # Unknown payloads survive verbatim for newer tooling to re-read.
    assert record.events_of_type("aggregate.bucket_stats")[0]["histogram"] == [1, 2, 3]


def test_non_strict_read_tolerates_truncation_after_unknown_events(tmp_path):
    path = tmp_path / "crashed.jsonl"
    write_lines(path, [KNOWN_AGG_EVENT, *UNKNOWN_AGG_EVENTS], end_count=None)
    with pytest.raises(ValueError, match="truncated"):
        read_manifest(path, strict=True)
    record = read_manifest(path, strict=False)
    assert record.truncated
    assert len(record.events) == 1 + len(UNKNOWN_AGG_EVENTS)


def test_doctor_report_ignores_unknown_aggregate_kinds(tmp_path):
    path = tmp_path / "future.jsonl"
    events = [KNOWN_AGG_EVENT, *UNKNOWN_AGG_EVENTS]
    write_lines(path, events, end_count=len(events))
    report = doctor_report(read_manifest(path))
    assert "Aggregation" in report
    # The known event is summarized; unknown siblings neither crash the
    # section nor leak into it.
    assert "10 cohort" in report or "cohorts" in report
    assert "aggregate.slot.v2" not in report


def test_watch_state_folds_unknown_aggregate_kinds_without_alarm(tmp_path):
    state = WatchState(rules=())
    state.update(
        {
            "type": "manifest_start",
            "format": MANIFEST_FORMAT,
            "config": {},
        }
    )
    state.update(KNOWN_AGG_EVENT)
    for event in UNKNOWN_AGG_EVENTS:
        state.update(event)
    state.update({"type": "manifest_end", "events": 4})
    # Unknown kinds count as events but only aggregate.slot feeds the line.
    assert state.events == 1 + len(UNKNOWN_AGG_EVENTS)
    assert state.agg_slots == 1
    assert state.agg_cohorts == 10
    assert state.alerts == []
    rendered = state.render()
    assert "agg" in rendered
