"""Unit and property tests for the metrics primitives and the registry.

The load-bearing property is merge associativity: the parallel executor
folds per-cell snapshots into the caller's registry in input order, and
any *grouping* of those merges must produce identical aggregates (the
merge order is fixed; associativity is what makes partial pre-merges
safe). Integer-valued observations make the property exact — float
addition itself is not associative, which is precisely why the executor
also pins the merge order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    telemetry_enabled,
    telemetry_session,
)
from repro.telemetry import metrics as metrics_module


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2.5)
        assert registry.counter("a").value == 3.5

    def test_counter_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(4)
        registry.gauge("g").set(7)
        assert registry.gauge("g").value == 7.0

    def test_histogram_moments(self):
        registry = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            registry.histogram("h").observe(value)
        h = registry.histogram("h")
        assert h.count == 3
        assert h.total == 6.0
        assert h.minimum == 1.0
        assert h.maximum == 3.0
        assert h.mean == 2.0

    def test_empty_histogram_as_dict(self):
        h = MetricsRegistry().histogram("h")
        assert h.as_dict() == {
            "count": 0,
            "total": 0.0,
            "min": None,
            "max": None,
            "mean": 0.0,
            "p50": None,
            "p95": None,
            "p99": None,
            "buckets": {},
        }


class TestPercentileSketch:
    def test_single_observation_is_exact(self):
        h = MetricsRegistry().histogram("h")
        h.observe(3.25)
        assert h.percentile(0.5) == 3.25
        assert h.percentile(0.99) == 3.25

    def test_percentiles_within_relative_error(self):
        h = MetricsRegistry().histogram("h")
        values = [float(v) for v in range(1, 1001)]
        for value in values:
            h.observe(value)
        for q, expected in ((0.50, 500.0), (0.95, 950.0), (0.99, 990.0)):
            got = h.percentile(q)
            assert abs(got - expected) / expected < 0.08, (q, got)

    def test_percentiles_clamped_to_observed_range(self):
        h = MetricsRegistry().histogram("h")
        for value in (10.0, 10.5, 11.0):
            h.observe(value)
        assert 10.0 <= h.percentile(0.5) <= 11.0
        assert 10.0 <= h.percentile(0.99) <= 11.0

    def test_nonpositive_values_land_in_bucket_zero(self):
        h = MetricsRegistry().histogram("h")
        for value in (-5.0, 0.0, -1.0):
            h.observe(value)
        assert set(h.buckets) == {0}
        assert h.percentile(0.5) == -5.0  # bucket-0 representative: the min

    def test_merge_matches_direct_bucketing(self):
        a, b = MetricsRegistry().histogram("h"), MetricsRegistry().histogram("h")
        direct = MetricsRegistry().histogram("h")
        for value in (0.001, 1.0, 250.0):
            a.observe(value)
            direct.observe(value)
        for value in (3.0, 3e6):
            b.observe(value)
            direct.observe(value)
        a.merge(b)
        assert a.buckets == direct.buckets
        assert a.as_dict() == direct.as_dict()

    def test_snapshot_merge_coerces_string_bucket_keys(self):
        import json

        source = MetricsRegistry()
        for value in (1.0, 2.0, 400.0):
            source.histogram("h").observe(value)
        round_tripped = json.loads(json.dumps(source.snapshot()))
        target = MetricsRegistry()
        target.merge_snapshot(round_tripped)
        assert target.histogram("h").buckets == source.histogram("h").buckets


class TestEventsAndContext:
    def test_event_records_type_and_payload(self):
        registry = MetricsRegistry()
        registry.event("slot", slot=3, total=1.5)
        assert registry.events == [{"type": "slot", "slot": 3, "total": 1.5}]

    def test_context_tags_events(self):
        registry = MetricsRegistry()
        with registry.context(cell="c0", seed=42):
            registry.event("slot", slot=0)
        registry.event("bare")
        assert registry.events[0] == {
            "type": "slot",
            "cell": "c0",
            "seed": 42,
            "slot": 0,
        }
        assert registry.events[1] == {"type": "bare"}

    def test_context_nesting_shadows_and_restores(self):
        registry = MetricsRegistry()
        with registry.context(run=1, algorithm="a"):
            with registry.context(run=2):
                registry.event("inner")
            registry.event("outer")
        assert registry.events[0]["run"] == 2
        assert registry.events[0]["algorithm"] == "a"
        assert registry.events[1]["run"] == 1

    def test_run_ids_unique_per_registry(self):
        registry = MetricsRegistry()
        ids = [registry.next_run_id() for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]


class TestActiveRegistry:
    def test_default_is_shared_null(self):
        assert get_registry() is NULL_REGISTRY
        assert not telemetry_enabled()

    def test_session_installs_and_restores(self):
        with telemetry_session() as registry:
            assert get_registry() is registry
            assert telemetry_enabled()
            with telemetry_session() as inner:
                assert get_registry() is inner
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert previous is NULL_REGISTRY
            assert get_registry() is registry
        finally:
            set_registry(previous)

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        null.counter("a").inc(10)
        null.gauge("g").set(5)
        null.histogram("h").observe(1.0)
        null.event("anything", x=1)
        with null.span("s"):
            with null.context(cell="c"):
                pass
        snap = null.snapshot()
        assert snap["counters"] == {}
        assert snap["events"] == []
        assert snap["spans"] == []
        assert null.next_run_id() == 0

    def test_null_instruments_are_cached_singletons(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b")
        assert null.histogram("a") is null.histogram("b")


def _registry_from(spec: list[tuple[str, int]]) -> dict:
    """Build a snapshot from ``(name, value)`` counter/histogram pairs."""
    registry = MetricsRegistry()
    for name, value in spec:
        registry.counter(f"c.{name}").inc(value)
        registry.histogram(f"h.{name}").observe(value)
    return registry.snapshot()


def _merged(snapshots: list[dict]) -> dict:
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge_snapshot(snap)
    return registry.snapshot()


_spec = st.lists(
    st.tuples(
        st.sampled_from(["x", "y", "z"]),
        st.integers(min_value=-1000, max_value=1000),
    ),
    max_size=5,
)


class TestMergeAssociativity:
    @given(a=_spec, b=_spec, c=_spec)
    @settings(max_examples=100, deadline=None)
    def test_grouping_does_not_matter(self, a, b, c):
        """((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) for integer-valued metrics."""
        snap_a, snap_b, snap_c = _registry_from(a), _registry_from(b), _registry_from(c)
        left = _merged([_merged([snap_a, snap_b]), snap_c])
        right = _merged([snap_a, _merged([snap_b, snap_c])])
        assert left == right

    @given(a=_spec, b=_spec)
    @settings(max_examples=50, deadline=None)
    def test_merge_matches_direct_recording(self, a, b):
        """Recording everything in one registry == merging two snapshots."""
        direct = _registry_from(a + b)
        merged = _merged([_registry_from(a), _registry_from(b)])
        assert direct == merged

    def test_gauge_merge_is_last_write_wins(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("g").set(1)
        second.gauge("g").set(2)
        target = MetricsRegistry()
        target.merge_snapshot(first.snapshot())
        target.merge_snapshot(second.snapshot())
        assert target.gauge("g").value == 2.0

    def test_merge_preserves_event_order(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.event("a")
        second.event("b")
        target = MetricsRegistry()
        target.merge_snapshot(first.snapshot())
        target.merge_snapshot(second.snapshot())
        assert [e["type"] for e in target.events] == ["a", "b"]


class TestSummaryTable:
    def test_contains_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("solver.fallbacks").inc()
        registry.gauge("sweep.workers").set(4)
        registry.histogram("slot.wall_ms").observe(1.5)
        table = registry.summary_table()
        assert "solver.fallbacks" in table
        assert "sweep.workers" in table
        assert "slot.wall_ms" in table
        assert "count=1" in table

    def test_empty_registry(self):
        assert "none recorded" in MetricsRegistry().summary_table()


class TestSpanCap:
    def test_children_beyond_cap_are_dropped_and_counted(self, monkeypatch):
        monkeypatch.setattr(metrics_module, "MAX_SPAN_CHILDREN", 3)
        registry = MetricsRegistry()
        with registry.span("parent"):
            for index in range(5):
                with registry.span(f"child-{index}"):
                    pass
        assert len(registry.spans[0]["children"]) == 3
        assert registry.counter("telemetry.spans.dropped").value == 2.0
