"""Distributed tracing: context propagation and connected span trees.

The acceptance pin for the tracing plane: a multi-worker sweep (plain
and batched) exported through ``chrome_trace`` yields ONE connected
tree — a single root, every other span's ``parent_span_id`` resolving
to an exported span — because the dispatch site mints child contexts
that ride the work items and are stamped onto the merged cell roots.
The off path is equally load-bearing: ``trace_span`` with no active
context must be indistinguishable from ``registry.span``.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.core.regularization import OnlineRegularizedAllocator
from repro.parallel import SweepCell, SweepExecutor
from repro.simulation.batched import run_cells_batched
from repro.simulation.scenario import Scenario
from repro.telemetry import (
    MetricsRegistry,
    TraceContext,
    chrome_trace,
    current_trace,
    new_trace,
    telemetry_session,
    trace_scope,
    trace_span,
    traced_root,
)


def _cells(seeds, *, with_ipm=False):
    scenario = Scenario(num_users=3, num_slots=2)
    algorithms = (OfflineOptimal(), OnlineGreedy())
    if with_ipm:
        algorithms = algorithms + (OnlineRegularizedAllocator(),)
    return [
        SweepCell(key=("cell", k), scenario=scenario, algorithms=algorithms, seed=s)
        for k, s in enumerate(seeds)
    ]


def _connectivity(registry):
    """(roots, orphans) of the exported linked trace."""
    doc = chrome_trace(registry.spans)
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    ids = {e["args"]["span_id"] for e in events}
    roots = [e for e in events if "parent_span_id" not in e["args"]]
    orphans = [
        e
        for e in events
        if "parent_span_id" in e["args"] and e["args"]["parent_span_id"] not in ids
    ]
    return doc, events, roots, orphans


class TestTraceContext:
    def test_child_links_to_parent(self):
        root = new_trace()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id

    def test_as_meta_omits_missing_parent(self):
        root = new_trace()
        assert "parent_span_id" not in root.as_meta()
        assert "parent_span_id" in root.child().as_meta()

    def test_wire_round_trip(self):
        ctx = new_trace().child()
        again = TraceContext.from_wire(ctx.to_wire())
        assert again == ctx

    @pytest.mark.parametrize(
        "payload", [None, 42, "nope", {}, {"trace_id": 7}, {"trace_id": "a"}]
    )
    def test_malformed_wire_payloads_become_none(self, payload):
        assert TraceContext.from_wire(payload) is None

    def test_scope_activates_and_restores(self):
        assert current_trace() is None
        ctx = new_trace()
        with trace_scope(ctx):
            assert current_trace() is ctx
            inner = ctx.child()
            with trace_scope(inner):
                assert current_trace() is inner
            assert current_trace() is ctx
        assert current_trace() is None


class TestTraceSpan:
    def test_without_context_is_plain_registry_span(self):
        plain = MetricsRegistry()
        with telemetry_session(plain):
            with plain.span("work", detail=1):
                pass
        traced = MetricsRegistry()
        with telemetry_session(traced):
            with trace_span("work", detail=1):
                pass
        def strip(nodes):  # durations are wall-clock noise
            return [
                {k: v for k, v in node.items() if k != "duration_ms"}
                for node in nodes
            ]

        assert strip(traced.spans) == strip(plain.spans)

    def test_with_context_stamps_ids_and_forks_child(self):
        registry = MetricsRegistry()
        with telemetry_session(registry):
            with traced_root("run"):
                root_ctx = current_trace()
                with trace_span("inner"):
                    assert current_trace().parent_span_id == root_ctx.span_id
        root = registry.spans[0]
        inner = root["children"][0]
        assert root["meta"]["span_id"] == root_ctx.span_id
        assert inner["meta"]["parent_span_id"] == root_ctx.span_id
        assert inner["meta"]["trace_id"] == root_ctx.trace_id


class TestConnectedSweepTrace:
    def test_multiworker_sweep_is_one_connected_tree(self):
        registry = MetricsRegistry()
        with telemetry_session(registry):
            with traced_root("run", command="sweep"):
                SweepExecutor(max_workers=2).run_cells(_cells([3, 5, 7]))
        doc, events, roots, orphans = _connectivity(registry)
        assert len(roots) == 1 and roots[0]["name"] == "run"
        assert orphans == []
        # Every merged cell root was adopted under the dispatch span.
        cell_roots = [e for e in events if e["name"] == "cell"]
        assert len(cell_roots) == 3
        dispatch = next(e for e in events if e["name"] == "sweep.map")
        assert {e["args"]["parent_span_id"] for e in cell_roots} == {
            dispatch["args"]["span_id"]
        }
        json.loads(json.dumps(doc))  # exporter output survives the wire

    def test_batched_sweep_is_one_connected_tree(self):
        registry = MetricsRegistry()
        with telemetry_session(registry):
            with traced_root("run", command="batched"):
                run_cells_batched(_cells([3, 5], with_ipm=True), workers=1)
        _, events, roots, orphans = _connectivity(registry)
        assert len(roots) == 1 and roots[0]["name"] == "run"
        assert orphans == []
        # Batched lanes attribute their deferred solver telemetry to the
        # originating cell's context, not the flusher thread's.
        trace_id = roots[0]["args"]["trace_id"]
        lane_events = [
            e for e in registry.events if e.get("type") == "solver.ipm.trace"
        ]
        assert lane_events, "batched cells recorded no solver traces"
        assert all(e.get("trace_id") == trace_id for e in lane_events)

    def test_untraced_sweep_records_no_ids(self):
        registry = MetricsRegistry()
        with telemetry_session(registry):
            SweepExecutor(max_workers=2).run_cells(_cells([3, 5]))
        for root in registry.spans:
            stack = [root]
            while stack:
                node = stack.pop()
                meta = node.get("meta") or {}
                assert "span_id" not in meta and "trace_id" not in meta
                stack.extend(node.get("children", ()))
