"""Tests for synthetic topology generators."""

import networkx as nx
import pytest

from repro.topology.generators import (
    grid_topology,
    random_geometric_topology,
    ring_topology,
)


class TestGrid:
    def test_size_and_names(self):
        topo = grid_topology(3, 4)
        assert topo.num_sites == 12
        assert topo.names[0] == "grid-0-0"
        assert topo.names[-1] == "grid-2-3"

    def test_four_neighbor_adjacency(self):
        topo = grid_topology(3, 3)
        center = 4  # (1, 1)
        assert set(topo.neighbors(center)) == {1, 3, 5, 7}

    def test_corner_has_two_neighbors(self):
        topo = grid_topology(3, 3)
        assert len(topo.neighbors(0)) == 2

    def test_connected(self):
        assert nx.is_connected(grid_topology(4, 5).graph)

    def test_spacing_roughly_respected(self):
        topo = grid_topology(1, 2, spacing_km=2.0)
        d = topo.distance_matrix_km()
        assert d[0, 1] == pytest.approx(2.0, rel=0.05)

    def test_single_cell(self):
        topo = grid_topology(1, 1)
        assert topo.num_sites == 1
        assert topo.neighbors(0) == []

    @pytest.mark.parametrize("rows,cols", [(0, 3), (3, 0), (-1, 2)])
    def test_invalid_dimensions(self, rows, cols):
        with pytest.raises(ValueError):
            grid_topology(rows, cols)


class TestRing:
    def test_ring_adjacency(self):
        topo = ring_topology(6)
        for k in range(6):
            assert set(topo.neighbors(k)) == {(k - 1) % 6, (k + 1) % 6}

    def test_connected(self):
        assert nx.is_connected(ring_topology(8).graph)

    def test_too_small(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_radius_scales_distances(self):
        small = ring_topology(4, radius_km=1.0).distance_matrix_km().max()
        large = ring_topology(4, radius_km=3.0).distance_matrix_km().max()
        assert large == pytest.approx(3.0 * small, rel=0.05)


class TestRandomGeometric:
    def test_deterministic_per_seed(self):
        a = random_geometric_topology(10, seed=42)
        b = random_geometric_topology(10, seed=42)
        assert [p.lat for p in a.points] == [p.lat for p in b.points]
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_different_seeds_differ(self):
        a = random_geometric_topology(10, seed=1)
        b = random_geometric_topology(10, seed=2)
        assert [p.lat for p in a.points] != [p.lat for p in b.points]

    def test_always_connected(self):
        # Even with a tiny connect radius the stitching pass connects it.
        topo = random_geometric_topology(12, seed=3, connect_radius_km=0.01)
        assert nx.is_connected(topo.graph)

    def test_points_in_bbox(self):
        bbox = (41.0, 41.2, 12.0, 12.3)
        topo = random_geometric_topology(20, seed=5, bbox=bbox)
        for p in topo.points:
            assert bbox[0] <= p.lat <= bbox[1]
            assert bbox[2] <= p.lon <= bbox[3]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            random_geometric_topology(0, seed=1)

    def test_single_site(self):
        topo = random_geometric_topology(1, seed=1)
        assert topo.num_sites == 1
        assert nx.is_connected(topo.graph)
