"""Tests for delay-matrix construction and validation."""

import numpy as np
import pytest

from repro.topology.delays import inter_cloud_delay_matrix, validate_delay_matrix
from repro.topology.metro import rome_metro_topology


class TestInterCloudDelay:
    def test_price_scaling(self):
        topo = rome_metro_topology()
        base = inter_cloud_delay_matrix(topo, price_per_km=1.0)
        scaled = inter_cloud_delay_matrix(topo, price_per_km=2.5)
        assert np.allclose(scaled, 2.5 * base)

    def test_zero_price_gives_zero_matrix(self):
        topo = rome_metro_topology()
        assert np.all(inter_cloud_delay_matrix(topo, price_per_km=0.0) == 0.0)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            inter_cloud_delay_matrix(rome_metro_topology(), price_per_km=-1.0)

    def test_result_is_valid(self):
        validate_delay_matrix(inter_cloud_delay_matrix(rome_metro_topology()))


class TestValidateDelayMatrix:
    def test_valid(self):
        validate_delay_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_not_square(self):
        with pytest.raises(ValueError, match="square"):
            validate_delay_matrix(np.zeros((2, 3)))

    def test_negative_entry(self):
        with pytest.raises(ValueError, match="negative"):
            validate_delay_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_nonzero_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            validate_delay_matrix(np.array([[1.0, 2.0], [2.0, 0.0]]))

    def test_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            validate_delay_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            validate_delay_matrix(np.array([[0.0, np.inf], [np.inf, 0.0]]))
