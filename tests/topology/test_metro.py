"""Tests for the Rome metro topology."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.geo import GeoPoint
from repro.topology.metro import (
    ROME_METRO_LINE_A,
    ROME_METRO_LINE_B,
    ROME_METRO_STATIONS,
    Topology,
    rome_metro_topology,
)


@pytest.fixture(scope="module")
def topo() -> Topology:
    return rome_metro_topology()


class TestRomeMetro:
    def test_fifteen_stations(self, topo):
        # The paper deploys exactly 15 edge clouds at 15 metro stations.
        assert topo.num_sites == 15
        assert len(ROME_METRO_STATIONS) == 15

    def test_graph_connected(self, topo):
        assert nx.is_connected(topo.graph)

    def test_line_a_adjacency(self, topo):
        for a, b in zip(ROME_METRO_LINE_A, ROME_METRO_LINE_A[1:]):
            assert topo.graph.has_edge(topo.index_of(a), topo.index_of(b))

    def test_line_b_adjacency(self, topo):
        for a, b in zip(ROME_METRO_LINE_B, ROME_METRO_LINE_B[1:]):
            assert topo.graph.has_edge(topo.index_of(a), topo.index_of(b))

    def test_termini_is_interchange(self, topo):
        # Termini connects line A (Repubblica, Vittorio Emanuele) and B (Colosseo).
        termini = topo.index_of("Termini")
        neighbors = {topo.names[n] for n in topo.neighbors(termini)}
        assert {"Repubblica", "Vittorio Emanuele", "Colosseo"} <= neighbors

    def test_coordinates_in_central_rome(self, topo):
        lat_min, lat_max, lon_min, lon_max = topo.bounding_box()
        assert 41.8 < lat_min <= lat_max < 42.0
        assert 12.3 < lon_min <= lon_max < 12.6

    def test_distance_matrix_sane(self, topo):
        d = topo.distance_matrix_km()
        assert d.shape == (15, 15)
        assert np.all(np.diag(d) == 0.0)
        off_diag = d[~np.eye(15, dtype=bool)]
        # Central-Rome station spacing: hundreds of meters to ~10 km.
        assert off_diag.min() > 0.1
        assert off_diag.max() < 12.0

    def test_nearest_site(self, topo):
        termini = topo.index_of("Termini")
        near_termini = GeoPoint(41.9012, 12.5015)
        assert topo.nearest_site(near_termini) == termini

    def test_index_of_unknown_raises(self, topo):
        with pytest.raises(KeyError):
            topo.index_of("Atlantis Central")


class TestTopologyValidation:
    def test_mismatched_names_points(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            Topology(names=["a", "b"], points=[GeoPoint(0, 0)], graph=g)

    def test_duplicate_names(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        with pytest.raises(ValueError):
            Topology(
                names=["a", "a"],
                points=[GeoPoint(0, 0), GeoPoint(1, 1)],
                graph=g,
            )

    def test_graph_nodes_must_match_indices(self):
        g = nx.Graph()
        g.add_nodes_from([0, 5])
        with pytest.raises(ValueError):
            Topology(
                names=["a", "b"],
                points=[GeoPoint(0, 0), GeoPoint(1, 1)],
                graph=g,
            )

    def test_neighbors_sorted(self):
        topo = rome_metro_topology()
        termini = topo.index_of("Termini")
        neighbors = topo.neighbors(termini)
        assert neighbors == sorted(neighbors)
