"""Tests for geographic primitives (haversine, GeoPoint)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.geo import (
    EARTH_RADIUS_KM,
    GeoPoint,
    haversine_km,
    haversine_km_vec,
    pairwise_distance_km,
)

coords = st.tuples(
    st.floats(min_value=-89.0, max_value=89.0),
    st.floats(min_value=-179.0, max_value=179.0),
)


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(41.9, 12.5)
        assert p.lat == 41.9
        assert p.lon == 12.5

    @pytest.mark.parametrize("lat", [-90.1, 91.0, 180.0])
    def test_invalid_latitude(self, lat):
        with pytest.raises(ValueError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.5, 181.0, 360.0])
    def test_invalid_longitude(self, lon):
        with pytest.raises(ValueError):
            GeoPoint(0.0, lon)

    def test_boundary_values_allowed(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_distance_method_matches_function(self):
        a, b = GeoPoint(41.9, 12.5), GeoPoint(41.8, 12.4)
        assert a.distance_km(b) == pytest.approx(haversine_km(41.9, 12.5, 41.8, 12.4))

    def test_frozen(self):
        p = GeoPoint(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.lat = 1.0


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(41.9, 12.5, 41.9, 12.5) == 0.0

    def test_symmetry(self):
        d1 = haversine_km(41.9, 12.5, 48.8, 2.3)
        d2 = haversine_km(48.8, 2.3, 41.9, 12.5)
        assert d1 == pytest.approx(d2)

    def test_known_distance_rome_paris(self):
        # Rome (41.9, 12.5) to Paris (48.86, 2.35): ~1105 km.
        d = haversine_km(41.9, 12.5, 48.86, 2.35)
        assert 1050 < d < 1160

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km anywhere.
        d = haversine_km(10.0, 30.0, 11.0, 30.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM / 180.0, rel=1e-6)

    def test_antipodal_is_half_circumference(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-9)

    @given(coords, coords)
    @settings(max_examples=60)
    def test_nonnegative_and_symmetric(self, p1, p2):
        d12 = haversine_km(*p1, *p2)
        d21 = haversine_km(*p2, *p1)
        assert d12 >= 0.0
        assert d12 == pytest.approx(d21, abs=1e-9)

    @given(coords, coords, coords)
    @settings(max_examples=40)
    def test_triangle_inequality(self, p1, p2, p3):
        d12 = haversine_km(*p1, *p2)
        d23 = haversine_km(*p2, *p3)
        d13 = haversine_km(*p1, *p3)
        assert d13 <= d12 + d23 + 1e-6


class TestVectorized:
    def test_matches_scalar(self):
        lats1 = np.array([41.9, 40.0])
        lons1 = np.array([12.5, 11.0])
        lats2 = np.array([48.86, 41.0])
        lons2 = np.array([2.35, 12.0])
        vec = haversine_km_vec(lats1, lons1, lats2, lons2)
        for k in range(2):
            assert vec[k] == pytest.approx(
                haversine_km(lats1[k], lons1[k], lats2[k], lons2[k])
            )

    def test_broadcasting(self):
        lats = np.array([41.0, 42.0, 43.0])
        lons = np.array([12.0, 12.5, 13.0])
        matrix = haversine_km_vec(lats[:, None], lons[:, None], lats[None, :], lons[None, :])
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)


class TestPairwise:
    def test_shape_diag_symmetry(self):
        points = [GeoPoint(41.9, 12.5), GeoPoint(41.8, 12.4), GeoPoint(41.7, 12.6)]
        d = pairwise_distance_km(points)
        assert d.shape == (3, 3)
        assert np.all(np.diag(d) == 0.0)
        assert np.allclose(d, d.T)
        assert np.all(d >= 0)

    def test_single_point(self):
        d = pairwise_distance_km([GeoPoint(0.0, 0.0)])
        assert d.shape == (1, 1)
        assert d[0, 0] == 0.0

    def test_matches_scalar_function(self):
        points = [GeoPoint(41.9, 12.5), GeoPoint(41.85, 12.45)]
        d = pairwise_distance_km(points)
        assert d[0, 1] == pytest.approx(points[0].distance_km(points[1]))
