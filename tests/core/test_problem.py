"""Tests for ProblemInstance and CostWeights."""

import dataclasses

import numpy as np
import pytest

from repro.core.problem import CostWeights, ProblemInstance
from repro.pricing.bandwidth import MigrationPrices
from tests.conftest import make_tiny_instance


class TestCostWeights:
    def test_defaults(self):
        w = CostWeights()
        assert w.static == 1.0
        assert w.dynamic == 1.0
        assert w.mu == 1.0

    def test_from_mu(self):
        w = CostWeights.from_mu(2.5)
        assert w.static == 1.0
        assert w.dynamic == 2.5
        assert w.mu == 2.5

    def test_mu_with_zero_static(self):
        assert CostWeights(static=0.0, dynamic=1.0).mu == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(static=-1.0)
        with pytest.raises(ValueError):
            CostWeights.from_mu(-0.5)

    def test_both_zero_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(static=0.0, dynamic=0.0)


class TestProblemInstanceValidation:
    def test_tiny_instance_valid(self, tiny_instance):
        assert tiny_instance.num_clouds == 3
        assert tiny_instance.num_users == 4
        assert tiny_instance.num_slots == 5
        assert tiny_instance.total_workload == 10.0

    def _fields(self, **overrides):
        base = make_tiny_instance()
        fields = {f.name: getattr(base, f.name) for f in dataclasses.fields(base)}
        fields.update(overrides)
        return fields

    def test_nonpositive_workload(self):
        with pytest.raises(ValueError, match="workloads"):
            ProblemInstance(**self._fields(workloads=np.array([1.0, 2.0, 0.0, 1.0])))

    def test_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacities"):
            ProblemInstance(**self._fields(capacities=np.array([6.0, -5.0, 4.0])))

    def test_negative_op_price(self):
        bad = np.full((5, 3), -0.1)
        with pytest.raises(ValueError, match="[Oo]peration"):
            ProblemInstance(**self._fields(op_prices=bad))

    def test_wrong_op_price_shape(self):
        with pytest.raises(ValueError, match="op_prices"):
            ProblemInstance(**self._fields(op_prices=np.ones((5, 7))))

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            ProblemInstance(
                **self._fields(
                    op_prices=np.ones((0, 3)),
                    attachment=np.zeros((0, 4), dtype=int),
                    access_delay=np.zeros((0, 4)),
                )
            )

    def test_negative_reconfig_price(self):
        with pytest.raises(ValueError, match="reconfig"):
            ProblemInstance(**self._fields(reconfig_prices=np.array([1.0, -1.0, 1.0])))

    def test_migration_price_shape(self):
        bad = MigrationPrices(out=np.array([1.0]), into=np.array([1.0]))
        with pytest.raises(ValueError, match="migration"):
            ProblemInstance(**self._fields(migration_prices=bad))

    def test_delay_diagonal(self):
        bad = np.ones((3, 3))
        with pytest.raises(ValueError, match="diagonal"):
            ProblemInstance(**self._fields(inter_cloud_delay=bad))

    def test_attachment_dtype(self):
        with pytest.raises(ValueError, match="integer"):
            ProblemInstance(**self._fields(attachment=np.zeros((5, 4))))

    def test_attachment_out_of_range(self):
        with pytest.raises(ValueError, match="index"):
            ProblemInstance(**self._fields(attachment=np.full((5, 4), 9)))

    def test_negative_access_delay(self):
        with pytest.raises(ValueError, match="access_delay"):
            ProblemInstance(**self._fields(access_delay=np.full((5, 4), -1.0)))

    def test_infeasible_capacity(self):
        with pytest.raises(ValueError, match="infeasible"):
            ProblemInstance(**self._fields(capacities=np.array([3.0, 3.0, 3.0])))


class TestProblemInstanceHelpers:
    def test_static_prices_formula(self, tiny_instance):
        slot = 2
        prices = tiny_instance.static_prices(slot)
        i, j = 1, 3
        attached = int(tiny_instance.attachment[slot, j])
        expected = (
            tiny_instance.op_prices[slot, i]
            + tiny_instance.inter_cloud_delay[attached, i] / tiny_instance.workloads[j]
        )
        assert prices[i, j] == pytest.approx(expected)

    def test_static_prices_attached_cloud_has_no_delay_term(self, tiny_instance):
        slot = 0
        prices = tiny_instance.static_prices(slot)
        for j in range(tiny_instance.num_users):
            attached = int(tiny_instance.attachment[slot, j])
            assert prices[attached, j] == pytest.approx(
                tiny_instance.op_prices[slot, attached]
            )

    def test_static_prices_slot_bounds(self, tiny_instance):
        with pytest.raises(IndexError):
            tiny_instance.static_prices(99)

    def test_access_delay_constant(self, tiny_instance):
        assert tiny_instance.access_delay_constant() == pytest.approx(
            float(np.sum(tiny_instance.access_delay))
        )

    def test_slice_slots(self, tiny_instance):
        sub = tiny_instance.slice_slots(1, 4)
        assert sub.num_slots == 3
        assert np.array_equal(sub.op_prices, tiny_instance.op_prices[1:4])
        assert np.array_equal(sub.attachment, tiny_instance.attachment[1:4])
        # Time-invariant data is shared.
        assert np.array_equal(sub.capacities, tiny_instance.capacities)

    def test_slice_invalid(self, tiny_instance):
        with pytest.raises(ValueError):
            tiny_instance.slice_slots(4, 4)

    def test_with_weights(self, tiny_instance):
        w = CostWeights.from_mu(5.0)
        new = tiny_instance.with_weights(w)
        assert new.weights.mu == 5.0
        assert tiny_instance.weights.mu == 1.0  # original untouched
