"""Tests for AllocationSchedule and feasibility checking."""

import numpy as np
import pytest

from repro.core.allocation import AllocationSchedule, FeasibilityReport
from tests.conftest import random_schedule


class TestConstruction:
    def test_zeros(self):
        schedule = AllocationSchedule.zeros(3, 2, 4)
        assert schedule.num_slots == 3
        assert schedule.num_clouds == 2
        assert schedule.num_users == 4
        assert np.all(schedule.x == 0)

    def test_from_slots(self):
        slots = [np.ones((2, 3)), 2 * np.ones((2, 3))]
        schedule = AllocationSchedule.from_slots(slots)
        assert schedule.num_slots == 2
        assert np.all(schedule.x[1] == 2.0)

    def test_from_empty_slots(self):
        with pytest.raises(ValueError):
            AllocationSchedule.from_slots([])

    def test_wrong_rank(self):
        with pytest.raises(ValueError):
            AllocationSchedule(np.zeros((2, 3)))

    def test_non_finite(self):
        x = np.zeros((1, 2, 2))
        x[0, 0, 0] = np.nan
        with pytest.raises(ValueError):
            AllocationSchedule(x)


class TestAggregations:
    def test_cloud_totals(self):
        x = np.arange(12, dtype=float).reshape(2, 2, 3)
        schedule = AllocationSchedule(x)
        assert np.allclose(schedule.cloud_totals(), x.sum(axis=2))

    def test_user_totals(self):
        x = np.arange(12, dtype=float).reshape(2, 2, 3)
        schedule = AllocationSchedule(x)
        assert np.allclose(schedule.user_totals(), x.sum(axis=1))

    def test_with_previous_zero_baseline(self):
        x = np.ones((3, 2, 2))
        current, prev = AllocationSchedule(x).with_previous()
        assert np.all(prev[0] == 0.0)  # the paper's x_{i,j,0} = 0
        assert np.allclose(prev[1:], x[:-1])
        assert current is not prev


class TestFeasibility:
    def test_feasible_random_schedule(self, tiny_instance):
        schedule = AllocationSchedule(random_schedule(tiny_instance, seed=1))
        report = schedule.feasibility_report(tiny_instance)
        assert report.worst() <= 1e-9
        assert schedule.is_feasible(tiny_instance)

    def test_demand_violation_detected(self, tiny_instance):
        x = random_schedule(tiny_instance, seed=2)
        x[:, :, 0] *= 0.5  # user 0 gets half its workload
        report = AllocationSchedule(x).feasibility_report(tiny_instance)
        assert report.demand_violation == pytest.approx(
            0.5 * tiny_instance.workloads[0]
        )
        assert not report.is_feasible

    def test_capacity_violation_detected(self, tiny_instance):
        x = np.zeros(
            (tiny_instance.num_slots, tiny_instance.num_clouds, tiny_instance.num_users)
        )
        # Cram everything into cloud 0 (capacity 6 < workload total 10).
        x[:, 0, :] = tiny_instance.workloads[None, :]
        report = AllocationSchedule(x).feasibility_report(tiny_instance)
        assert report.capacity_violation == pytest.approx(10.0 - 6.0)

    def test_negativity_detected(self, tiny_instance):
        x = random_schedule(tiny_instance, seed=3)
        x[0, 0, 0] = -0.5
        report = AllocationSchedule(x).feasibility_report(tiny_instance)
        assert report.negativity_violation == pytest.approx(0.5)

    def test_require_feasible_raises_with_details(self, tiny_instance):
        x = np.zeros(
            (tiny_instance.num_slots, tiny_instance.num_clouds, tiny_instance.num_users)
        )
        with pytest.raises(ValueError, match="demand violation"):
            AllocationSchedule(x).require_feasible(tiny_instance)

    def test_tolerance(self, tiny_instance):
        x = random_schedule(tiny_instance, seed=4)
        x[:, :, 0] *= 1.0 - 1e-9  # violate demand by ~2e-9
        schedule = AllocationSchedule(x)
        assert schedule.is_feasible(tiny_instance, tol=1e-6)
        assert not schedule.is_feasible(tiny_instance, tol=1e-12)

    def test_shape_mismatch(self, tiny_instance):
        schedule = AllocationSchedule.zeros(2, 2, 2)
        with pytest.raises(ValueError, match="shape"):
            schedule.feasibility_report(tiny_instance)


class TestFeasibilityReport:
    def test_worst(self):
        report = FeasibilityReport(0.1, 0.0, 0.3)
        assert report.worst() == 0.3
        assert not report.is_feasible

    def test_clean(self):
        report = FeasibilityReport(0.0, 0.0, 0.0)
        assert report.is_feasible
