"""Tests for the online regularized allocator (the paper's algorithm)."""

import numpy as np
import pytest

from repro.core.regularization import OnlineRegularizedAllocator, _repair_feasibility
from repro.solvers.registry import get_backend


class TestConfiguration:
    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            OnlineRegularizedAllocator(eps1=0.0)
        with pytest.raises(ValueError):
            OnlineRegularizedAllocator(eps2=-1.0)

    def test_invalid_tol(self):
        with pytest.raises(ValueError):
            OnlineRegularizedAllocator(tol=0.0)

    def test_name(self):
        assert OnlineRegularizedAllocator().name == "online-approx"


class TestRun:
    def test_feasible_over_time(self, tiny_instance):
        schedule = OnlineRegularizedAllocator().run(tiny_instance)
        # Theorem 1: the per-slot P2 optima form a feasible P0 trajectory.
        schedule.require_feasible(tiny_instance, tol=1e-6)
        assert schedule.num_slots == tiny_instance.num_slots

    def test_deterministic(self, tiny_instance):
        a = OnlineRegularizedAllocator().run(tiny_instance)
        b = OnlineRegularizedAllocator().run(tiny_instance)
        assert np.allclose(a.x, b.x)

    def test_backends_agree(self, tiny_instance):
        from repro.core.costs import total_cost

        scipy_schedule = OnlineRegularizedAllocator(
            backend=get_backend("scipy")
        ).run(tiny_instance)
        ipm_schedule = OnlineRegularizedAllocator(backend=get_backend("ipm")).run(
            tiny_instance
        )
        # Per-slot solver differences compound along the trajectory, so the
        # allocations agree loosely and the objective tightly.
        assert np.allclose(scipy_schedule.x, ipm_schedule.x, atol=2e-2)
        assert total_cost(scipy_schedule, tiny_instance) == pytest.approx(
            total_cost(ipm_schedule, tiny_instance), rel=1e-3
        )

    def test_warm_start_matches_cold_start(self, tiny_instance):
        warm = OnlineRegularizedAllocator(warm_start=True).run(tiny_instance)
        cold = OnlineRegularizedAllocator(warm_start=False).run(tiny_instance)
        # P2 is strictly convex: same optimum from any start.
        assert np.allclose(warm.x, cold.x, atol=1e-4)

    def test_last_solves_recorded(self, tiny_instance):
        algorithm = OnlineRegularizedAllocator()
        algorithm.run(tiny_instance)
        assert len(algorithm.last_solves) == tiny_instance.num_slots
        assert all(s.iterations >= 0 for s in algorithm.last_solves)

    def test_step_respects_previous_allocation(self, tiny_instance):
        algorithm = OnlineRegularizedAllocator()
        x_prev = np.zeros((tiny_instance.num_clouds, tiny_instance.num_users))
        x1, _ = algorithm.step(tiny_instance, 0, x_prev)
        x2, _ = algorithm.step(tiny_instance, 1, x1)
        assert x1.shape == x2.shape == x_prev.shape
        # Both steps satisfy the demand constraint.
        assert np.all(x1.sum(axis=0) >= tiny_instance.workloads - 1e-6)
        assert np.all(x2.sum(axis=0) >= tiny_instance.workloads - 1e-6)

    def test_eps_changes_trajectory(self, tiny_instance):
        small = OnlineRegularizedAllocator(eps1=0.01, eps2=0.01).run(tiny_instance)
        large = OnlineRegularizedAllocator(eps1=100.0, eps2=100.0).run(tiny_instance)
        assert not np.allclose(small.x, large.x, atol=1e-3)


class TestRepair:
    def test_clips_negatives(self, tiny_instance):
        x = np.full((tiny_instance.num_clouds, tiny_instance.num_users), 2.0)
        x[0, 0] = -1e-7
        repaired = _repair_feasibility(x, tiny_instance)
        assert repaired.min() >= 0.0

    def test_scales_deficient_users(self, tiny_instance):
        workloads = np.asarray(tiny_instance.workloads)
        x = np.full(
            (tiny_instance.num_clouds, tiny_instance.num_users),
            workloads[None, :] / tiny_instance.num_clouds,
        ) * (1.0 - 1e-7)
        repaired = _repair_feasibility(x, tiny_instance)
        assert np.all(repaired.sum(axis=0) >= workloads - 1e-12)

    def test_noop_on_feasible(self, tiny_instance):
        workloads = np.asarray(tiny_instance.workloads)
        x = np.broadcast_to(
            workloads[None, :] / tiny_instance.num_clouds,
            (tiny_instance.num_clouds, tiny_instance.num_users),
        ).copy() * 1.01
        repaired = _repair_feasibility(x, tiny_instance)
        assert np.allclose(repaired, x)

    def test_all_zero_column_recovered(self, tiny_instance):
        x = np.zeros((tiny_instance.num_clouds, tiny_instance.num_users))
        repaired = _repair_feasibility(x, tiny_instance)
        assert np.all(
            repaired.sum(axis=0) >= np.asarray(tiny_instance.workloads) - 1e-12
        )

    def test_all_zero_column_lands_at_attached_cloud(self, tiny_instance):
        """Regression: the fallback places a zero-column user's workload at
        its attached cloud (not spread uniformly), per the documented
        behavior."""
        workloads = np.asarray(tiny_instance.workloads)
        for slot in range(tiny_instance.num_slots):
            attachment = np.asarray(tiny_instance.attachment)[slot]
            x = np.zeros((tiny_instance.num_clouds, tiny_instance.num_users))
            repaired = _repair_feasibility(x, tiny_instance, slot)
            for j in range(tiny_instance.num_users):
                expected = np.zeros(tiny_instance.num_clouds)
                expected[attachment[j]] = workloads[j]
                np.testing.assert_array_equal(repaired[:, j], expected)

    def test_mixed_zero_and_deficient_columns(self, tiny_instance):
        """A zero column is repaired without disturbing scaled neighbors."""
        workloads = np.asarray(tiny_instance.workloads)
        x = np.full(
            (tiny_instance.num_clouds, tiny_instance.num_users),
            workloads[None, :] / tiny_instance.num_clouds,
        ) * (1.0 - 1e-7)
        x[:, 1] = 0.0  # user 1 lost its whole allocation
        repaired = _repair_feasibility(x, tiny_instance)
        assert np.all(repaired.sum(axis=0) >= workloads - 1e-12)
        attached = int(np.asarray(tiny_instance.attachment)[0, 1])
        assert repaired[attached, 1] == workloads[1]
