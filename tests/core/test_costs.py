"""Tests for the four cost functions (eqs. 1, 2, 3, 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationSchedule
from repro.core.costs import (
    cost_breakdown,
    migration_cost,
    migration_volumes,
    operation_cost,
    positive_part,
    reconfiguration_cost,
    service_quality_cost,
    total_cost,
)
from repro.core.problem import CostWeights, ProblemInstance
from repro.pricing.bandwidth import MigrationPrices
from tests.conftest import make_tiny_instance, random_schedule


def two_cloud_instance(weights: CostWeights | None = None) -> ProblemInstance:
    """A 2-cloud, 1-user, 2-slot instance with round numbers."""
    return ProblemInstance(
        workloads=np.array([1.0]),
        capacities=np.array([2.0, 2.0]),
        op_prices=np.array([[1.0, 3.0], [2.0, 1.0]]),
        reconfig_prices=np.array([0.5, 0.7]),
        migration_prices=MigrationPrices(
            out=np.array([0.2, 0.3]), into=np.array([0.4, 0.1])
        ),
        inter_cloud_delay=np.array([[0.0, 2.0], [2.0, 0.0]]),
        attachment=np.array([[0], [1]]),
        access_delay=np.array([[1.5], [0.5]]),
        weights=weights or CostWeights(),
    )


def move_schedule() -> AllocationSchedule:
    """Workload at cloud 0 in slot 0, migrated to cloud 1 in slot 1."""
    x = np.zeros((2, 2, 1))
    x[0, 0, 0] = 1.0
    x[1, 1, 0] = 1.0
    return AllocationSchedule(x)


class TestHandComputed:
    def test_operation_cost(self):
        instance = two_cloud_instance()
        cost = operation_cost(move_schedule(), instance)
        # Slot 0: a_{0,0} * 1 = 1; slot 1: a_{1,1} * 1 = 1.
        assert np.allclose(cost, [1.0, 1.0])

    def test_service_quality_cost(self):
        instance = two_cloud_instance()
        cost = service_quality_cost(move_schedule(), instance)
        # Slot 0: user attached to 0, workload at 0 -> access 1.5 + 0.
        # Slot 1: user attached to 1, workload at 1 -> access 0.5 + 0.
        assert np.allclose(cost, [1.5, 0.5])

    def test_service_quality_remote_workload(self):
        instance = two_cloud_instance()
        x = np.zeros((2, 2, 1))
        x[:, 0, 0] = 1.0  # workload stays at cloud 0
        cost = service_quality_cost(AllocationSchedule(x), instance)
        # Slot 1: attached to 1, served from 0 -> access 0.5 + 1 * d(1,0)/1.
        assert cost[1] == pytest.approx(0.5 + 2.0)

    def test_reconfiguration_cost(self):
        instance = two_cloud_instance()
        cost = reconfiguration_cost(move_schedule(), instance)
        # Slot 0: cloud 0 grows by 1 -> c_0 = 0.5.
        # Slot 1: cloud 1 grows by 1 -> c_1 = 0.7 (cloud 0 shrink is free).
        assert np.allclose(cost, [0.5, 0.7])

    def test_migration_volumes(self):
        z_out, z_in = migration_volumes(move_schedule())
        assert np.allclose(z_in, [[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose(z_out, [[0.0, 0.0], [1.0, 0.0]])

    def test_migration_cost(self):
        instance = two_cloud_instance()
        cost = migration_cost(move_schedule(), instance)
        # Slot 0: 1 unit into cloud 0 -> b_in_0 = 0.4.
        # Slot 1: 1 out of cloud 0 (0.2) + 1 into cloud 1 (0.1) = 0.3.
        assert np.allclose(cost, [0.4, 0.3])

    def test_total_matches_sum(self):
        instance = two_cloud_instance()
        schedule = move_schedule()
        expected = (1.0 + 1.0) + (1.5 + 0.5) + (0.5 + 0.7) + (0.4 + 0.3)
        assert total_cost(schedule, instance) == pytest.approx(expected)

    def test_weights_applied(self):
        instance = two_cloud_instance(CostWeights(static=2.0, dynamic=3.0))
        schedule = move_schedule()
        static = (1.0 + 1.0) + (1.5 + 0.5)
        dynamic = (0.5 + 0.7) + (0.4 + 0.3)
        assert total_cost(schedule, instance) == pytest.approx(
            2.0 * static + 3.0 * dynamic
        )


class TestPositivePart:
    def test_values(self):
        assert np.allclose(positive_part(np.array([-1.0, 0.0, 2.5])), [0.0, 0.0, 2.5])


class TestBreakdown:
    def test_components_consistent(self, tiny_instance):
        schedule = AllocationSchedule(random_schedule(tiny_instance, seed=5))
        breakdown = cost_breakdown(schedule, tiny_instance)
        totals = breakdown.totals()
        assert totals["static"] == pytest.approx(
            totals["operation"] + totals["service_quality"]
        )
        assert totals["dynamic"] == pytest.approx(
            totals["reconfiguration"] + totals["migration"]
        )
        assert totals["total"] == pytest.approx(
            tiny_instance.weights.static * totals["static"]
            + tiny_instance.weights.dynamic * totals["dynamic"]
        )
        assert breakdown.num_slots == tiny_instance.num_slots

    def test_shape_mismatch(self, tiny_instance):
        with pytest.raises(ValueError, match="shape"):
            cost_breakdown(AllocationSchedule.zeros(1, 1, 1), tiny_instance)

    def test_per_slot_sum_equals_total(self, tiny_instance):
        schedule = AllocationSchedule(random_schedule(tiny_instance, seed=6))
        breakdown = cost_breakdown(schedule, tiny_instance)
        assert breakdown.total == pytest.approx(float(breakdown.total_per_slot.sum()))


class TestInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_all_costs_nonnegative(self, seed):
        instance = make_tiny_instance(seed=seed % 7)
        schedule = AllocationSchedule(random_schedule(instance, seed=seed))
        breakdown = cost_breakdown(schedule, instance)
        assert np.all(breakdown.operation >= 0)
        assert np.all(breakdown.service_quality >= 0)
        assert np.all(breakdown.reconfiguration >= 0)
        assert np.all(breakdown.migration >= 0)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_constant_schedule_has_no_dynamic_cost_after_first_slot(self, seed):
        instance = make_tiny_instance(seed=seed % 5)
        rng = np.random.default_rng(seed)
        one_slot = random_schedule(instance, seed=seed)[0]
        x = np.repeat(one_slot[None, :, :], instance.num_slots, axis=0)
        breakdown = cost_breakdown(AllocationSchedule(x), instance)
        assert np.allclose(breakdown.reconfiguration[1:], 0.0)
        assert np.allclose(breakdown.migration[1:], 0.0)
        # Slot 0 pays full provisioning from the zero baseline.
        assert breakdown.reconfiguration[0] > 0
        assert breakdown.migration[0] > 0

    @given(scale=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=15, deadline=None)
    def test_operation_cost_is_linear_in_allocation(self, scale):
        instance = make_tiny_instance()
        x = random_schedule(instance, seed=1)
        base = operation_cost(AllocationSchedule(x), instance)
        scaled = operation_cost(AllocationSchedule(scale * x), instance)
        assert np.allclose(scaled, scale * base)

    def test_migration_conservation(self, tiny_instance):
        # Total inflow - total outflow equals the change in total allocation.
        schedule = AllocationSchedule(random_schedule(tiny_instance, seed=9))
        z_out, z_in = migration_volumes(schedule)
        totals = schedule.cloud_totals().sum(axis=1)
        prev = np.concatenate([[0.0], totals[:-1]])
        assert np.allclose((z_in - z_out).sum(axis=1), totals - prev)
