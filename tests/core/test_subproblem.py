"""Tests for the regularized subproblem P2: derivatives, constraints, KKT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subproblem import RegularizedSubproblem
from repro.solvers.registry import get_backend
from tests.conftest import make_tiny_instance


def make_subproblem(seed=0, slot=1, eps=1.0, x_prev_scale=0.5):
    instance = make_tiny_instance(seed=seed)
    rng = np.random.default_rng(seed + 100)
    shape = (instance.num_clouds, instance.num_users)
    x_prev = x_prev_scale * rng.uniform(0.0, 1.0, size=shape) * np.asarray(
        instance.workloads
    )
    return RegularizedSubproblem.from_instance(
        instance, slot, x_prev, eps1=eps, eps2=eps
    )


def numerical_gradient(f, x, h=1e-6):
    grad = np.zeros_like(x)
    for k in range(x.size):
        up, down = x.copy(), x.copy()
        up[k] += h
        down[k] -= h
        grad[k] = (f(up) - f(down)) / (2 * h)
    return grad


class TestDerivatives:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gradient_matches_finite_differences(self, seed):
        sub = make_subproblem(seed=seed)
        rng = np.random.default_rng(seed)
        x = rng.uniform(0.2, 2.0, size=sub.num_clouds * sub.num_users)
        analytic = sub.gradient(x)
        numeric = numerical_gradient(sub.objective, x)
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_hessian_matches_finite_differences(self):
        sub = make_subproblem(seed=3)
        rng = np.random.default_rng(3)
        n = sub.num_clouds * sub.num_users
        x = rng.uniform(0.3, 1.5, size=n)
        hess = np.asarray(sub.hessian(x).todense())
        h = 1e-5
        for k in range(0, n, 3):
            up, down = x.copy(), x.copy()
            up[k] += h
            down[k] -= h
            numeric_row = (sub.gradient(up) - sub.gradient(down)) / (2 * h)
            assert np.allclose(hess[k], numeric_row, rtol=1e-3, atol=1e-5)

    def test_hessian_factors_reconstruct_hessian(self):
        sub = make_subproblem(seed=4)
        rng = np.random.default_rng(4)
        n = sub.num_clouds * sub.num_users
        x = rng.uniform(0.1, 1.0, size=n)
        diag, cloud_scale = sub.hessian_factors(x)
        dense = np.diag(diag)
        j = sub.num_users
        for i in range(sub.num_clouds):
            sl = slice(i * j, (i + 1) * j)
            dense[sl, sl] += cloud_scale[i]
        assert np.allclose(dense, np.asarray(sub.hessian(x).todense()))

    def test_hessian_positive_semidefinite(self):
        sub = make_subproblem(seed=5)
        rng = np.random.default_rng(5)
        x = rng.uniform(0.1, 2.0, size=sub.num_clouds * sub.num_users)
        eigenvalues = np.linalg.eigvalsh(np.asarray(sub.hessian(x).todense()))
        assert eigenvalues.min() > 0  # strictly convex with eps > 0

    def test_gradient_at_x_prev_is_static_prices(self):
        # At x = x_prev the entropy log-terms vanish, leaving only prices.
        sub = make_subproblem(seed=6)
        grad = sub.gradient(sub.x_prev.ravel()).reshape(
            sub.num_clouds, sub.num_users
        )
        assert np.allclose(grad, sub.static_prices, atol=1e-10)


class TestConstraints:
    def test_matrix_shapes(self):
        sub = make_subproblem()
        matrix, lower = sub.constraint_matrices()
        n = sub.num_clouds * sub.num_users
        assert matrix.shape == (sub.num_users + sub.num_clouds, n)
        assert lower.shape == (sub.num_users + sub.num_clouds,)

    def test_demand_rows(self):
        sub = make_subproblem()
        matrix, lower = sub.constraint_matrices()
        x = np.arange(sub.num_clouds * sub.num_users, dtype=float)
        values = np.asarray(matrix @ x)
        table = x.reshape(sub.num_clouds, sub.num_users)
        assert np.allclose(values[: sub.num_users], table.sum(axis=0))
        assert np.allclose(lower[: sub.num_users], sub.workloads)

    def test_capacity_rows(self):
        sub = make_subproblem()
        matrix, lower = sub.constraint_matrices()
        x = np.arange(sub.num_clouds * sub.num_users, dtype=float)
        values = np.asarray(matrix @ x)
        table = x.reshape(sub.num_clouds, sub.num_users)
        assert np.allclose(values[sub.num_users :], -table.sum(axis=1))
        assert np.allclose(lower[sub.num_users :], -np.asarray(sub.capacities))

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_interior_point_strictly_feasible(self, seed):
        sub = make_subproblem(seed=seed % 13)
        x = sub.interior_point()
        program = sub.build_program()
        assert x.min() > 0
        slack = program.constraint_slack(x)
        assert slack.min() > 0

    def test_interior_requires_overprovisioning(self):
        instance = make_tiny_instance()
        sub = RegularizedSubproblem(
            static_prices=np.ones((2, 2)),
            reconfig_prices=np.ones(2),
            migration_prices=np.ones(2),
            capacities=np.array([1.0, 1.0]),
            workloads=np.array([1.0, 1.0]),  # total = capacity: no interior
            x_prev=np.zeros((2, 2)),
            eps1=1.0,
            eps2=1.0,
        )
        with pytest.raises(ValueError, match="strictly feasible"):
            sub.interior_point()


class TestValidation:
    def test_bad_eps(self):
        instance = make_tiny_instance()
        with pytest.raises(ValueError):
            RegularizedSubproblem.from_instance(
                instance, 0, np.zeros((3, 4)), eps1=0.0, eps2=1.0
            )

    def test_bad_x_prev_shape(self):
        instance = make_tiny_instance()
        with pytest.raises(ValueError):
            RegularizedSubproblem.from_instance(
                instance, 0, np.zeros((2, 2)), eps1=1.0, eps2=1.0
            )

    def test_negative_x_prev(self):
        instance = make_tiny_instance()
        with pytest.raises(ValueError):
            RegularizedSubproblem.from_instance(
                instance, 0, np.full((3, 4), -0.1), eps1=1.0, eps2=1.0
            )


class TestKKT:
    def test_residual_small_at_optimum(self):
        sub = make_subproblem(seed=7)
        program = sub.build_program()
        result = get_backend("ipm").solve(program, tol=1e-9)
        # Capacity is slack in this instance, so rho = 0; recover the
        # tightest dual-feasible theta from the primal solution (the
        # mu/slack estimates of barrier solvers are noisy at tiny slacks).
        grad = sub.gradient(result.x).reshape(sub.num_clouds, sub.num_users)
        rho = np.zeros(sub.num_clouds)
        theta = grad.min(axis=0)
        residual = sub.kkt_stationarity_residual(result.x, theta, rho)
        assert residual < 1e-4

    def test_residual_large_at_random_point(self):
        sub = make_subproblem(seed=8)
        x = sub.interior_point()
        residual = sub.kkt_stationarity_residual(
            x, np.zeros(sub.num_users), np.zeros(sub.num_clouds)
        )
        assert residual > 1e-3
