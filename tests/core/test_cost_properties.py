"""Property-based invariants of the cost model (paper equations 1-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationSchedule
from repro.core.costs import (
    cost_breakdown,
    migration_cost,
    migration_volumes,
    operation_cost,
    reconfiguration_cost,
    service_quality_cost,
    total_cost,
)
from repro.core.problem import CostWeights
from tests.conftest import make_tiny_instance, random_schedule

seeds = st.integers(min_value=0, max_value=100_000)


class TestHomogeneity:
    @given(seed=seeds, scale=st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_all_cost_families_positively_homogeneous(self, seed, scale):
        """Every cost family satisfies cost(a*x) = a*cost(x) for a > 0.

        (Downscaling keeps schedules feasible w.r.t. capacity; demand
        feasibility is irrelevant to the cost arithmetic.)
        """
        instance = make_tiny_instance(seed=seed % 9)
        x = random_schedule(instance, seed=seed)
        base = AllocationSchedule(x)
        scaled = AllocationSchedule(scale * x)
        assert np.allclose(
            operation_cost(scaled, instance), scale * operation_cost(base, instance)
        )
        assert np.allclose(
            reconfiguration_cost(scaled, instance),
            scale * reconfiguration_cost(base, instance),
        )
        assert np.allclose(
            migration_cost(scaled, instance), scale * migration_cost(base, instance)
        )
        # Service quality has the allocation-independent access-delay term.
        sq_base = service_quality_cost(base, instance)
        sq_scaled = service_quality_cost(scaled, instance)
        constant = np.asarray(instance.access_delay).sum(axis=1)
        assert np.allclose(sq_scaled - constant, scale * (sq_base - constant))


class TestWeightLinearity:
    @given(
        seed=seeds,
        w_s=st.floats(min_value=0.1, max_value=10.0),
        w_d=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_total_cost_is_linear_in_weights(self, seed, w_s, w_d):
        base = make_tiny_instance(seed=seed % 9)
        weighted = make_tiny_instance(
            weights=CostWeights(static=w_s, dynamic=w_d), seed=seed % 9
        )
        schedule = AllocationSchedule(random_schedule(base, seed=seed))
        breakdown = cost_breakdown(schedule, base)
        expected = w_s * breakdown.static_per_slot.sum() + w_d * (
            breakdown.dynamic_per_slot.sum()
        )
        assert total_cost(schedule, weighted) == pytest.approx(expected, rel=1e-9)


class TestTelescoping:
    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_total_inflow_dominates_final_load(self, seed):
        """Sum_t z_in_{i,t} >= x_{i,T}: increases must at least build the
        final load from the zero baseline."""
        instance = make_tiny_instance(seed=seed % 9)
        schedule = AllocationSchedule(random_schedule(instance, seed=seed))
        _, z_in = migration_volumes(schedule)
        final_load = schedule.x[-1].sum(axis=1)
        # Per-user inflow bounds per-user final allocation, hence per cloud.
        assert np.all(z_in.sum(axis=0) >= final_load - 1e-9)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_reconfiguration_bounded_by_total_inflow_cost_shape(self, seed):
        """Per cloud: (X_t - X_{t-1})+ <= z_in_{i,t} (aggregate growth can't
        exceed the per-user inflow sum)."""
        instance = make_tiny_instance(seed=seed % 9)
        schedule = AllocationSchedule(random_schedule(instance, seed=seed))
        totals = schedule.cloud_totals()
        prev = np.zeros_like(totals)
        prev[1:] = totals[:-1]
        growth = np.maximum(totals - prev, 0.0)
        _, z_in = migration_volumes(schedule)
        assert np.all(growth <= z_in + 1e-9)


class TestShuffleInvariance:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_operation_cost_invariant_to_user_relabeling(self, seed):
        """Cost_op depends only on per-cloud totals, not which user is
        which (eq. 1 sums over j)."""
        instance = make_tiny_instance(seed=seed % 9)
        x = random_schedule(instance, seed=seed)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(instance.num_users)
        assert np.allclose(
            operation_cost(AllocationSchedule(x), instance),
            operation_cost(AllocationSchedule(x[:, :, perm]), instance),
        )
