"""Tests for Lemma 2: the constructed dual solution S_D."""

import dataclasses

import numpy as np
import pytest

from repro.core.duality import (
    construct_dual_solution,
    recover_slot_duals,
    solve_dual,
)
from repro.core.problem import ProblemInstance
from repro.core.regularization import OnlineRegularizedAllocator
from tests.conftest import make_tiny_instance

EPS = 1.0


def roomy_instance(seed: int = 0) -> ProblemInstance:
    """A tiny instance whose capacities can never bind (1.5x total each),
    the regime where the paper's S_D construction is exact."""
    base = make_tiny_instance(seed=seed)
    fields = {f.name: getattr(base, f.name) for f in dataclasses.fields(base)}
    fields["capacities"] = np.full(base.num_clouds, 1.5 * base.total_workload)
    return ProblemInstance(**fields)


@pytest.fixture(scope="module")
def run():
    instance = roomy_instance()
    schedule = OnlineRegularizedAllocator(eps1=EPS, eps2=EPS).run(instance)
    theta, rho = recover_slot_duals(instance, schedule, eps1=EPS, eps2=EPS)
    return instance, schedule, theta, rho


class TestRecoverDuals:
    def test_shapes(self, run):
        instance, schedule, theta, rho = run
        assert theta.shape == (instance.num_slots, instance.num_users)
        assert rho.shape == (instance.num_slots, instance.num_clouds)

    def test_nonnegative(self, run):
        _, _, theta, rho = run
        assert theta.min() >= 0.0
        assert rho.min() >= 0.0

    def test_rho_zero_when_capacity_roomy(self, run):
        _, _, _theta, rho = run
        assert rho.max() == 0.0


class TestLemma2:
    def test_constructed_solution_feasible(self, run):
        """Lemma 2, numerically: S_D satisfies every constraint of D."""
        instance, schedule, theta, rho = run
        sd = construct_dual_solution(
            instance, schedule, theta, rho, eps1=EPS, eps2=EPS
        )
        assert sd.max_violation < 1e-5

    def test_weak_duality_of_constructed_point(self, run):
        """S_D is dual-feasible, so its objective lower-bounds D* (and
        hence P3* and the offline P1 optimum)."""
        instance, schedule, theta, rho = run
        sd = construct_dual_solution(
            instance, schedule, theta, rho, eps1=EPS, eps2=EPS
        )
        assert sd.objective <= solve_dual(instance) + 1e-6

    def test_alpha_within_box(self, run):
        """(14b): 0 <= alpha <= c (the alpha mapping's defining property)."""
        instance, schedule, theta, rho = run
        sd = construct_dual_solution(
            instance, schedule, theta, rho, eps1=EPS, eps2=EPS
        )
        creg = instance.weights.dynamic * np.asarray(instance.reconfig_prices)
        assert sd.alpha.min() >= -1e-12
        assert np.all(sd.alpha <= creg[None, :] + 1e-9)

    def test_beta_within_box(self, run):
        """(14c): 0 <= beta <= b — holds with the (lambda_j + eps2)
        numerator (the coherent reading of the paper's mapping)."""
        instance, schedule, theta, rho = run
        sd = construct_dual_solution(
            instance, schedule, theta, rho, eps1=EPS, eps2=EPS
        )
        bmig = instance.weights.dynamic * (
            np.asarray(instance.migration_prices.out)
            + np.asarray(instance.migration_prices.into)
        )
        assert sd.beta.min() >= -1e-12
        assert np.all(sd.beta <= bmig[None, :, None] + 1e-9)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_across_seeds(self, seed):
        instance = roomy_instance(seed=seed)
        schedule = OnlineRegularizedAllocator(eps1=EPS, eps2=EPS).run(instance)
        theta, rho = recover_slot_duals(instance, schedule, eps1=EPS, eps2=EPS)
        sd = construct_dual_solution(
            instance, schedule, theta, rho, eps1=EPS, eps2=EPS
        )
        assert sd.max_violation < 1e-4

    def test_binding_capacity_reported_as_violation(self):
        """With binding capacity the direct-form multipliers no longer map
        onto the complement-form dual (documented); the construction must
        *report* that rather than hide it."""
        instance = make_tiny_instance()  # capacities 6,5,4 vs workload 10
        schedule = OnlineRegularizedAllocator(eps1=EPS, eps2=EPS).run(instance)
        theta, rho = recover_slot_duals(instance, schedule, eps1=EPS, eps2=EPS)
        if rho.max() == 0.0:
            pytest.skip("capacity never bound on this trajectory")
        sd = construct_dual_solution(
            instance, schedule, theta, rho, eps1=EPS, eps2=EPS
        )
        assert sd.max_violation > 0.0
