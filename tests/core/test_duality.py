"""Tests for the executable competitive analysis (paper Section IV)."""

import numpy as np
import pytest

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.core.duality import (
    DualityCertificate,
    duality_certificate,
    p1_value,
    solve_dual,
    solve_p3,
)
from repro.core.regularization import OnlineRegularizedAllocator
from tests.conftest import make_tiny_instance


@pytest.fixture(scope="module")
def instance():
    return make_tiny_instance()


@pytest.fixture(scope="module")
def p3_solution(instance):
    return solve_p3(instance)


@pytest.fixture(scope="module")
def dual_value(instance):
    return solve_dual(instance)


class TestP3:
    def test_p3_lower_bounds_any_feasible_p1(self, instance, p3_solution):
        """P3 relaxes P1: its optimum is below P1 of every feasible schedule."""
        _, p3_opt = p3_solution
        for algorithm in (OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator()):
            schedule = algorithm.run(instance)
            assert p3_opt <= p1_value(schedule, instance) + 1e-6

    def test_p3_solution_meets_demand(self, instance, p3_solution):
        schedule, _ = p3_solution
        assert np.all(
            schedule.user_totals() >= np.asarray(instance.workloads)[None, :] - 1e-6
        )

    def test_p3_matches_offline_p1_when_capacity_slack(self, instance, p3_solution):
        """On instances where (13c) is as strong as true capacity (demand
        binding at optimum), P3* equals the P1 optimum."""
        _, p3_opt = p3_solution
        offline = OfflineOptimal().run(instance)
        assert p3_opt == pytest.approx(p1_value(offline, instance), rel=1e-5)


class TestWeakAndStrongDuality:
    def test_weak_duality(self, p3_solution, dual_value):
        _, p3_opt = p3_solution
        assert dual_value <= p3_opt + 1e-6

    def test_strong_duality(self, p3_solution, dual_value):
        """P3 and D are an LP primal/dual pair: optima coincide."""
        _, p3_opt = p3_solution
        assert dual_value == pytest.approx(p3_opt, rel=1e-6)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_strong_duality_across_instances(self, seed):
        instance = make_tiny_instance(seed=seed)
        _, p3_opt = solve_p3(instance)
        assert solve_dual(instance) == pytest.approx(p3_opt, rel=1e-6)


class TestCertificate:
    def test_chain_holds_for_online_solution(self, instance):
        schedule = OnlineRegularizedAllocator().run(instance)
        certificate = duality_certificate(instance, schedule)
        assert certificate.chain_holds
        assert certificate.p1 >= certificate.p3 >= certificate.dual - 1e-6
        assert abs(certificate.lp_duality_gap) < 1e-5 * max(1.0, certificate.p3)

    def test_chain_holds_for_greedy(self, instance):
        schedule = OnlineGreedy().run(instance)
        assert duality_certificate(instance, schedule).chain_holds

    def test_chain_detects_violation(self):
        bad = DualityCertificate(p1=1.0, p3=2.0, dual=1.5, tolerance=1e-9)
        assert not bad.chain_holds

    def test_empirical_ratio_via_dual(self, instance):
        """D* lower-bounds the offline optimum, so P1(x)/D* upper-bounds
        the empirical ratio — the certificate is usable without ever
        solving the offline problem."""
        schedule = OnlineRegularizedAllocator().run(instance)
        certificate = duality_certificate(instance, schedule)
        offline = OfflineOptimal().run(instance)
        true_ratio = p1_value(schedule, instance) / p1_value(offline, instance)
        certified_ratio = certificate.p1 / certificate.dual
        assert certified_ratio >= true_ratio - 1e-6
