"""Tests for the theoretical competitive-ratio machinery (Theorem 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    competitive_ratio_bound,
    eta,
    gamma,
    ratio_bound_curve,
    suggest_epsilon,
    tau,
)

eps_strategy = st.floats(min_value=1e-4, max_value=1e4)


class TestEtaTau:
    def test_eta_formula(self):
        capacities = np.array([10.0, 100.0])
        result = eta(capacities, eps1=2.0)
        assert np.allclose(result, np.log1p(capacities / 2.0))

    def test_tau_formula(self):
        workloads = np.array([1.0, 5.0])
        result = tau(workloads, eps2=0.5)
        assert np.allclose(result, np.log1p(workloads / 0.5))

    def test_positive_eps_required(self):
        with pytest.raises(ValueError):
            eta(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            tau(np.array([1.0]), -1.0)


class TestGamma:
    def test_formula_single_cloud(self):
        c, e1, e2 = 10.0, 1.0, 2.0
        expected = max(
            (c + e1) * np.log1p(c / e1),
            (c + e2) * np.log1p(c / e2),
        )
        assert gamma(np.array([c]), e1, e2) == pytest.approx(expected)

    def test_max_over_clouds(self):
        capacities = np.array([1.0, 50.0])
        g = gamma(capacities, 1.0, 1.0)
        assert g == pytest.approx((51.0) * np.log1p(50.0))

    @given(eps=eps_strategy)
    @settings(max_examples=40, deadline=None)
    def test_gamma_positive(self, eps):
        assert gamma(np.array([3.0, 7.0]), eps, eps) > 0

    @given(
        eps_small=eps_strategy,
        factor=st.floats(min_value=1.001, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_decreasing_in_eps(self, eps_small, factor):
        """The Remark after Theorem 2: r decreases in eps1 = eps2."""
        capacities = np.array([2.0, 9.0, 30.0])
        g_small = gamma(capacities, eps_small, eps_small)
        g_large = gamma(capacities, eps_small * factor, eps_small * factor)
        assert g_large <= g_small + 1e-9


class TestRatioBound:
    def test_formula(self, tiny_instance):
        r = competitive_ratio_bound(tiny_instance, 1.0, 1.0)
        g = gamma(np.asarray(tiny_instance.capacities), 1.0, 1.0)
        assert r == pytest.approx(1.0 + g * tiny_instance.num_clouds)

    def test_always_above_one(self, tiny_instance):
        assert competitive_ratio_bound(tiny_instance, 10.0, 10.0) > 1.0

    def test_curve_monotone(self, tiny_instance):
        eps_values = np.logspace(-3, 3, 13)
        curve = ratio_bound_curve(tiny_instance, eps_values)
        assert np.all(np.diff(curve) <= 1e-9)

    def test_curve_shape(self, tiny_instance):
        curve = ratio_bound_curve(tiny_instance, np.array([0.1, 1.0]))
        assert curve.shape == (2,)


class TestSuggestEpsilon:
    def test_positive(self, tiny_instance):
        assert suggest_epsilon(tiny_instance) > 0

    def test_scales_with_fraction(self, tiny_instance):
        small = suggest_epsilon(tiny_instance, fraction=0.01)
        large = suggest_epsilon(tiny_instance, fraction=0.1)
        assert large == pytest.approx(10 * small)

    def test_invalid_fraction(self, tiny_instance):
        with pytest.raises(ValueError):
            suggest_epsilon(tiny_instance, fraction=0.0)
