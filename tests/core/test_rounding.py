"""Tests for integral (VM-granular) rounding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationSchedule
from repro.core.regularization import OnlineRegularizedAllocator
from repro.core.rounding import (
    RoundingError,
    integrality_gap,
    repair_capacity,
    round_schedule,
    round_user_allocation,
)
from tests.conftest import make_tiny_instance, random_schedule


class TestRoundUser:
    def test_sums_to_workload(self):
        y = round_user_allocation(np.array([0.4, 1.3, 2.3]), 4.0)
        assert y.sum() == 4
        assert np.issubdtype(y.dtype, np.integer)

    def test_already_integral_unchanged(self):
        y = round_user_allocation(np.array([1.0, 0.0, 3.0]), 4.0)
        assert list(y) == [1, 0, 3]

    def test_largest_remainder_wins(self):
        # Scaled values are [0.9, 0.1, 1.0]; the extra unit goes to index 0.
        y = round_user_allocation(np.array([0.9, 0.1, 1.0]), 2.0)
        assert list(y) == [1, 0, 1]

    def test_zero_column_fallback(self):
        y = round_user_allocation(np.zeros(3), 2.0)
        assert y.sum() == 2

    def test_non_integer_workload_rejected(self):
        with pytest.raises(ValueError):
            round_user_allocation(np.array([1.0, 1.0]), 2.5)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        workload=st.integers(min_value=1, max_value=50),
        clouds=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_exact_sum_and_proximity(self, seed, workload, clouds):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0.0, 1.0, size=clouds)
        y = round_user_allocation(x, float(workload))
        assert y.sum() == workload
        assert y.min() >= 0
        # Largest-remainder never moves any entry by a full unit from the
        # rescaled fractional value.
        total = x.sum()
        if total > 0:
            scaled = x * workload / total
            assert np.all(np.abs(y - scaled) < 1.0 + 1e-9)


class TestRepairCapacity:
    def test_noop_when_feasible(self):
        y = np.array([[1, 1], [1, 0]])
        out = repair_capacity(y, np.array([3.0, 3.0]), np.zeros((2, 2)))
        assert np.array_equal(out, y)

    def test_moves_overflow(self):
        y = np.array([[3, 2], [0, 0]])
        out = repair_capacity(y, np.array([4.0, 4.0]), np.ones((2, 2)))
        assert out.sum(axis=1)[0] <= 4
        assert out.sum() == 5  # units conserved
        assert np.array_equal(out.sum(axis=0), y.sum(axis=0))  # per user too

    def test_prefers_cheaper_destination(self):
        y = np.array([[2], [0], [0]])
        prices = np.array([[0.0], [5.0], [1.0]])
        out = repair_capacity(y, np.array([1.0, 5.0, 5.0]), prices)
        assert out[2, 0] == 1  # cheaper than cloud 1

    def test_impossible_repair_raises(self):
        y = np.array([[3], [0]])
        with pytest.raises(RoundingError):
            repair_capacity(y, np.array([1.0, 0.5]), np.zeros((2, 1)))


class TestRoundSchedule:
    def test_feasible_and_integral(self, tiny_instance):
        fractional = AllocationSchedule(random_schedule(tiny_instance, seed=1))
        rounded = round_schedule(fractional, tiny_instance)
        assert np.allclose(rounded.x, np.rint(rounded.x))
        rounded.require_feasible(tiny_instance, tol=1e-9)
        # Demand met exactly (workloads are integers in the tiny instance).
        assert np.allclose(
            rounded.user_totals(), np.asarray(tiny_instance.workloads)[None, :]
        )

    def test_integrality_gap_small_on_online_solution(self):
        instance = make_tiny_instance(seed=3)
        schedule = OnlineRegularizedAllocator().run(instance)
        rounded, gap = integrality_gap(schedule, instance)
        assert rounded.is_feasible(instance, tol=1e-9)
        # Rounding the regularized solution costs a modest premium.
        assert -0.05 < gap < 0.5

    def test_integral_input_roundtrips(self, tiny_instance):
        # Build an integral feasible schedule: all workload at the attached
        # cloud would break capacity; use capacity-aware rounding output.
        fractional = AllocationSchedule(random_schedule(tiny_instance, seed=2))
        once = round_schedule(fractional, tiny_instance)
        twice = round_schedule(once, tiny_instance)
        assert np.array_equal(once.x, twice.x)
