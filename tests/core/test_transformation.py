"""Tests for the gap-preserving transformation P0 -> P1 (Lemma 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationSchedule
from repro.core.costs import migration_volumes
from repro.core.problem import CostWeights
from repro.core.transformation import (
    combined_migration_prices,
    lemma1_gap,
    p0_objective,
    p1_migration_cost,
    p1_objective,
    per_user_inbound_migration,
    transformation_constant,
)
from tests.conftest import make_tiny_instance, random_schedule


class TestCombinedPrices:
    def test_formula(self, tiny_instance):
        combined = combined_migration_prices(tiny_instance)
        assert np.allclose(
            combined,
            tiny_instance.migration_prices.out + tiny_instance.migration_prices.into,
        )

    def test_sigma(self, tiny_instance):
        sigma = transformation_constant(tiny_instance)
        expected = float(
            np.dot(tiny_instance.migration_prices.out, tiny_instance.capacities)
        )
        assert sigma == pytest.approx(expected)


class TestP1Objective:
    def test_p1_counts_only_inbound(self, tiny_instance):
        schedule = AllocationSchedule(random_schedule(tiny_instance, seed=1))
        _, z_in = migration_volumes(schedule)
        expected = z_in @ combined_migration_prices(tiny_instance)
        assert np.allclose(p1_migration_cost(schedule, tiny_instance), expected)

    def test_p1_equals_p0_without_outbound_moves(self, tiny_instance):
        # A monotone (only-growing) schedule has no outbound migration, and
        # P1's combined price equals P0's b_in + b_out applied to inflow.
        t, i, j = (
            tiny_instance.num_slots,
            tiny_instance.num_clouds,
            tiny_instance.num_users,
        )
        base = random_schedule(tiny_instance, seed=2)[0]
        x = np.stack([base * (0.5 + 0.1 * k) for k in range(t)], axis=0)
        schedule = AllocationSchedule(x)
        z_out, _ = migration_volumes(schedule)
        assert np.all(z_out == 0.0)
        # P0 charges b_in only; P1 charges b_in + b_out: P1 >= P0 holds with
        # the gap exactly the b_out part of the inflow.
        assert p1_objective(schedule, tiny_instance) >= p0_objective(
            schedule, tiny_instance
        )


class TestLemma1:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_gap_nonnegative_on_feasible_schedules(self, seed):
        """Lemma 1: P1 <= P0 + w_d * sigma for any feasible schedule."""
        instance = make_tiny_instance(seed=seed % 11)
        schedule = AllocationSchedule(random_schedule(instance, seed=seed))
        assert lemma1_gap(schedule, instance) >= -1e-9

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mu=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_gap_nonnegative_under_weights(self, seed, mu):
        instance = make_tiny_instance(weights=CostWeights.from_mu(mu), seed=seed % 7)
        schedule = AllocationSchedule(random_schedule(instance, seed=seed))
        assert lemma1_gap(schedule, instance) >= -1e-9

    def test_gap_zero_for_empty_schedule(self, tiny_instance):
        # All-zero schedule: no migration at all, so
        # P0 = P1 (static parts equal) and the gap is exactly w_d * sigma.
        schedule = AllocationSchedule.zeros(
            tiny_instance.num_slots, tiny_instance.num_clouds, tiny_instance.num_users
        )
        gap = lemma1_gap(schedule, tiny_instance)
        assert gap == pytest.approx(
            tiny_instance.weights.dynamic * transformation_constant(tiny_instance)
        )


class TestPerUserMigration:
    def test_decomposition_matches_cloud_volumes(self, tiny_instance):
        """z_{i,t}^in = sum_j z_{i,j,t} (eq. 9's decomposition)."""
        schedule = AllocationSchedule(random_schedule(tiny_instance, seed=3))
        per_user = per_user_inbound_migration(schedule)
        _, z_in = migration_volumes(schedule)
        assert np.allclose(per_user.sum(axis=2), z_in)

    def test_nonnegative(self, tiny_instance):
        schedule = AllocationSchedule(random_schedule(tiny_instance, seed=4))
        assert np.all(per_user_inbound_migration(schedule) >= 0.0)

    def test_first_slot_equals_allocation(self, tiny_instance):
        schedule = AllocationSchedule(random_schedule(tiny_instance, seed=5))
        per_user = per_user_inbound_migration(schedule)
        assert np.allclose(per_user[0], schedule.x[0])
