"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_no_arguments(self):
        args = build_parser().parse_args(["fig1"])
        assert args.command == "fig1"

    def test_scale_arguments(self):
        args = build_parser().parse_args(
            ["fig2", "--users", "9", "--slots", "7", "--repetitions", "2", "--seed", "5"]
        )
        assert args.users == 9
        assert args.slots == 7
        assert args.repetitions == 2
        assert args.seed == 5

    def test_fig5_user_counts(self):
        args = build_parser().parse_args(
            ["fig5", "--user-counts", "5", "10", "--stay-bias", "2.5"]
        )
        assert args.user_counts == [5, 10]
        assert args.stay_bias == 2.5

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestExecution:
    def test_fig1_output(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "11.5" in out
        assert "9.6" in out
        assert "11.3" in out
        assert "9.5" in out

    def test_quickstart_tiny(self, capsys):
        assert main(["quickstart", "--users", "4", "--slots", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "offline-opt" in out
        assert "online-approx" in out

    def test_lookahead_tiny(self, capsys):
        assert main(["lookahead", "--users", "3", "--slots", "3", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "lookahead-1" in out
        assert "online-approx" in out

    def test_threshold_tiny(self, capsys):
        assert main(["threshold", "--slots", "3"]) == 0
        out = capsys.readouterr().out
        assert "online-greedy" in out
        assert "A=1" in out

    def test_certify_tiny(self, capsys):
        assert main(["certify", "--users", "3", "--slots", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "chain holds       : True" in out
        assert "certified ratio" in out

    def test_fig5_tiny(self, capsys):
        code = main(
            [
                "fig5",
                "--users", "3",
                "--slots", "2",
                "--repetitions", "1",
                "--user-counts", "3",
            ]
        )
        assert code == 0
        assert "Figure 5" in capsys.readouterr().out
