"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_no_arguments(self):
        args = build_parser().parse_args(["fig1"])
        assert args.command == "fig1"

    def test_scale_arguments(self):
        args = build_parser().parse_args(
            ["fig2", "--users", "9", "--slots", "7", "--repetitions", "2", "--seed", "5"]
        )
        assert args.users == 9
        assert args.slots == 7
        assert args.repetitions == 2
        assert args.seed == 5

    def test_fig5_user_counts(self):
        args = build_parser().parse_args(
            ["fig5", "--user-counts", "5", "10", "--stay-bias", "2.5"]
        )
        assert args.user_counts == [5, 10]
        assert args.stay_bias == 2.5

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_aggregation_flags(self):
        args = build_parser().parse_args(
            ["fig2", "--aggregate", "--lambda-buckets", "16", "--shards", "4"]
        )
        assert args.aggregate is True
        assert args.lambda_buckets == 16
        assert args.shards == 4

    def test_aggregation_flags_default_off(self):
        args = build_parser().parse_args(["fig2"])
        assert args.aggregate is False
        assert args.lambda_buckets is None
        assert args.shards is None


class TestAggregationScale:
    def _scale(self, argv):
        from repro.cli import _scale_from_args

        return _scale_from_args(build_parser().parse_args(argv))

    def test_aggregate_flag_enables_aggregation(self):
        scale = self._scale(["fig2", "--aggregate"])
        assert scale.aggregate is True
        assert scale.lambda_buckets == 8  # default bucket count

    def test_bucket_or_shard_flags_imply_aggregate(self):
        assert self._scale(["fig2", "--lambda-buckets", "4"]).aggregate is True
        assert self._scale(["fig2", "--shards", "2"]).aggregate is True

    def test_zero_buckets_maps_to_exact_mode(self):
        scale = self._scale(["fig2", "--lambda-buckets", "0"])
        assert scale.lambda_buckets is None  # exact-value buckets
        assert scale.aggregate is True

    def test_no_flags_leaves_aggregation_off(self):
        scale = self._scale(["fig2", "--users", "6"])
        assert scale.aggregate is False
        from repro.experiments.settings import aggregation_config

        assert aggregation_config(scale) is None

    def test_scale_maps_to_aggregation_config(self):
        from repro.experiments.settings import aggregation_config

        scale = self._scale(["fig2", "--lambda-buckets", "16", "--shards", "4"])
        config = aggregation_config(scale)
        assert config is not None
        assert config.lambda_buckets == 16
        assert config.shards == 4
        # Experiment drivers already pool across repetitions; the nested
        # shard solves stay serial.
        assert config.workers == 1

    def test_streaming_flags(self):
        args = build_parser().parse_args(
            ["fig2", "--telemetry", "run.jsonl", "--stream",
             "--ring-events", "128", "--watchdog"]
        )
        assert args.telemetry == "run.jsonl"
        assert args.stream is True
        assert args.ring_events == 128
        assert args.watchdog is True

    def test_watch_arguments(self):
        args = build_parser().parse_args(
            ["watch", "run.jsonl", "--interval", "0.1", "--once", "--strict",
             "--timeout", "2"]
        )
        assert args.manifest == "run.jsonl"
        assert args.interval == 0.1
        assert args.once and args.strict
        assert args.timeout == 2.0

    def test_export_arguments(self):
        args = build_parser().parse_args(
            ["export", "run.jsonl", "--trace", "t.json", "--openmetrics", "m.prom"]
        )
        assert args.manifest == "run.jsonl"
        assert args.trace == "t.json"
        assert args.openmetrics == "m.prom"


class TestExecution:
    def test_fig1_output(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "11.5" in out
        assert "9.6" in out
        assert "11.3" in out
        assert "9.5" in out

    def test_quickstart_tiny(self, capsys):
        assert main(["quickstart", "--users", "4", "--slots", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "offline-opt" in out
        assert "online-approx" in out

    def test_lookahead_tiny(self, capsys):
        assert main(["lookahead", "--users", "3", "--slots", "3", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "lookahead-1" in out
        assert "online-approx" in out

    def test_threshold_tiny(self, capsys):
        assert main(["threshold", "--slots", "3"]) == 0
        out = capsys.readouterr().out
        assert "online-greedy" in out
        assert "A=1" in out

    def test_certify_tiny(self, capsys):
        assert main(["certify", "--users", "3", "--slots", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "chain holds       : True" in out
        assert "certified ratio" in out

    def test_fig5_tiny(self, capsys):
        code = main(
            [
                "fig5",
                "--users", "3",
                "--slots", "2",
                "--repetitions", "1",
                "--user-counts", "3",
            ]
        )
        assert code == 0
        assert "Figure 5" in capsys.readouterr().out


class TestTelemetryModes:
    TINY = ["--users", "4", "--slots", "2", "--repetitions", "1"]

    def test_certify_streams_the_ratio_feed(self, tmp_path, capsys):
        from repro.telemetry import read_manifest

        path = tmp_path / "run.jsonl"
        argv = ["certify", "--users", "3", "--slots", "2", "--seed", "4",
                "--telemetry", str(path), "--stream"]
        assert main(argv) == 0
        capsys.readouterr()
        record = read_manifest(path)
        points = record.events_of_type("diag.ratio.point")
        assert len(points) == 2  # one per prefix slot
        assert all("ratio" in p and "bound" in p for p in points)

    def test_watchdog_without_stream_records_alerts_in_manifest(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.telemetry as telemetry_pkg
        from repro.telemetry import CertificateGapRule, read_manifest

        # Arm a certificate rule that trips on everything, so the tiny
        # buffered run provably evaluates rules and persists the alerts.
        monkeypatch.setattr(
            telemetry_pkg, "default_rules",
            lambda: (CertificateGapRule(tol=-1.0),),
        )
        path = tmp_path / "run.jsonl"
        argv = ["certify", "--users", "3", "--slots", "2", "--seed", "4",
                "--telemetry", str(path), "--watchdog"]
        assert main(argv) == 0
        capsys.readouterr()
        record = read_manifest(path)
        alerts = record.events_of_type("alert")
        assert alerts and all(a["rule"] == "certificate-gap" for a in alerts)

    def test_export_requires_an_output(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["fig2", *self.TINY, "--telemetry", str(path)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["export", str(path)])

    def test_export_writes_both_formats(self, tmp_path, capsys):
        import json as json_mod

        path = tmp_path / "run.jsonl"
        assert main(["fig2", *self.TINY, "--telemetry", str(path)]) == 0
        trace = tmp_path / "t.json"
        prom = tmp_path / "m.prom"
        argv = ["export", str(path), "--trace", str(trace),
                "--openmetrics", str(prom)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "chrome trace" in out and "openmetrics" in out
        assert json_mod.loads(trace.read_text())["traceEvents"]
        assert prom.read_text().endswith("# EOF\n")


class TestObservabilityFlags:
    TINY = ["--users", "4", "--slots", "2", "--repetitions", "1"]

    @staticmethod
    def _walk(spans):
        stack = list(spans)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.get("children", ()))

    def test_flags_parse_on_scale_commands(self):
        args = build_parser().parse_args(
            ["fig2", "--trace-context", "--profile", "--profile-hz", "7"]
        )
        assert args.trace_context and args.profile
        assert args.profile_hz == 7.0
        plain = build_parser().parse_args(["fig2"])
        assert not plain.trace_context and not plain.profile

    def test_flags_on_record_trace_ids_and_profiles(self, tmp_path, capsys):
        from repro.telemetry import read_manifest

        path = tmp_path / "run.jsonl"
        argv = ["fig2", *self.TINY, "--telemetry", str(path),
                "--trace-context", "--profile"]
        assert main(argv) == 0
        capsys.readouterr()
        record = read_manifest(path)
        assert record.events_of_type("prof.phases")
        assert record.events_of_type("prof.profile")
        roots = [n for n in record.spans if "span_id" in (n.get("meta") or {})]
        assert roots, "traced run recorded no span ids"
        trace_ids = {
            n["meta"]["trace_id"]
            for n in self._walk(record.spans)
            if "trace_id" in (n.get("meta") or {})
        }
        assert len(trace_ids) == 1  # one run, one trace

    def test_flags_off_leave_the_manifest_clean(self, tmp_path, capsys):
        from repro.telemetry import read_manifest

        path = tmp_path / "run.jsonl"
        assert main(["fig2", *self.TINY, "--telemetry", str(path)]) == 0
        capsys.readouterr()
        record = read_manifest(path)
        assert not [
            e for e in record.events
            if str(e.get("type", "")).startswith("prof.")
        ]
        for node in self._walk(record.spans):
            meta = node.get("meta") or {}
            assert "span_id" not in meta and "trace_id" not in meta

    def test_export_speedscope_from_a_profiled_manifest(self, tmp_path, capsys):
        import json as json_mod

        path = tmp_path / "run.jsonl"
        argv = ["fig2", *self.TINY, "--telemetry", str(path), "--profile"]
        assert main(argv) == 0
        out_path = tmp_path / "p.speedscope.json"
        assert main(["export", str(path), "--speedscope", str(out_path)]) == 0
        capsys.readouterr()
        doc = json_mod.loads(out_path.read_text())
        assert doc["profiles"]
        assert any(p["name"].startswith("phases") for p in doc["profiles"])

    def test_profile_subcommand_wraps_a_run(self, tmp_path, capsys):
        collapsed = tmp_path / "prof.folded"
        argv = ["profile", "--collapsed", str(collapsed),
                "--", "fig2", *self.TINY]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "phase totals" in out or "sampler" in out
        assert collapsed.exists() and collapsed.read_text().strip()
