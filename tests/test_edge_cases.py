"""Edge-case and failure-injection tests across the stack.

Degenerate weights, minimal systems, zero prices, and solver-failure
fallbacks — configurations a production deployment will eventually hit.
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    CostWeights,
    OfflineOptimal,
    OnlineGreedy,
    OnlineRegularizedAllocator,
    ProblemInstance,
    total_cost,
)
from repro.pricing.bandwidth import MigrationPrices
from repro.solvers.base import SolverError
from tests.conftest import make_tiny_instance


def override(instance: ProblemInstance, **kwargs) -> ProblemInstance:
    fields = {f.name: getattr(instance, f.name) for f in dataclasses.fields(instance)}
    fields.update(kwargs)
    return ProblemInstance(**fields)


class TestDegenerateWeights:
    def test_zero_dynamic_weight(self):
        """mu = 0: the regularizer terms vanish entirely from P2."""
        instance = make_tiny_instance(weights=CostWeights(static=1.0, dynamic=0.0))
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)
        # With no dynamic cost, per-slot static optimization is optimal:
        # greedy, approx, and offline all coincide in objective.
        offline = total_cost(OfflineOptimal().run(instance), instance)
        approx = total_cost(schedule, instance)
        assert approx == pytest.approx(offline, rel=1e-3)

    def test_zero_static_weight(self):
        """Static weight 0: only dynamic costs matter; never moving wins."""
        instance = make_tiny_instance(weights=CostWeights(static=0.0, dynamic=1.0))
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)
        offline = total_cost(OfflineOptimal().run(instance), instance)
        approx = total_cost(schedule, instance)
        # Everyone pays at least the initial provisioning; the online
        # algorithm should not pay much more than that.
        assert approx <= 2.0 * offline + 1e-6


class TestMinimalSystems:
    def single_cloud_instance(self, num_slots=3):
        return ProblemInstance(
            workloads=np.array([2.0, 3.0]),
            capacities=np.array([8.0]),
            op_prices=np.linspace(1.0, 2.0, num_slots)[:, None],
            reconfig_prices=np.array([1.0]),
            migration_prices=MigrationPrices(out=np.array([0.5]), into=np.array([0.5])),
            inter_cloud_delay=np.zeros((1, 1)),
            attachment=np.zeros((num_slots, 2), dtype=int),
            access_delay=np.zeros((num_slots, 2)),
        )

    def test_single_cloud(self):
        """One cloud: every algorithm is forced to the same allocation."""
        instance = self.single_cloud_instance()
        offline = total_cost(OfflineOptimal().run(instance), instance)
        greedy = total_cost(OnlineGreedy().run(instance), instance)
        approx = total_cost(OnlineRegularizedAllocator().run(instance), instance)
        assert greedy == pytest.approx(offline, rel=1e-6)
        assert approx == pytest.approx(offline, rel=1e-3)

    def test_single_user_single_slot(self):
        instance = ProblemInstance(
            workloads=np.array([1.0]),
            capacities=np.array([1.0, 1.0]),
            op_prices=np.array([[1.0, 2.0]]),
            reconfig_prices=np.array([1.0, 1.0]),
            migration_prices=MigrationPrices(
                out=np.array([0.5, 0.5]), into=np.array([0.5, 0.5])
            ),
            inter_cloud_delay=np.array([[0.0, 1.0], [1.0, 0.0]]),
            attachment=np.array([[0]]),
            access_delay=np.zeros((1, 1)),
        )
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)
        # Cheap cloud 0 (op 1 < 2, zero delay) takes (almost) everything.
        assert schedule.x[0, 0, 0] > 0.9

    def test_exact_capacity_no_overprovisioning(self):
        """Total capacity == total workload: P2's strict interior is empty;
        the auto backend falls back and the LP baselines still work."""
        instance = ProblemInstance(
            workloads=np.array([2.0, 2.0]),
            capacities=np.array([2.0, 2.0]),
            op_prices=np.ones((2, 2)),
            reconfig_prices=np.array([1.0, 1.0]),
            migration_prices=MigrationPrices(
                out=np.array([0.5, 0.5]), into=np.array([0.5, 0.5])
            ),
            inter_cloud_delay=np.array([[0.0, 1.0], [1.0, 0.0]]),
            attachment=np.zeros((2, 2), dtype=int),
            access_delay=np.zeros((2, 2)),
        )
        offline = OfflineOptimal().run(instance)
        offline.require_feasible(instance, tol=1e-6)
        greedy = OnlineGreedy().run(instance)
        greedy.require_feasible(instance, tol=1e-6)


class TestZeroPrices:
    def test_free_migration(self):
        base = make_tiny_instance()
        instance = override(
            base,
            migration_prices=MigrationPrices(out=np.zeros(3), into=np.zeros(3)),
        )
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)

    def test_free_reconfiguration(self):
        base = make_tiny_instance()
        instance = override(base, reconfig_prices=np.zeros(3))
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)

    def test_all_dynamic_prices_zero(self):
        base = make_tiny_instance()
        instance = override(
            base,
            reconfig_prices=np.zeros(3),
            migration_prices=MigrationPrices(out=np.zeros(3), into=np.zeros(3)),
        )
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)
        # No dynamic prices: the online optimum matches offline slot-wise.
        offline = total_cost(OfflineOptimal().run(instance), instance)
        assert total_cost(schedule, instance) == pytest.approx(offline, rel=1e-3)


class TestSolverFailureInjection:
    def test_allocator_surfaces_solver_error(self, tiny_instance):
        class AlwaysFails:
            name = "always-fails"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("injected failure")

        algorithm = OnlineRegularizedAllocator(backend=AlwaysFails())
        with pytest.raises(SolverError, match="injected"):
            algorithm.run(tiny_instance)

    def test_fallback_recovers_from_flaky_primary(self, tiny_instance):
        from repro.solvers.registry import FallbackBackend, get_backend

        calls = {"n": 0}

        class Flaky:
            name = "flaky"

            def solve(self, program, *, tol=1e-8):
                calls["n"] += 1
                if calls["n"] % 2 == 1:
                    raise SolverError("flaky failure")
                return get_backend("ipm").solve(program, tol=tol)

        backend = FallbackBackend(Flaky(), get_backend("scipy"))
        schedule = OnlineRegularizedAllocator(backend=backend).run(tiny_instance)
        schedule.require_feasible(tiny_instance, tol=1e-5)
        assert calls["n"] == tiny_instance.num_slots
