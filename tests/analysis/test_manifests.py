"""Manifest cost verification on parallel (multi-worker) sweeps.

A ``--workers 4`` run merges four per-cell registries into one manifest;
the ``(cell, run)`` keying must keep every run's slot events attached to
its own ``run_end`` so the per-slot sums still reconcile to 1e-9.
"""

from __future__ import annotations

import pytest

from repro.analysis import assert_manifest_costs, load_manifest, verify_manifest_costs
from repro.cli import main

TINY = ["--users", "4", "--slots", "2", "--repetitions", "2"]


@pytest.fixture(scope="module")
def pooled_manifest(tmp_path_factory):
    path = tmp_path_factory.mktemp("pooled") / "run.jsonl"
    assert main(["fig2", *TINY, "--workers", "4", "--telemetry", str(path)]) == 0
    return load_manifest(path)


class TestPooledManifestCosts:
    def test_every_run_reconciles(self, pooled_manifest):
        checks = verify_manifest_costs(pooled_manifest)
        assert checks, "expected runs in the pooled manifest"
        for check in checks:
            assert check.slots == 2
            assert check.ok(tol=1e-9), (check.key, check.deviation)
        assert_manifest_costs(pooled_manifest, tol=1e-9)

    def test_runs_come_from_distinct_cells(self, pooled_manifest):
        keys = {check.key for check in verify_manifest_costs(pooled_manifest)}
        cells = {cell for cell, _ in keys}
        assert len(keys) == len(verify_manifest_costs(pooled_manifest))
        assert len(cells) > 1  # repetitions spread over several sweep cells

    def test_pooled_checks_match_serial(self, pooled_manifest, tmp_path):
        path = tmp_path / "serial.jsonl"
        assert main(["fig2", *TINY, "--workers", "1", "--telemetry", str(path)]) == 0
        serial = {
            check.key: check.summed
            for check in verify_manifest_costs(load_manifest(path))
        }
        pooled = {
            check.key: check.summed
            for check in verify_manifest_costs(pooled_manifest)
        }
        assert pooled.keys() == serial.keys()
        for key, summed in pooled.items():
            for name, value in summed.items():
                assert value == pytest.approx(serial[key][name], abs=1e-12)
