"""Tests for dual-price extraction."""

import numpy as np
import pytest

from repro.analysis.prices import DualPriceSeries, extract_dual_prices
from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.scenario import Scenario
from repro.solvers.registry import get_backend


@pytest.fixture(scope="module")
def solved_allocator():
    instance = Scenario(num_users=6, num_slots=4).build(seed=13)
    algorithm = OnlineRegularizedAllocator(backend=get_backend("ipm"))
    algorithm.run(instance)
    return algorithm, instance


class TestExtraction:
    def test_shapes(self, solved_allocator):
        algorithm, instance = solved_allocator
        series = extract_dual_prices(algorithm)
        assert series.user_prices.shape == (instance.num_slots, instance.num_users)
        assert series.congestion_rents.shape == (
            instance.num_slots,
            instance.num_clouds,
        )
        assert series.num_slots == instance.num_slots

    def test_prices_nonnegative(self, solved_allocator):
        algorithm, _ = solved_allocator
        series = extract_dual_prices(algorithm)
        assert np.all(series.user_prices >= 0)
        assert np.all(series.congestion_rents >= 0)

    def test_user_prices_positive_where_demand_binds(self, solved_allocator):
        # Demand constraints bind at the optimum (prices are positive), so
        # every user carries a positive marginal cost in every slot.
        algorithm, _ = solved_allocator
        series = extract_dual_prices(algorithm)
        assert series.user_prices.min() > 1e-6

    def test_congestion_only_where_capacity_binds(self, solved_allocator):
        algorithm, instance = solved_allocator
        series = extract_dual_prices(algorithm)
        schedule = algorithm.run(instance)  # rerun to obtain the schedule
        loads = schedule.cloud_totals()
        capacities = np.asarray(instance.capacities)
        # Wherever the rent is material, the cloud is (nearly) full.
        material = series.congestion_rents > 0.05
        utilization = loads / capacities[None, :]
        assert np.all(utilization[material] > 0.95)

    def test_unrun_allocator_rejected(self):
        with pytest.raises(ValueError, match="no recorded solves"):
            extract_dual_prices(OnlineRegularizedAllocator())


class TestSeriesHelpers:
    def make_series(self):
        user_prices = np.array([[1.0, 2.0], [3.0, 4.0]])
        rents = np.array([[0.0, 0.5, 0.0], [0.0, 0.0, 2.0]])
        return DualPriceSeries(user_prices=user_prices, congestion_rents=rents)

    def test_mean_user_price(self):
        series = self.make_series()
        assert np.allclose(series.mean_user_price(), [2.0, 3.0])

    def test_peak_congestion(self):
        slot, cloud, rent = self.make_series().peak_congestion()
        assert (slot, cloud) == (1, 2)
        assert rent == pytest.approx(2.0)

    def test_congested_mask(self):
        mask = self.make_series().congested_clouds(threshold=0.4)
        assert mask.sum() == 2
