"""Tests for ratio statistics (confidence intervals, paired comparisons)."""

import numpy as np
import pytest

from repro.analysis.ratios import (
    paired_improvement,
    ratio_confidence_interval,
    ratio_samples,
    win_rate,
)
from tests.simulation.test_results import make_comparison


def comparisons_with_ratios(ratios):
    """One comparison per ratio value, baseline cost fixed at 10."""
    return [
        make_comparison({"offline-opt": 10.0, "alg": 10.0 * r, "ref": 12.0})
        for r in ratios
    ]


class TestRatioSamples:
    def test_values(self):
        comparisons = comparisons_with_ratios([1.1, 1.3])
        assert np.allclose(ratio_samples(comparisons, "alg"), [1.1, 1.3])


class TestConfidenceInterval:
    def test_point_estimate(self):
        estimate = ratio_confidence_interval(
            comparisons_with_ratios([1.2, 1.4, 1.0]), "alg"
        )
        assert estimate.mean == pytest.approx(1.2)
        assert estimate.lower < estimate.mean < estimate.upper
        assert estimate.num_samples == 3

    def test_single_sample_degenerates(self):
        estimate = ratio_confidence_interval(comparisons_with_ratios([1.5]), "alg")
        assert estimate.lower == estimate.mean == estimate.upper == pytest.approx(1.5)
        assert estimate.std == 0.0

    def test_wider_at_higher_confidence(self):
        comparisons = comparisons_with_ratios([1.0, 1.2, 1.4, 1.1])
        narrow = ratio_confidence_interval(comparisons, "alg", confidence=0.80)
        wide = ratio_confidence_interval(comparisons, "alg", confidence=0.99)
        assert wide.upper - wide.lower > narrow.upper - narrow.lower

    def test_contains_true_mean_usually(self):
        # Frequentist sanity: with many repetitions of a known distribution,
        # the 95% interval contains the true mean most of the time.
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(40):
            ratios = 1.2 + 0.1 * rng.standard_normal(8)
            estimate = ratio_confidence_interval(
                comparisons_with_ratios(list(ratios)), "alg"
            )
            hits += estimate.lower <= 1.2 <= estimate.upper
        assert hits >= 30

    def test_validation(self):
        with pytest.raises(ValueError):
            ratio_confidence_interval(comparisons_with_ratios([1.0]), "alg", confidence=1.5)
        with pytest.raises(ValueError):
            ratio_confidence_interval([], "alg")


class TestPairedImprovement:
    def test_values(self):
        comparisons = comparisons_with_ratios([1.0, 1.1])
        # alg costs 10, 11; ref costs 12 in both: improvements 2/12, 1/12.
        mean, std = paired_improvement(comparisons, "alg", "ref")
        assert mean == pytest.approx((2 / 12 + 1 / 12) / 2)
        assert std > 0

    def test_empty(self):
        with pytest.raises(ValueError):
            paired_improvement([], "alg", "ref")


class TestWinRate:
    def test_values(self):
        comparisons = comparisons_with_ratios([1.0, 1.3])
        # alg costs 10 (<12: win) then 13 (>12: loss).
        assert win_rate(comparisons, "alg", "ref") == pytest.approx(0.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            win_rate([], "alg", "ref")
