"""Tests for cost timelines and regret curves."""

import numpy as np
import pytest

from repro.analysis.timelines import (
    churn_timeline,
    cost_shares,
    cumulative_cost,
    regret_curve,
)
from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.simulation.engine import run_algorithm


@pytest.fixture(scope="module")
def runs(small_instance):
    return {
        "offline": run_algorithm(OfflineOptimal(), small_instance),
        "greedy": run_algorithm(OnlineGreedy(), small_instance),
    }


class TestCumulativeCost:
    def test_monotone_nondecreasing(self, runs):
        curve = cumulative_cost(runs["greedy"].breakdown)
        assert np.all(np.diff(curve) >= -1e-9)

    def test_final_value_is_total(self, runs):
        curve = cumulative_cost(runs["greedy"].breakdown)
        assert curve[-1] == pytest.approx(runs["greedy"].total_cost)


class TestRegret:
    def test_final_regret_matches_ratio(self, runs):
        regret = regret_curve(runs["greedy"], runs["offline"])
        expected = runs["greedy"].total_cost - runs["offline"].total_cost
        assert regret[-1] == pytest.approx(expected)
        assert regret[-1] >= -1e-6  # offline is optimal

    def test_horizon_mismatch(self, runs, tiny_instance):
        other = run_algorithm(OnlineGreedy(), tiny_instance)
        with pytest.raises(ValueError):
            regret_curve(runs["greedy"], other)


class TestCostShares:
    def test_sums_to_one(self, runs):
        shares = cost_shares(runs["greedy"].breakdown)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in shares.values())

    def test_component_names(self, runs):
        assert set(cost_shares(runs["greedy"].breakdown)) == {
            "operation",
            "service_quality",
            "reconfiguration",
            "migration",
        }


class TestChurn:
    def test_first_slot_is_initial_provisioning(self, runs):
        churn = churn_timeline(runs["greedy"])
        assert churn[0] == pytest.approx(runs["greedy"].schedule.x[0].sum())

    def test_nonnegative(self, runs):
        assert np.all(churn_timeline(runs["greedy"]) >= 0.0)

    def test_static_schedule_has_zero_churn_after_start(self, small_instance):
        from repro.baselines import StaticAllocation

        run = run_algorithm(StaticAllocation(), small_instance)
        churn = churn_timeline(run)
        assert np.allclose(churn[1:], 0.0)
