"""Tests for the receding-horizon (lookahead) baseline."""

import numpy as np
import pytest

from repro.baselines.greedy import OnlineGreedy
from repro.baselines.lookahead import RecedingHorizon
from repro.baselines.offline import OfflineOptimal
from repro.core.costs import total_cost


class TestRecedingHorizon:
    def test_window_one_equals_greedy(self, tiny_instance):
        lookahead = RecedingHorizon(window=1).run(tiny_instance)
        greedy = OnlineGreedy().run(tiny_instance)
        assert total_cost(lookahead, tiny_instance) == pytest.approx(
            total_cost(greedy, tiny_instance), rel=1e-6
        )

    def test_full_window_equals_offline(self, tiny_instance):
        lookahead = RecedingHorizon(window=tiny_instance.num_slots).run(tiny_instance)
        offline = OfflineOptimal().run(tiny_instance)
        assert total_cost(lookahead, tiny_instance) == pytest.approx(
            total_cost(offline, tiny_instance), rel=1e-6
        )

    def test_window_beyond_horizon_equals_offline(self, tiny_instance):
        lookahead = RecedingHorizon(window=99).run(tiny_instance)
        offline = OfflineOptimal().run(tiny_instance)
        assert total_cost(lookahead, tiny_instance) == pytest.approx(
            total_cost(offline, tiny_instance), rel=1e-6
        )

    def test_monotone_in_window_on_average(self, tiny_instance):
        """More lookahead never hurts much: W=T <= W=2 <= W=1 within noise.

        Receding horizon is not guaranteed monotone per instance, but the
        endpoints are exact; check the endpoints bracket the middle up to a
        small slack.
        """
        cost_1 = total_cost(RecedingHorizon(window=1).run(tiny_instance), tiny_instance)
        cost_2 = total_cost(RecedingHorizon(window=2).run(tiny_instance), tiny_instance)
        cost_t = total_cost(
            RecedingHorizon(window=tiny_instance.num_slots).run(tiny_instance),
            tiny_instance,
        )
        assert cost_t <= cost_2 + 1e-6 or cost_t <= cost_1 + 1e-6
        assert cost_t <= cost_1 + 1e-6

    def test_feasible(self, tiny_instance):
        schedule = RecedingHorizon(window=3).run(tiny_instance)
        schedule.require_feasible(tiny_instance, tol=1e-6)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RecedingHorizon(window=0)

    def test_name(self):
        assert RecedingHorizon(window=4).name == "lookahead-4"

    def test_solve_window_shape(self, tiny_instance):
        shape = (tiny_instance.num_clouds, tiny_instance.num_users)
        plan = RecedingHorizon(window=3).solve_window(
            tiny_instance, 0, np.zeros(shape)
        )
        assert plan.shape == (3, *shape)

    def test_window_clipped_at_horizon_end(self, tiny_instance):
        shape = (tiny_instance.num_clouds, tiny_instance.num_users)
        plan = RecedingHorizon(window=3).solve_window(
            tiny_instance, tiny_instance.num_slots - 1, np.zeros(shape)
        )
        assert plan.shape == (1, *shape)
