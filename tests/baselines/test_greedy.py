"""Tests for the online-greedy baseline."""

import numpy as np
import pytest

from repro.baselines.greedy import OnlineGreedy
from repro.baselines.offline import OfflineOptimal
from repro.core.costs import total_cost
from repro.core.problem import ProblemInstance
from repro.pricing.bandwidth import MigrationPrices
from tests.conftest import make_tiny_instance


def fig1a_like_instance(delay_cost: float, path: list[int]) -> ProblemInstance:
    """A two-cloud, one-user instance mirroring the Figure 1 examples.

    Unlike the paper's worked example, slot 0 charges initial provisioning
    (the x_{i,j,0} = 0 convention) — identically for every algorithm.
    """
    num_slots = len(path)
    return ProblemInstance(
        workloads=np.array([1.0]),
        capacities=np.array([2.0, 2.0]),
        op_prices=np.ones((num_slots, 2)),
        reconfig_prices=np.array([1.0, 1.0]),
        migration_prices=MigrationPrices(
            out=np.array([0.5, 0.5]), into=np.array([0.5, 0.5])
        ),
        inter_cloud_delay=np.array([[0.0, delay_cost], [delay_cost, 0.0]]),
        attachment=np.array([[p] for p in path]),
        access_delay=np.full((num_slots, 1), 1.5),
    )


class TestGreedyBehaviour:
    def test_aggressive_on_fig1a(self):
        # Paper example (a): delay 2.1, user path A-B-A. Greedy chases the
        # user both times; the optimum keeps the workload parked at A.
        instance = fig1a_like_instance(2.1, [0, 1, 0])
        greedy = OnlineGreedy().run(instance)
        offline = OfflineOptimal().run(instance)
        # Greedy's allocation follows the user (workload at cloud 1 in slot 1).
        assert greedy.x[1, 1, 0] == pytest.approx(1.0, abs=1e-6)
        # The optimum keeps everything at cloud 0 the whole time.
        assert np.allclose(offline.x[:, 0, 0], 1.0, atol=1e-6)
        assert total_cost(greedy, instance) > total_cost(offline, instance) + 0.5

    def test_conservative_on_fig1b(self):
        # Paper example (b): delay 1.9, user path A-B-B. Greedy never moves;
        # the optimum migrates to B at slot 1.
        instance = fig1a_like_instance(1.9, [0, 1, 1])
        greedy = OnlineGreedy().run(instance)
        offline = OfflineOptimal().run(instance)
        assert np.allclose(greedy.x[:, 0, 0], 1.0, atol=1e-6)
        assert offline.x[2, 1, 0] == pytest.approx(1.0, abs=1e-6)
        assert total_cost(greedy, instance) > total_cost(offline, instance) + 0.5

    def test_feasible(self, tiny_instance):
        OnlineGreedy().run(tiny_instance).require_feasible(tiny_instance, tol=1e-6)

    def test_never_beats_offline(self, tiny_instance):
        greedy_cost = total_cost(OnlineGreedy().run(tiny_instance), tiny_instance)
        offline_cost = total_cost(OfflineOptimal().run(tiny_instance), tiny_instance)
        assert greedy_cost >= offline_cost - 1e-6

    def test_matches_offline_on_single_slot(self):
        # With one slot there is no future: greedy IS optimal.
        instance = make_tiny_instance(num_slots=1)
        greedy_cost = total_cost(OnlineGreedy().run(instance), instance)
        offline_cost = total_cost(OfflineOptimal().run(instance), instance)
        assert greedy_cost == pytest.approx(offline_cost, rel=1e-6)

    def test_deterministic(self, tiny_instance):
        a = OnlineGreedy().run(tiny_instance)
        b = OnlineGreedy().run(tiny_instance)
        assert np.allclose(a.x, b.x)

    def test_solve_slot_uses_previous_allocation(self, tiny_instance):
        shape = (tiny_instance.num_clouds, tiny_instance.num_users)
        cold = OnlineGreedy.solve_slot(tiny_instance, 1, np.zeros(shape))
        warm = OnlineGreedy.solve_slot(tiny_instance, 1, cold)
        # Starting from its own decision, greedy has no reason to move.
        assert np.allclose(warm, cold, atol=1e-6)
