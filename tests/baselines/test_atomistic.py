"""Tests for the atomistic baselines (perf-opt / oper-opt / stat-opt)."""

import dataclasses

import numpy as np
import pytest

from repro.baselines.atomistic import OperOpt, PerfOpt, StatOpt, solve_static_slot
from repro.baselines.offline import OfflineOptimal
from repro.core.costs import (
    operation_cost,
    service_quality_cost,
    total_cost,
)
from repro.core.problem import ProblemInstance
from tests.conftest import make_tiny_instance


class TestSolveStaticSlot:
    def test_respects_demand_and_capacity(self, tiny_instance):
        prices = tiny_instance.static_prices(0)
        x = solve_static_slot(tiny_instance, prices)
        assert np.all(x.sum(axis=0) >= np.asarray(tiny_instance.workloads) - 1e-6)
        assert np.all(x.sum(axis=1) <= np.asarray(tiny_instance.capacities) + 1e-6)

    def test_picks_cheapest_cloud(self, tiny_instance):
        # With uniform prices except one free cloud, everything lands there
        # (up to its capacity).
        prices = np.ones((tiny_instance.num_clouds, tiny_instance.num_users))
        prices[1, :] = 0.0
        x = solve_static_slot(tiny_instance, prices)
        assert x.sum(axis=1)[1] == pytest.approx(
            min(tiny_instance.capacities[1], tiny_instance.total_workload)
        )


class TestBaselineObjectives:
    def test_perf_opt_minimizes_sq(self, tiny_instance):
        """perf-opt's per-slot service-quality cost is minimal among all
        the baselines (it optimizes exactly that)."""
        perf = PerfOpt().run(tiny_instance)
        stat = StatOpt().run(tiny_instance)
        oper = OperOpt().run(tiny_instance)
        sq_perf = service_quality_cost(perf, tiny_instance).sum()
        assert sq_perf <= service_quality_cost(stat, tiny_instance).sum() + 1e-6
        assert sq_perf <= service_quality_cost(oper, tiny_instance).sum() + 1e-6

    def test_oper_opt_minimizes_op(self, tiny_instance):
        oper = OperOpt().run(tiny_instance)
        perf = PerfOpt().run(tiny_instance)
        op_oper = operation_cost(oper, tiny_instance).sum()
        assert op_oper <= operation_cost(perf, tiny_instance).sum() + 1e-6

    def test_stat_opt_minimizes_static_sum(self, tiny_instance):
        stat = StatOpt().run(tiny_instance)
        perf = PerfOpt().run(tiny_instance)
        oper = OperOpt().run(tiny_instance)

        def static(schedule):
            return (
                operation_cost(schedule, tiny_instance).sum()
                + service_quality_cost(schedule, tiny_instance).sum()
            )

        assert static(stat) <= static(perf) + 1e-6
        assert static(stat) <= static(oper) + 1e-6

    def test_perf_opt_ignores_operation_prices(self):
        # Same instance, different op prices: perf-opt's decision unchanged.
        base = make_tiny_instance(seed=1)
        fields = {f.name: getattr(base, f.name) for f in dataclasses.fields(base)}
        fields["op_prices"] = np.asarray(base.op_prices) * 13.0
        scaled = ProblemInstance(**fields)
        a = PerfOpt().run(base)
        b = PerfOpt().run(scaled)
        assert np.allclose(a.x, b.x, atol=1e-6)

    def test_all_feasible(self, tiny_instance):
        for algorithm in (PerfOpt(), OperOpt(), StatOpt()):
            schedule = algorithm.run(tiny_instance)
            schedule.require_feasible(tiny_instance, tol=1e-6)

    def test_names(self):
        assert PerfOpt().name == "perf-opt"
        assert OperOpt().name == "oper-opt"
        assert StatOpt().name == "stat-opt"

    def test_never_beat_offline_on_total(self, tiny_instance):
        offline_cost = total_cost(OfflineOptimal().run(tiny_instance), tiny_instance)
        for algorithm in (PerfOpt(), OperOpt(), StatOpt()):
            cost = total_cost(algorithm.run(tiny_instance), tiny_instance)
            assert cost >= offline_cost - 1e-6
