"""Tests for the periodic-rebalance baseline."""

import numpy as np
import pytest

from repro.baselines.atomistic import StatOpt
from repro.baselines.periodic import PeriodicRebalance
from repro.baselines.static import StaticAllocation
from repro.core.costs import total_cost


class TestPeriodicRebalance:
    def test_period_one_equals_stat_opt(self, tiny_instance):
        periodic = PeriodicRebalance(period=1).run(tiny_instance)
        stat = StatOpt().run(tiny_instance)
        assert total_cost(periodic, tiny_instance) == pytest.approx(
            total_cost(stat, tiny_instance), rel=1e-6
        )

    def test_period_beyond_horizon_equals_static(self, tiny_instance):
        periodic = PeriodicRebalance(period=99).run(tiny_instance)
        static = StaticAllocation().run(tiny_instance)
        assert total_cost(periodic, tiny_instance) == pytest.approx(
            total_cost(static, tiny_instance), rel=1e-6
        )

    def test_holds_between_rebalances(self, tiny_instance):
        schedule = PeriodicRebalance(period=2).run(tiny_instance)
        for t in range(tiny_instance.num_slots):
            if t % 2 == 1:
                assert np.array_equal(schedule.x[t], schedule.x[t - 1])

    def test_feasible(self, tiny_instance):
        PeriodicRebalance(period=3).run(tiny_instance).require_feasible(
            tiny_instance, tol=1e-6
        )

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicRebalance(period=0)

    def test_name(self):
        assert PeriodicRebalance(period=5).name == "periodic-5"
