"""Tests for the offline-opt full-horizon LP."""

import numpy as np
import pytest

from repro.baselines.offline import OfflineOptimal
from repro.core.costs import total_cost
from repro.core.problem import CostWeights, ProblemInstance
from repro.pricing.bandwidth import MigrationPrices
from tests.conftest import make_tiny_instance


def single_cloud_instance() -> ProblemInstance:
    """One cloud, one user: the optimum is forced and hand-computable."""
    return ProblemInstance(
        workloads=np.array([2.0]),
        capacities=np.array([5.0]),
        op_prices=np.array([[1.0], [2.0]]),
        reconfig_prices=np.array([0.5]),
        migration_prices=MigrationPrices(out=np.array([0.1]), into=np.array([0.3])),
        inter_cloud_delay=np.zeros((1, 1)),
        attachment=np.zeros((2, 1), dtype=int),
        access_delay=np.zeros((2, 1)),
    )


class TestOfflineOptimal:
    def test_single_cloud_forced_solution(self):
        instance = single_cloud_instance()
        schedule = OfflineOptimal().run(instance)
        # The only feasible choice is x = 2 in both slots.
        assert np.allclose(schedule.x, 2.0)
        # op = 2*1 + 2*2 = 6; rc = 0.5*2 slot 1 only; mg = 0.3*2 slot 1 only.
        assert total_cost(schedule, instance) == pytest.approx(6.0 + 1.0 + 0.6)

    def test_optimal_cost_matches_schedule_cost(self, tiny_instance):
        offline = OfflineOptimal()
        schedule = offline.run(tiny_instance)
        # The LP objective (plus the access-delay constant) equals the cost
        # model's evaluation of the returned schedule: the linearization of
        # the (.)+ terms is exact at the optimum.
        assert offline.optimal_cost(tiny_instance) == pytest.approx(
            total_cost(schedule, tiny_instance), rel=1e-6
        )

    def test_feasible(self, tiny_instance):
        schedule = OfflineOptimal().run(tiny_instance)
        schedule.require_feasible(tiny_instance, tol=1e-6)

    def test_beats_any_random_feasible_schedule(self, tiny_instance):
        from repro.core.allocation import AllocationSchedule
        from tests.conftest import random_schedule

        optimal = total_cost(OfflineOptimal().run(tiny_instance), tiny_instance)
        for seed in range(5):
            candidate = AllocationSchedule(random_schedule(tiny_instance, seed=seed))
            assert optimal <= total_cost(candidate, tiny_instance) + 1e-6

    def test_respects_weights(self):
        # With a huge dynamic weight the optimum avoids reallocation; with
        # zero dynamic weight it re-optimizes every slot independently.
        static_only = make_tiny_instance(weights=CostWeights(static=1.0, dynamic=0.0))
        frozen = make_tiny_instance(weights=CostWeights(static=1.0, dynamic=50.0))
        x_static = OfflineOptimal().run(static_only)
        x_frozen = OfflineOptimal().run(frozen)
        churn_static = np.abs(np.diff(x_static.x, axis=0)).sum()
        churn_frozen = np.abs(np.diff(x_frozen.x, axis=0)).sum()
        assert churn_frozen <= churn_static + 1e-9

    def test_lp_dimensions(self, tiny_instance):
        builder = OfflineOptimal.build_lp(tiny_instance)
        t, i, j = (
            tiny_instance.num_slots,
            tiny_instance.num_clouds,
            tiny_instance.num_users,
        )
        # x + u + m_in + m_out variable blocks.
        assert builder.num_variables == t * i * j * 3 + t * i
