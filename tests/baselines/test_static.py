"""Tests for the decide-once static baseline."""

import numpy as np

from repro.baselines.offline import OfflineOptimal
from repro.baselines.static import StaticAllocation
from repro.core.costs import migration_cost, reconfiguration_cost, total_cost


class TestStaticAllocation:
    def test_constant_over_time(self, tiny_instance):
        schedule = StaticAllocation().run(tiny_instance)
        for t in range(1, schedule.num_slots):
            assert np.array_equal(schedule.x[t], schedule.x[0])

    def test_feasible(self, tiny_instance):
        StaticAllocation().run(tiny_instance).require_feasible(tiny_instance, tol=1e-6)

    def test_no_dynamic_cost_after_first_slot(self, tiny_instance):
        schedule = StaticAllocation().run(tiny_instance)
        assert np.allclose(reconfiguration_cost(schedule, tiny_instance)[1:], 0.0)
        assert np.allclose(migration_cost(schedule, tiny_instance)[1:], 0.0)

    def test_never_beats_offline(self, tiny_instance):
        static_cost = total_cost(StaticAllocation().run(tiny_instance), tiny_instance)
        offline_cost = total_cost(OfflineOptimal().run(tiny_instance), tiny_instance)
        assert static_cost >= offline_cost - 1e-6

    def test_name(self):
        assert StaticAllocation().name == "static"
