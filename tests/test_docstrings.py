"""Documentation coverage: every public item carries a docstring.

Deliverable (e) of the reproduction: "doc comments on every public item".
This meta-test walks the package and enforces it, so documentation cannot
rot silently.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_have_docstrings(module):
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; checked at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    missing.append(f"{name}.{method_name}")
    assert not missing, f"{module.__name__}: undocumented public items: {missing}"
