"""End-to-end integration tests: the theorems, on real scenario draws.

These tests cross multiple subsystems at once (scenario -> instance ->
algorithms -> costs -> analysis) and encode the paper's headline guarantees
as executable checks:

* Theorem 1 — the online trajectory is feasible;
* Theorem 2 — the empirical ratio respects the parameterized bound;
* Lemma 1   — P1 and P0 stay within the transformation constant;
* sanity    — offline-opt lower-bounds every algorithm, greedy equals
  lookahead-1, streaming equals batch.
"""

import numpy as np
import pytest

from repro import (
    CostWeights,
    OfflineOptimal,
    OnlineGreedy,
    OnlineRegularizedAllocator,
    OperOpt,
    PerfOpt,
    Scenario,
    StatOpt,
    StaticAllocation,
    compare_algorithms,
    competitive_ratio_bound,
    total_cost,
)
from repro.baselines import PeriodicRebalance, RecedingHorizon
from repro.core.transformation import lemma1_gap
from repro.mobility import RandomWalkMobility
from repro.topology import rome_metro_topology


@pytest.fixture(scope="module")
def instances():
    """A few structurally different seeded instances."""
    topo = rome_metro_topology()
    return {
        "taxi": Scenario(num_users=8, num_slots=5).build(seed=21),
        "walk": Scenario(
            topology=topo,
            mobility=RandomWalkMobility(topo),
            num_users=8,
            num_slots=5,
        ).build(seed=22),
        "heavy-dynamic": Scenario(
            num_users=6, num_slots=5, weights=CostWeights.from_mu(5.0)
        ).build(seed=23),
    }


ALL_ALGORITHMS = [
    OfflineOptimal(),
    OnlineGreedy(),
    OnlineRegularizedAllocator(),
    PerfOpt(),
    OperOpt(),
    StatOpt(),
    StaticAllocation(),
    RecedingHorizon(window=2),
    PeriodicRebalance(period=2),
]


class TestOfflineDominance:
    @pytest.mark.parametrize("key", ["taxi", "walk", "heavy-dynamic"])
    def test_offline_lower_bounds_everything(self, instances, key):
        instance = instances[key]
        offline_cost = total_cost(OfflineOptimal().run(instance), instance)
        for algorithm in ALL_ALGORITHMS[1:]:
            cost = total_cost(algorithm.run(instance), instance)
            assert cost >= offline_cost - 1e-6, (key, algorithm.name)


class TestTheorem1Feasibility:
    @pytest.mark.parametrize("seed", range(6))
    def test_online_trajectory_feasible_across_seeds(self, seed):
        instance = Scenario(num_users=6, num_slots=4).build(seed=100 + seed)
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)

    @pytest.mark.parametrize("mu", [0.01, 1.0, 100.0])
    def test_feasible_across_weights(self, mu):
        instance = Scenario(
            num_users=6, num_slots=4, weights=CostWeights.from_mu(mu)
        ).build(seed=3)
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)

    @pytest.mark.parametrize("eps", [1e-3, 1.0, 1e3])
    def test_feasible_across_eps(self, eps):
        instance = Scenario(num_users=6, num_slots=4).build(seed=4)
        schedule = OnlineRegularizedAllocator(eps1=eps, eps2=eps).run(instance)
        schedule.require_feasible(instance, tol=1e-5)


class TestTheorem2Bound:
    @pytest.mark.parametrize("key", ["taxi", "walk", "heavy-dynamic"])
    def test_empirical_ratio_below_parameterized_bound(self, instances, key):
        instance = instances[key]
        comparison = compare_algorithms(
            [OfflineOptimal(), OnlineRegularizedAllocator()], instance
        )
        empirical = comparison.ratio("online-approx")
        bound = competitive_ratio_bound(instance, 1.0, 1.0)
        # The bound is loose (gamma scales with C ln C), but it is the
        # paper's guarantee — the empirical ratio must sit far below it.
        assert empirical <= bound
        assert empirical < 2.0  # and in practice near-optimal


class TestLemma1:
    @pytest.mark.parametrize("key", ["taxi", "walk", "heavy-dynamic"])
    def test_gap_nonnegative_on_algorithm_outputs(self, instances, key):
        instance = instances[key]
        for algorithm in (OnlineRegularizedAllocator(), OnlineGreedy()):
            schedule = algorithm.run(instance)
            assert lemma1_gap(schedule, instance) >= -1e-6


class TestCrossAlgorithmIdentities:
    def test_greedy_equals_lookahead_one(self, instances):
        instance = instances["taxi"]
        greedy = total_cost(OnlineGreedy().run(instance), instance)
        lookahead = total_cost(RecedingHorizon(window=1).run(instance), instance)
        assert greedy == pytest.approx(lookahead, rel=1e-6)

    def test_full_lookahead_equals_offline(self, instances):
        instance = instances["taxi"]
        offline = total_cost(OfflineOptimal().run(instance), instance)
        lookahead = total_cost(
            RecedingHorizon(window=instance.num_slots).run(instance), instance
        )
        assert offline == pytest.approx(lookahead, rel=1e-6)

    def test_periodic_one_equals_statopt(self, instances):
        instance = instances["taxi"]
        stat = total_cost(StatOpt().run(instance), instance)
        periodic = total_cost(PeriodicRebalance(period=1).run(instance), instance)
        assert stat == pytest.approx(periodic, rel=1e-6)


class TestMobilityRobustness:
    def test_algorithm_handles_static_users(self):
        """Degenerate mobility: nobody ever moves."""
        topo = rome_metro_topology()

        class Frozen:
            def generate(self, num_users, num_slots, rng):
                from repro.mobility.base import MobilityTrace

                attachment = np.tile(
                    rng.integers(0, topo.num_sites, size=num_users), (num_slots, 1)
                )
                return MobilityTrace(
                    attachment=attachment,
                    access_delay=np.zeros_like(attachment, dtype=float),
                    num_clouds=topo.num_sites,
                )

        instance = Scenario(
            topology=topo, mobility=Frozen(), num_users=6, num_slots=4
        ).build(seed=5)
        comparison = compare_algorithms(
            [OfflineOptimal(), OnlineRegularizedAllocator(), OnlineGreedy()],
            instance,
        )
        # With static users and only price noise, everyone is near-optimal.
        assert comparison.ratio("online-approx") < 1.5

    def test_single_user(self):
        instance = Scenario(num_users=1, num_slots=4).build(seed=6)
        schedule = OnlineRegularizedAllocator().run(instance)
        schedule.require_feasible(instance, tol=1e-5)

    def test_single_slot(self):
        instance = Scenario(num_users=5, num_slots=1).build(seed=7)
        comparison = compare_algorithms(
            [OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator()],
            instance,
        )
        # One slot: greedy is exactly optimal.
        assert comparison.ratio("online-greedy") == pytest.approx(1.0, abs=1e-6)
