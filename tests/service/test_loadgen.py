"""Loadgen: the streamed replay must reproduce the batch numbers.

These are the in-process versions of the CI ``service-smoke`` gates:
an unhurried replay has zero deadline misses and a realized cost equal
to batch ``simulate()`` to solver precision, while a starved iteration
budget engages the degradation ladder on every slot yet stays feasible.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.mobility import ReplayMobility
from repro.service import (
    LoadgenReport,
    ServiceConfig,
    observations_from_trace,
    run_loadgen,
)
from repro.simulation.scenario import Scenario


class TestReplayGates:
    def test_generous_replay_matches_batch_exactly(self, tiny_stream):
        system, observations = tiny_stream
        report = run_loadgen(
            system,
            observations,
            ServiceConfig(deadline_s=30.0),
            speed=0,
        )
        assert report.slots == len(observations)
        assert report.deadline_misses == 0
        assert report.partial_slots == 0
        assert abs(report.cost_delta) <= 1e-9
        assert report.latency_p99_ms >= report.latency_p50_ms > 0.0

    def test_starved_budget_degrades_every_slot(self, tiny_stream):
        system, observations = tiny_stream
        report = run_loadgen(
            system,
            observations,
            ServiceConfig(max_iterations=1),
            speed=0,
            batch_reference=False,
        )
        assert report.partial_slots == report.slots
        assert report.deadline_misses == report.slots
        assert np.isnan(report.batch_cost)
        assert np.isfinite(report.streamed_cost)

    def test_report_renders_and_serializes(self, tiny_stream):
        system, observations = tiny_stream
        report = run_loadgen(
            system, observations[:2], ServiceConfig(), speed=0
        )
        assert isinstance(report, LoadgenReport)
        text = report.render()
        assert "Loadgen replay: 2 slots" in text
        assert "batch cost" in text
        as_dict = report.as_dict()
        assert as_dict["slots"] == 2
        assert as_dict["streamed_cost"] == report.streamed_cost


class TestArgumentValidation:
    def test_empty_stream_is_rejected(self, tiny_stream):
        system, _ = tiny_stream
        with pytest.raises(ValueError, match="at least one observation"):
            run_loadgen(system, [], ServiceConfig())

    def test_host_and_port_must_travel_together(self, tiny_stream):
        system, observations = tiny_stream
        with pytest.raises(ValueError, match="host and port together"):
            run_loadgen(
                system, observations, ServiceConfig(), host="127.0.0.1"
            )


def _recorded_trace():
    scenario = Scenario(num_users=4, num_slots=4)
    trace = scenario.resolve_mobility().generate(4, 4, np.random.default_rng(7))
    return scenario, trace


class TestTraceReplay:
    def test_recorded_trace_streams_through_the_scenario_pipeline(self):
        scenario, trace = _recorded_trace()
        # Provisioning (capacities, prices) is re-derived for the replayed
        # trace, but the mobility itself is the recorded one, verbatim.
        replayed = replace(scenario, mobility=ReplayMobility(trace)).build(
            seed=99
        )
        assert np.array_equal(replayed.attachment, trace.attachment)

        observations = observations_from_trace(trace, replayed.op_prices)
        assert len(observations) == trace.num_slots
        assert np.array_equal(observations[2].attachment, trace.attachment[2])

    def test_shape_mismatches_fail_loudly(self):
        _, trace = _recorded_trace()
        with pytest.raises(ValueError, match="op_prices must be"):
            observations_from_trace(trace, np.ones((2, 3)))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="replay trace has"):
            ReplayMobility(trace).generate(9, 4, rng)
        with pytest.raises(ValueError, match="replay trace has"):
            ReplayMobility(trace).generate(4, 9, rng)


class TestTracedReplay:
    def test_every_served_slot_joins_the_replay_trace(self, tiny_stream):
        # The acceptance pin for serving-side tracing: a replay run under
        # an active trace root sends a child context with every update
        # over the real socket, and every server-side solve records the
        # replay's trace_id — one trace covers the whole loadgen run.
        from repro.telemetry import (
            MetricsRegistry,
            current_trace,
            telemetry_session,
            traced_root,
        )

        system, observations = tiny_stream
        registry = MetricsRegistry()
        with telemetry_session(registry):
            with traced_root("serve", command="loadgen"):
                root = current_trace()
                report = run_loadgen(
                    system,
                    observations[:3],
                    ServiceConfig(),
                    speed=0,
                    batch_reference=False,
                )
        assert report.slots == 3
        events = [e for e in registry.events if e.get("type") == "service.slot"]
        assert len(events) == 3
        assert {e["trace_id"] for e in events} == {root.trace_id}

    def test_untraced_replay_records_no_trace_ids(self, tiny_stream):
        from repro.telemetry import MetricsRegistry, telemetry_session

        system, observations = tiny_stream
        registry = MetricsRegistry()
        with telemetry_session(registry):
            run_loadgen(
                system,
                observations[:2],
                ServiceConfig(),
                speed=0,
                batch_reference=False,
            )
        events = [e for e in registry.events if e.get("type") == "service.slot"]
        assert len(events) == 2
        assert all("trace_id" not in e for e in events)
