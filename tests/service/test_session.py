"""AllocationSession: streamed slots equal batch, errors never kill it."""

import pytest

from repro.core.regularization import OnlineRegularizedAllocator
from repro.service import (
    AllocationSession,
    ServiceConfig,
    observation_to_update,
    percentile,
)
from repro.simulation.spine import simulate


def _drive(session, observations):
    replies = [
        session.handle(observation_to_update(o)) for o in observations
    ]
    assert all(r["type"] == "slot_result" for r in replies)
    return replies


class TestStreamedEqualsBatch:
    def test_total_cost_matches_unbudgeted_simulate(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig(deadline_s=30.0))
        replies = _drive(session, observations)
        assert session.deadline_misses == 0
        assert not any(r["partial"] for r in replies)

        allocator = OnlineRegularizedAllocator()
        batch = simulate(
            allocator.as_controller(system),
            observations,
            system,
            keep_schedule=False,
        )
        assert session.total_cost == pytest.approx(batch.total_cost, abs=1e-9)

    def test_slot_result_carries_the_cost_components(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        reply = session.handle(observation_to_update(observations[0]))
        components = (
            reply["operation"]
            + reply["service_quality"]
            + reply["reconfiguration"]
            + reply["migration"]
        )
        assert reply["cost"] == pytest.approx(components, rel=1e-9)
        assert reply["deadline_miss"] is False


class TestDegradationLadder:
    def test_iteration_budget_flags_misses_but_stays_feasible(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(
            system, ServiceConfig(max_iterations=1, backend="ipm")
        )
        replies = _drive(session, observations)
        assert all(r["partial"] for r in replies)
        assert all(r["deadline_miss"] for r in replies)
        assert session.deadline_misses == len(observations)
        report = session.stepper.feasibility()
        assert report.demand_violation <= 1e-6
        assert report.capacity_violation <= 1e-6
        assert report.negativity_violation <= 1e-9

    def test_wall_deadline_of_zero_marks_every_slot_missed(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig(deadline_s=0.0))
        reply = session.handle(observation_to_update(observations[0]))
        # deadline_s=0 keeps the solve partial (wall budget fires at the
        # first Newton check) and any positive latency exceeds it.
        assert reply["deadline_miss"]
        assert session.deadline_misses == 1


class TestErrorHandling:
    def test_torn_line_is_answered_and_the_session_survives(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        reply = session.handle_line('{"type": "update", "slot"')
        assert reply["type"] == "error"
        assert reply["expected_slot"] == 0
        # The stream continues exactly where it was.
        good = session.handle(observation_to_update(observations[0]))
        assert good["type"] == "slot_result" and good["slot"] == 0

    def test_late_and_future_updates_leave_state_untouched(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        session.handle(observation_to_update(observations[0]))
        late = session.handle(observation_to_update(observations[0]))
        assert late["type"] == "error" and "late update" in late["error"]
        future = session.handle(observation_to_update(observations[3]))
        assert future["type"] == "error" and "future update" in future["error"]
        assert session.expected_slot == 1
        assert session.handle(observation_to_update(observations[1]))[
            "type"
        ] == "slot_result"

    def test_unknown_type_is_an_error_reply(self, tiny_stream):
        system, _ = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        reply = session.handle({"type": "bogus"})
        assert reply["type"] == "error"


class TestLifecycle:
    def test_welcome_describes_the_system(self, tiny_stream):
        system, _ = tiny_stream
        session = AllocationSession(
            system, ServiceConfig(deadline_s=0.25, max_iterations=7)
        )
        welcome = session.handle({"type": "hello"})
        assert welcome["type"] == "welcome"
        assert welcome["num_clouds"] == system.num_clouds
        assert welcome["num_users"] == system.num_users
        assert welcome["deadline_s"] == 0.25
        assert welcome["max_iterations"] == 7
        assert welcome["aggregated"] is False

    def test_stats_before_any_slot(self, tiny_stream):
        # Regression: stats on a fresh session must not touch the (empty)
        # cost accumulator — it used to raise and kill the connection.
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        stats = session.handle({"type": "stats"})
        assert stats["type"] == "stats"
        assert stats["slots"] == 0
        assert stats["total_cost"] == 0.0
        assert stats["latency_p50_ms"] == 0.0
        # The session is still usable afterwards.
        reply = session.handle(observation_to_update(observations[0]))
        assert reply["type"] == "slot_result"

    def test_reset_starts_a_fresh_horizon(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        first_pass = [
            session.handle(observation_to_update(o))["total_cost"]
            for o in observations[:3]
        ]
        reply = session.handle({"type": "reset"})
        assert reply == {"type": "reset_ok", "expected_slot": 0}
        assert session.expected_slot == 0
        assert session.results == []
        assert session.deadline_misses == 0
        second_pass = [
            session.handle(observation_to_update(o))["total_cost"]
            for o in observations[:3]
        ]
        # A reset horizon replays identically: no leaked carried decision.
        assert second_pass == pytest.approx(first_pass, rel=1e-9)

    def test_stats_reports_counts_and_percentiles(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        _drive(session, observations[:2])
        stats = session.handle({"type": "stats"})
        assert stats["type"] == "stats"
        assert stats["slots"] == 2
        assert stats["expected_slot"] == 2
        assert stats["deadline_misses"] == 0
        assert stats["latency_p50_ms"] > 0.0
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"]

    def test_history_bound_trims_diagnostics(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig(history=2))
        _drive(session, observations)
        assert len(session._allocator.last_solves) <= 2


class TestPercentile:
    def test_exact_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.50) == 20.0
        assert percentile(values, 0.95) == 40.0
        assert percentile([5.0], 0.99) == 5.0
        assert percentile([], 0.50) == 0.0


class TestTracing:
    """The serving wire joins the caller's trace: an update's ``trace``
    field scopes the solve and the ``slot_result`` echoes its trace_id."""

    def test_traced_update_reply_echoes_the_trace_id(self, tiny_stream):
        from repro.telemetry import new_trace

        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        ctx = new_trace().child()
        reply = session.handle(observation_to_update(observations[0], trace=ctx))
        assert reply["type"] == "slot_result"
        assert reply["trace_id"] == ctx.trace_id

    def test_untraced_reply_has_no_trace_id_key(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        reply = session.handle(observation_to_update(observations[0]))
        assert "trace_id" not in reply

    def test_malformed_trace_field_is_ignored_not_fatal(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        update = observation_to_update(observations[0])
        update["trace"] = {"trace_id": 42}  # junk from a buggy client
        reply = session.handle(update)
        assert reply["type"] == "slot_result"
        assert "trace_id" not in reply

    def test_traced_solve_records_span_and_event(self, tiny_stream):
        from repro.telemetry import MetricsRegistry, new_trace, telemetry_session

        system, observations = tiny_stream
        registry = MetricsRegistry()
        ctx = new_trace().child()
        with telemetry_session(registry):
            session = AllocationSession(system, ServiceConfig())
            session.handle(observation_to_update(observations[0], trace=ctx))
        spans = [s for s in registry.spans if s["name"] == "service.slot"]
        assert spans and spans[0]["meta"]["trace_id"] == ctx.trace_id
        events = [e for e in registry.events if e.get("type") == "service.slot"]
        assert events and events[0]["trace_id"] == ctx.trace_id
