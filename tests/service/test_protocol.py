"""Wire-protocol validation: every malformed input is a ProtocolError."""

import json

import numpy as np
import pytest

from repro.service import (
    ProtocolError,
    encode,
    observation_to_update,
    parse_message,
    parse_update,
)
from repro.simulation.observations import SlotObservation


def _update(slot=0, num_clouds=3, num_users=4, **overrides):
    message = {
        "type": "update",
        "slot": slot,
        "op_prices": [1.0] * num_clouds,
        "attachment": [0] * num_users,
        "access_delay": [0.1] * num_users,
    }
    message.update(overrides)
    return message


class TestParseMessage:
    def test_round_trips_a_valid_line(self):
        line = encode({"type": "hello"})
        assert line.endswith(b"\n")
        assert parse_message(line) == {"type": "hello"}
        assert parse_message(line.decode("utf-8")) == {"type": "hello"}

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "   \n",
            '{"type": "update", "slot":',  # torn mid-message
            '"just a string"',
            "[1, 2, 3]",
            '{"type": "launch_missiles"}',
            '{"no_type": true}',
            b"\xff\xfe invalid utf-8 \xff",
        ],
    )
    def test_rejects_malformed_lines(self, line):
        with pytest.raises(ProtocolError):
            parse_message(line)


class TestParseUpdate:
    def _parse(self, message, expected_slot=0):
        return parse_update(
            message, expected_slot=expected_slot, num_clouds=3, num_users=4
        )

    def test_accepts_a_well_formed_update(self):
        observation = self._parse(_update())
        assert observation.slot == 0
        assert observation.op_prices.shape == (3,)
        assert observation.attachment.shape == (4,)
        assert observation.access_delay.shape == (4,)

    def test_rejects_late_updates(self):
        with pytest.raises(ProtocolError, match="late update.*already solved"):
            self._parse(_update(slot=1), expected_slot=3)

    def test_rejects_future_updates(self):
        with pytest.raises(ProtocolError, match="future update.*skip slots"):
            self._parse(_update(slot=5), expected_slot=3)

    @pytest.mark.parametrize("slot", ["0", 1.5, None, True])
    def test_rejects_non_integer_slots(self, slot):
        with pytest.raises(ProtocolError, match="slot must be an integer"):
            self._parse(_update(slot=slot))

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ProtocolError, match="op_prices"):
            self._parse(_update(op_prices=[1.0, 2.0]))
        with pytest.raises(ProtocolError, match="attachment"):
            self._parse(_update(attachment=[[0, 1], [2, 0]]))
        with pytest.raises(ProtocolError, match="missing"):
            message = _update()
            del message["access_delay"]
            self._parse(message)

    def test_rejects_non_numeric_and_non_finite_values(self):
        with pytest.raises(ProtocolError, match="not numeric"):
            self._parse(_update(op_prices=["a", "b", "c"]))
        with pytest.raises(ProtocolError, match="non-finite"):
            self._parse(_update(access_delay=[0.1, float("nan"), 0.1, 0.1]))

    def test_rejects_out_of_range_attachment(self):
        with pytest.raises(ProtocolError, match="attachment entries"):
            self._parse(_update(attachment=[0, 1, 3, 0]))
        with pytest.raises(ProtocolError, match="attachment entries"):
            self._parse(_update(attachment=[0, -1, 2, 0]))


class TestEncoding:
    def test_observation_round_trip(self):
        observation = SlotObservation(
            slot=2,
            op_prices=np.array([1.0, 2.0, 3.0]),
            attachment=np.array([0, 1, 2, 1]),
            access_delay=np.array([0.1, 0.2, 0.3, 0.4]),
        )
        message = json.loads(encode(observation_to_update(observation)))
        parsed = parse_update(
            message, expected_slot=2, num_clouds=3, num_users=4
        )
        assert parsed.slot == observation.slot
        assert np.array_equal(parsed.op_prices, observation.op_prices)
        assert np.array_equal(parsed.attachment, observation.attachment)
        assert np.array_equal(parsed.access_delay, observation.access_delay)
