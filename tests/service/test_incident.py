"""Session-level incident plane: recorder, SLOs, and loadgen surface.

A deadline-miss storm on a serving session must leave a replayable
incident bundle behind without any global telemetry session — the
session synthesizes its own watchdog/SLO feed — and the recorder/SLO
counters must travel through ``stats`` replies into the loadgen report.
"""

from __future__ import annotations

from repro.service import AllocationSession, ServiceConfig, run_loadgen
from repro.simulation.observations import (
    SystemDescription,
    observations_from_instance,
)
from repro.telemetry import read_bundle, replay_bundle
from tests.conftest import make_tiny_instance


def _long_stream(num_slots: int = 12):
    """A stream long enough for the default SLOs (min_samples=8) to fire."""
    instance = make_tiny_instance(num_slots=num_slots)
    system = SystemDescription.from_instance(instance)
    return system, observations_from_instance(instance)


def _storm_config(tmp_path, **overrides):
    kwargs = dict(
        max_iterations=1,
        flight_slots=4,
        incident_dir=str(tmp_path),
        slo=True,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


class TestSessionIncidentPlane:
    def test_deadline_miss_storm_dumps_a_replayable_bundle(
        self, tiny_stream, tmp_path
    ):
        system, observations = tiny_stream
        session = AllocationSession(system, _storm_config(tmp_path))
        for observation in observations:
            result = session.step(observation)
            assert result.partial
        bundles = session.recorder.bundles_written
        assert bundles, "the miss storm should have dumped a bundle"
        bundle = read_bundle(bundles[0])
        assert bundle.reason.startswith("alert:")
        report = replay_bundle(bundle)
        assert report.ok, report.render()

    def test_recorder_disabled_by_default(self, tiny_stream):
        system, observations = tiny_stream
        session = AllocationSession(system, ServiceConfig())
        session.step(observations[0])
        assert session.recorder is None
        assert session.slo is None
        stats = session.stats()
        assert stats["flight_snapshots"] == 0
        assert stats["incident_bundles"] == []
        assert stats["slo_active"] == []

    def test_stats_reports_recorder_and_slo_counters(self, tmp_path):
        system, observations = _long_stream()
        session = AllocationSession(system, _storm_config(tmp_path))
        for observation in observations:
            session.step(observation)
        stats = session.stats()
        assert stats["flight_snapshots"] == len(observations)
        assert len(stats["incident_bundles"]) >= 1
        assert all(isinstance(p, str) for p in stats["incident_bundles"])
        assert "deadline-miss" in stats["slo_active"]

    def test_reset_clears_the_incident_plane(self, tiny_stream, tmp_path):
        system, observations = tiny_stream
        session = AllocationSession(system, _storm_config(tmp_path))
        for observation in observations:
            session.step(observation)
        session.reset_session()
        assert len(session.recorder.snapshots) == 0
        assert session.slo.active == ()
        # The session accepts slot 0 again and keeps recording.
        session.step(observations[0])
        assert len(session.recorder.snapshots) == 1

    def test_memory_only_recorder_keeps_the_ring_without_dumping(
        self, tiny_stream
    ):
        system, observations = tiny_stream
        config = ServiceConfig(max_iterations=1, flight_slots=3)
        session = AllocationSession(system, config)
        for observation in observations:
            session.step(observation)
        assert session.recorder.bundles_written == []
        assert len(session.recorder.snapshots) == 3


class TestLoadgenSurface:
    def test_report_carries_recorder_counters_over_the_wire(self, tmp_path):
        system, observations = _long_stream()
        report = run_loadgen(
            system,
            observations,
            _storm_config(tmp_path),
            speed=0,
            batch_reference=False,
        )
        assert report.flight_snapshots == len(observations)
        assert len(report.incident_bundles) >= 1
        assert "deadline-miss" in report.slo_active
        rendered = report.render()
        assert "flight recorder" in rendered
        assert "SLOs firing" in rendered
        payload = report.as_dict()
        assert payload["flight_snapshots"] == len(observations)
        assert isinstance(payload["incident_bundles"], list)

    def test_report_counters_default_to_zero_without_the_recorder(
        self, tiny_stream
    ):
        system, observations = tiny_stream
        report = run_loadgen(
            system,
            observations,
            ServiceConfig(),
            speed=0,
            batch_reference=False,
        )
        assert report.flight_snapshots == 0
        assert report.incident_bundles == ()
        assert report.slo_active == ()
        assert "flight recorder" not in report.render()
