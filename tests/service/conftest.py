"""Service-test fixtures: a tiny system plus its observation stream."""

from __future__ import annotations

import pytest

from repro.simulation.observations import (
    SystemDescription,
    observations_from_instance,
)
from tests.conftest import make_tiny_instance


@pytest.fixture()
def tiny_stream():
    """(system, observations) for a 3-cloud / 4-user / 5-slot instance."""
    instance = make_tiny_instance(seed=0)
    system = SystemDescription.from_instance(instance)
    return system, observations_from_instance(instance)
