"""AllocationServer end to end: TCP, tick mode, stdio, and /metrics.

Plain ``asyncio.run`` drives the async parts (no pytest-asyncio
dependency); every server binds port 0 so tests never collide.
"""

import asyncio
import io
import json

from repro.service import (
    AllocationServer,
    AllocationSession,
    ServiceConfig,
    encode,
    observation_to_update,
    serve_stdio,
)


async def _send(reader, writer, message: dict) -> dict:
    writer.write(encode(message))
    await writer.drain()
    return json.loads(await reader.readline())


class TestTcpServer:
    def test_hello_updates_and_errors_over_one_connection(self, tiny_stream):
        system, observations = tiny_stream

        async def scenario():
            server = AllocationServer(
                AllocationSession(system, ServiceConfig())
            )
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                welcome = await _send(reader, writer, {"type": "hello"})
                assert welcome["type"] == "welcome"
                assert welcome["expected_slot"] == 0

                for index, observation in enumerate(observations[:3]):
                    reply = await _send(
                        reader, writer, observation_to_update(observation)
                    )
                    assert reply["type"] == "slot_result"
                    assert reply["slot"] == index

                # A torn line is answered, the connection stays usable.
                writer.write(b'{"type": "upda\n')
                await writer.drain()
                error = json.loads(await reader.readline())
                assert error["type"] == "error"
                assert error["expected_slot"] == 3

                reply = await _send(
                    reader, writer, observation_to_update(observations[3])
                )
                assert reply["type"] == "slot_result" and reply["slot"] == 3

                stats = await _send(reader, writer, {"type": "stats"})
                assert stats["slots"] == 4
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_tick_mode_supersedes_stale_updates(self, tiny_stream):
        system, observations = tiny_stream

        async def scenario():
            server = AllocationServer(
                AllocationSession(system, ServiceConfig()), tick_s=0.25
            )
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                # Two updates for slot 0 inside one tick: the first is
                # displaced (latest wins), the second is solved at the tick.
                first = observation_to_update(observations[0])
                second = dict(first)
                writer.write(encode(first) + encode(second))
                await writer.drain()
                superseded = json.loads(await reader.readline())
                assert superseded["type"] == "superseded"
                assert superseded["slot"] == 0
                solved = json.loads(await reader.readline())
                assert solved["type"] == "slot_result" and solved["slot"] == 0
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_metrics_endpoint_serves_openmetrics(self, tiny_stream):
        system, _ = tiny_stream

        async def scenario():
            server = AllocationServer(
                AllocationSession(system, ServiceConfig()), metrics_port=0
            )
            await server.start()
            try:
                endpoint = server.metrics_endpoint
                assert endpoint is not None and endpoint.port > 0
                reader, writer = await asyncio.open_connection(
                    endpoint.host, endpoint.port
                )
                writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
                await writer.drain()
                response = (await reader.read()).decode("utf-8")
                writer.close()
                assert response.startswith("HTTP/1.1 200")
                assert "text/plain" in response
                assert response.rstrip().endswith("# EOF")

                reader, writer = await asyncio.open_connection(
                    endpoint.host, endpoint.port
                )
                writer.write(b"GET /nope HTTP/1.1\r\n\r\n")
                await writer.drain()
                missing = (await reader.read()).decode("utf-8")
                writer.close()
                assert missing.startswith("HTTP/1.1 404")
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestStdioLoop:
    def test_serves_a_scripted_stream(self, tiny_stream):
        system, observations = tiny_stream
        lines = [json.dumps({"type": "hello"})]
        lines += [
            json.dumps(observation_to_update(o)) for o in observations[:2]
        ]
        lines.append("this is not json")
        lines.append(json.dumps({"type": "stats"}))
        in_stream = io.StringIO("\n".join(lines) + "\n")
        out_stream = io.StringIO()

        served = serve_stdio(
            AllocationSession(system, ServiceConfig()), in_stream, out_stream
        )
        replies = [
            json.loads(line) for line in out_stream.getvalue().splitlines()
        ]
        assert served == 2
        assert [r["type"] for r in replies] == [
            "welcome",
            "slot_result",
            "slot_result",
            "error",
            "stats",
        ]
        assert replies[-1]["slots"] == 2
