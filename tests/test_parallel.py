"""Tests for the parallel sweep executor (repro.parallel).

The load-bearing invariant: a sweep fanned across worker processes is
bit-for-bit identical to the strictly serial reference path, because every
cell derives all randomness from its own seed. A worker exception must
come back as a structured per-cell failure, never a hang or a poisoned
pool.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.parallel import (
    CellResult,
    SweepCell,
    SweepError,
    SweepExecutor,
    comparisons_or_raise,
    resolve_workers,
)
from repro.simulation.scenario import Scenario


def _cells(seeds, *, num_users=4, num_slots=2):
    scenario = Scenario(num_users=num_users, num_slots=num_slots)
    algorithms = (OfflineOptimal(), OnlineGreedy())
    return [
        SweepCell(key=("cell", k), scenario=scenario, algorithms=algorithms, seed=seed)
        for k, seed in enumerate(seeds)
    ]


class FailingAlgorithm:
    """Module-level so the process pool can pickle it."""

    name = "boom"

    def run(self, instance):
        raise RuntimeError("injected failure")


class TestDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(
        base_seed=st.integers(min_value=0, max_value=10**6),
        num_users=st.integers(min_value=3, max_value=6),
    )
    def test_parallel_matches_serial_exactly(self, base_seed, num_users):
        """Property: identical cost breakdowns (to 1e-9) at any worker count."""
        cells = _cells([base_seed, base_seed + 1], num_users=num_users)
        serial = comparisons_or_raise(SweepExecutor(max_workers=1).run_cells(cells))
        parallel = comparisons_or_raise(SweepExecutor(max_workers=2).run_cells(cells))
        for ser, par in zip(serial, parallel):
            assert sorted(ser.results) == sorted(par.results)
            for name in ser.results:
                ser_totals = ser.results[name].breakdown.totals()
                par_totals = par.results[name].breakdown.totals()
                for component, value in ser_totals.items():
                    assert par_totals[component] == pytest.approx(
                        value, rel=1e-9, abs=1e-9
                    ), (name, component)

    def test_output_order_matches_input_order(self):
        cells = _cells([11, 7, 3])
        results = SweepExecutor(max_workers=2).run_cells(cells)
        assert [result.key for result in results] == [cell.key for cell in cells]


class TestFailureCapture:
    def test_worker_exception_is_structured_not_a_hang(self):
        scenario = Scenario(num_users=3, num_slots=2)
        good = SweepCell(
            key="good",
            scenario=scenario,
            algorithms=(OfflineOptimal(), OnlineGreedy()),
            seed=5,
        )
        bad = SweepCell(
            key="bad",
            scenario=scenario,
            algorithms=(OfflineOptimal(), FailingAlgorithm()),
            seed=5,
        )
        results = SweepExecutor(max_workers=2).run_cells([good, bad])
        assert results[0].ok
        assert results[0].comparison is not None
        failure = results[1]
        assert not failure.ok
        assert failure.comparison is None
        assert "RuntimeError: injected failure" in failure.error
        assert "injected failure" in failure.traceback
        assert failure.wall_time_s >= 0.0

    def test_comparisons_or_raise_reports_failed_keys(self):
        scenario = Scenario(num_users=3, num_slots=2)
        bad = SweepCell(
            key=("case", 3),
            scenario=scenario,
            algorithms=(OfflineOptimal(), FailingAlgorithm()),
            seed=5,
        )
        results = SweepExecutor(max_workers=1).run_cells([bad])
        with pytest.raises(SweepError, match="injected failure"):
            comparisons_or_raise(results)

    def test_serial_path_captures_failures_identically(self):
        scenario = Scenario(num_users=3, num_slots=2)
        bad = SweepCell(
            key="bad",
            scenario=scenario,
            algorithms=(OfflineOptimal(), FailingAlgorithm()),
            seed=5,
        )
        (serial,) = SweepExecutor(max_workers=1).run_cells([bad])
        (parallel,) = SweepExecutor(max_workers=2).run_cells([bad])
        assert serial.error == parallel.error


class TestGracefulFallback:
    def test_unpicklable_work_falls_back_to_serial(self):
        # A lambda cannot cross a process boundary; the executor must fall
        # back to the inline path instead of raising.
        results = SweepExecutor(max_workers=2).map(lambda v: v * 2, [1, 2, 3])
        assert [result.value for result in results] == [2, 4, 6]
        assert all(result.ok for result in results)

    def test_single_item_runs_inline(self):
        import os

        results = SweepExecutor(max_workers=4).map(abs, [-3])
        assert results[0].value == 3
        assert results[0].pid == os.getpid()

    def test_keys_default_to_indices(self):
        results = SweepExecutor(max_workers=1).map(abs, [-1, -2])
        assert [result.key for result in results] == [0, 1]

    def test_keys_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            SweepExecutor(max_workers=1).map(abs, [-1], keys=["a", "b"])


class TestSharedMemoryTransport:
    """The zero-copy arena path must be indistinguishable from pickling."""

    def test_encode_decode_round_trip_is_exact(self):
        import numpy as np

        from repro.parallel import decode_item, encode_items

        rng = np.random.default_rng(0)
        items = [
            {"a": rng.normal(size=(7, 5)), "b": rng.integers(0, 9, size=13)},
            {"scalar": 3, "empty": np.empty(0)},
            "no arrays at all",
        ]
        arena = encode_items(items)
        try:
            for item, ref in zip(items, arena.refs):
                decoded = decode_item(arena.name, ref)
                if isinstance(item, dict):
                    for key, value in item.items():
                        got = decoded[key]
                        if isinstance(value, np.ndarray):
                            assert got.dtype == value.dtype
                            assert got.shape == value.shape
                            assert np.array_equal(got, value)
                        else:
                            assert got == value
                        del got
                else:
                    assert decoded == item
                # Decoded arrays alias the shared mapping; they must be
                # gone before the segment can close.
                del decoded
        finally:
            from repro.parallel.shm import detach_all

            detach_all()
            arena.close()

    def test_arena_arrays_are_read_only(self):
        import numpy as np

        from repro.parallel import decode_item, encode_items
        from repro.parallel.shm import detach_all

        arena = encode_items([np.arange(8.0)])
        try:
            decoded = decode_item(arena.name, arena.refs[0])
            assert not decoded.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                decoded[0] = 1.0
            del decoded
        finally:
            detach_all()
            arena.close()

    def test_arrayless_items_skip_the_arena(self):
        from repro.parallel import decode_item, encode_items

        arena = encode_items(["just", "strings", 42])
        assert arena.segment is None
        assert decode_item(arena.name, arena.refs[2]) == 42
        arena.close()

    def test_shm_sweep_is_bit_identical_to_serial_and_pickled(self):
        cells = _cells([101, 17, 56], num_users=5)
        serial = SweepExecutor(max_workers=1).run_cells(cells)
        pickled = SweepExecutor(max_workers=2).run_cells(cells)
        shm = SweepExecutor(max_workers=2, use_shm=True).run_cells(cells)
        for ser, pick, zc in zip(serial, pickled, shm):
            assert ser.key == pick.key == zc.key
            assert ser.error is None and pick.error is None and zc.error is None
            for other in (pick, zc):
                for name, ser_run in ser.value.results.items():
                    ser_totals = ser_run.breakdown.totals()
                    other_totals = other.value.results[name].breakdown.totals()
                    assert ser_totals == other_totals, name

    def test_shm_failures_are_structured(self):
        scenario = Scenario(num_users=3, num_slots=2)
        bad = SweepCell(
            key="bad",
            scenario=scenario,
            algorithms=(OfflineOptimal(), FailingAlgorithm()),
            seed=5,
        )
        good = SweepCell(
            key="good",
            scenario=scenario,
            algorithms=(OfflineOptimal(), OnlineGreedy()),
            seed=5,
        )
        results = SweepExecutor(max_workers=2, use_shm=True).run_cells([bad, good])
        assert not results[0].ok
        assert "RuntimeError: injected failure" in results[0].error
        assert results[1].ok

    def test_oversized_result_falls_back_to_pipe(self):
        from repro.parallel.shm import ResultArena, write_result
        from repro.parallel.shm import detach_all

        arena = ResultArena(slots=1, slot_bytes=64)
        try:
            assert not write_result(arena.name, 64, 0, b"x" * 1000)
            assert arena.read_slot(0) is None
            assert write_result(arena.name, 64, 0, "ok")
            assert arena.read_slot(0) == "ok"
        finally:
            detach_all()
            arena.close()


class TestInlineFallbackVisibility:
    def test_fallback_emits_event_and_counter(self, monkeypatch):
        import repro.parallel.executor as executor_module
        from repro.telemetry import telemetry_session

        monkeypatch.setattr(executor_module, "_inline_fallback_warned", False)
        with telemetry_session() as registry:
            with pytest.warns(RuntimeWarning, match="degraded to inline"):
                results = SweepExecutor(max_workers=2).map(
                    lambda v: v + 1, [1, 2, 3]
                )
        assert [r.value for r in results] == [2, 3, 4]
        snap = registry.snapshot()
        assert snap["counters"]["parallel.fallback.inline"] >= 1
        events = [
            e for e in snap["events"] if e["type"] == "parallel.fallback.inline"
        ]
        assert events and events[0]["workers"] == 2

    def test_warning_is_one_time_per_process(self, monkeypatch):
        import warnings as warnings_module

        import repro.parallel.executor as executor_module

        monkeypatch.setattr(executor_module, "_inline_fallback_warned", False)
        with pytest.warns(RuntimeWarning):
            SweepExecutor(max_workers=2).map(lambda v: v, [1, 2])
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            results = SweepExecutor(max_workers=2).map(lambda v: v, [1, 2])
        assert [r.value for r in results] == [1, 2]


class TestResolveWorkers:
    def test_one_is_one(self):
        assert resolve_workers(1) == 1

    def test_none_and_zero_use_all_cpus(self):
        import os

        expected = os.cpu_count() or 1
        assert resolve_workers(None) == expected
        assert resolve_workers(0) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_workers(-2)


class TestCellResult:
    def test_ok_and_comparison_accessors(self):
        result = CellResult(
            key="k", value="payload", error=None, traceback=None,
            wall_time_s=0.1, pid=123,
        )
        assert result.ok
        assert result.comparison == "payload"
        failed = CellResult(
            key="k", value=None, error="RuntimeError: x", traceback="tb",
            wall_time_s=0.1, pid=123,
        )
        assert not failed.ok


class TestRunnerIntegration:
    def test_run_ratio_sweep_workers_equivalence(self):
        """The runner-level guarantee the figures rely on."""
        from repro.experiments.runner import run_ratio_sweep

        scenario = Scenario(num_users=4, num_slots=2)
        algorithms = [OfflineOptimal(), OnlineGreedy()]
        cases = [("a", scenario, algorithms, 31), ("b", scenario, algorithms, 77)]
        serial = run_ratio_sweep(cases, repetitions=2, workers=1)
        parallel = run_ratio_sweep(cases, repetitions=2, workers=2)
        for ser, par in zip(serial, parallel):
            assert ser.label == par.label
            assert ser.stats == par.stats
            ser_costs = [c.baseline_cost for c in ser.comparisons]
            par_costs = [c.baseline_cost for c in par.comparisons]
            assert ser_costs == par_costs
