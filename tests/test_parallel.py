"""Tests for the parallel sweep executor (repro.parallel).

The load-bearing invariant: a sweep fanned across worker processes is
bit-for-bit identical to the strictly serial reference path, because every
cell derives all randomness from its own seed. A worker exception must
come back as a structured per-cell failure, never a hang or a poisoned
pool.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.parallel import (
    CellResult,
    SweepCell,
    SweepError,
    SweepExecutor,
    comparisons_or_raise,
    resolve_workers,
)
from repro.simulation.scenario import Scenario


def _cells(seeds, *, num_users=4, num_slots=2):
    scenario = Scenario(num_users=num_users, num_slots=num_slots)
    algorithms = (OfflineOptimal(), OnlineGreedy())
    return [
        SweepCell(key=("cell", k), scenario=scenario, algorithms=algorithms, seed=seed)
        for k, seed in enumerate(seeds)
    ]


class FailingAlgorithm:
    """Module-level so the process pool can pickle it."""

    name = "boom"

    def run(self, instance):
        raise RuntimeError("injected failure")


class TestDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(
        base_seed=st.integers(min_value=0, max_value=10**6),
        num_users=st.integers(min_value=3, max_value=6),
    )
    def test_parallel_matches_serial_exactly(self, base_seed, num_users):
        """Property: identical cost breakdowns (to 1e-9) at any worker count."""
        cells = _cells([base_seed, base_seed + 1], num_users=num_users)
        serial = comparisons_or_raise(SweepExecutor(max_workers=1).run_cells(cells))
        parallel = comparisons_or_raise(SweepExecutor(max_workers=2).run_cells(cells))
        for ser, par in zip(serial, parallel):
            assert sorted(ser.results) == sorted(par.results)
            for name in ser.results:
                ser_totals = ser.results[name].breakdown.totals()
                par_totals = par.results[name].breakdown.totals()
                for component, value in ser_totals.items():
                    assert par_totals[component] == pytest.approx(
                        value, rel=1e-9, abs=1e-9
                    ), (name, component)

    def test_output_order_matches_input_order(self):
        cells = _cells([11, 7, 3])
        results = SweepExecutor(max_workers=2).run_cells(cells)
        assert [result.key for result in results] == [cell.key for cell in cells]


class TestFailureCapture:
    def test_worker_exception_is_structured_not_a_hang(self):
        scenario = Scenario(num_users=3, num_slots=2)
        good = SweepCell(
            key="good",
            scenario=scenario,
            algorithms=(OfflineOptimal(), OnlineGreedy()),
            seed=5,
        )
        bad = SweepCell(
            key="bad",
            scenario=scenario,
            algorithms=(OfflineOptimal(), FailingAlgorithm()),
            seed=5,
        )
        results = SweepExecutor(max_workers=2).run_cells([good, bad])
        assert results[0].ok
        assert results[0].comparison is not None
        failure = results[1]
        assert not failure.ok
        assert failure.comparison is None
        assert "RuntimeError: injected failure" in failure.error
        assert "injected failure" in failure.traceback
        assert failure.wall_time_s >= 0.0

    def test_comparisons_or_raise_reports_failed_keys(self):
        scenario = Scenario(num_users=3, num_slots=2)
        bad = SweepCell(
            key=("case", 3),
            scenario=scenario,
            algorithms=(OfflineOptimal(), FailingAlgorithm()),
            seed=5,
        )
        results = SweepExecutor(max_workers=1).run_cells([bad])
        with pytest.raises(SweepError, match="injected failure"):
            comparisons_or_raise(results)

    def test_serial_path_captures_failures_identically(self):
        scenario = Scenario(num_users=3, num_slots=2)
        bad = SweepCell(
            key="bad",
            scenario=scenario,
            algorithms=(OfflineOptimal(), FailingAlgorithm()),
            seed=5,
        )
        (serial,) = SweepExecutor(max_workers=1).run_cells([bad])
        (parallel,) = SweepExecutor(max_workers=2).run_cells([bad])
        assert serial.error == parallel.error


class TestGracefulFallback:
    def test_unpicklable_work_falls_back_to_serial(self):
        # A lambda cannot cross a process boundary; the executor must fall
        # back to the inline path instead of raising.
        results = SweepExecutor(max_workers=2).map(lambda v: v * 2, [1, 2, 3])
        assert [result.value for result in results] == [2, 4, 6]
        assert all(result.ok for result in results)

    def test_single_item_runs_inline(self):
        import os

        results = SweepExecutor(max_workers=4).map(abs, [-3])
        assert results[0].value == 3
        assert results[0].pid == os.getpid()

    def test_keys_default_to_indices(self):
        results = SweepExecutor(max_workers=1).map(abs, [-1, -2])
        assert [result.key for result in results] == [0, 1]

    def test_keys_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            SweepExecutor(max_workers=1).map(abs, [-1], keys=["a", "b"])


class TestResolveWorkers:
    def test_one_is_one(self):
        assert resolve_workers(1) == 1

    def test_none_and_zero_use_all_cpus(self):
        import os

        expected = os.cpu_count() or 1
        assert resolve_workers(None) == expected
        assert resolve_workers(0) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_workers(-2)


class TestCellResult:
    def test_ok_and_comparison_accessors(self):
        result = CellResult(
            key="k", value="payload", error=None, traceback=None,
            wall_time_s=0.1, pid=123,
        )
        assert result.ok
        assert result.comparison == "payload"
        failed = CellResult(
            key="k", value=None, error="RuntimeError: x", traceback="tb",
            wall_time_s=0.1, pid=123,
        )
        assert not failed.ok


class TestRunnerIntegration:
    def test_run_ratio_sweep_workers_equivalence(self):
        """The runner-level guarantee the figures rely on."""
        from repro.experiments.runner import run_ratio_sweep

        scenario = Scenario(num_users=4, num_slots=2)
        algorithms = [OfflineOptimal(), OnlineGreedy()]
        cases = [("a", scenario, algorithms, 31), ("b", scenario, algorithms, 77)]
        serial = run_ratio_sweep(cases, repetitions=2, workers=1)
        parallel = run_ratio_sweep(cases, repetitions=2, workers=2)
        for ser, par in zip(serial, parallel):
            assert ser.label == par.label
            assert ser.stats == par.stats
            ser_costs = [c.baseline_cost for c in ser.comparisons]
            par_costs = [c.baseline_cost for c in par.comparisons]
            assert ser_costs == par_costs
