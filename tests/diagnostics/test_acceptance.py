"""Paper-scale acceptance: certificates and the Theorem-2 bound hold.

The headline guarantee of the diagnostics subsystem, checked on the
Figure 2 scenario at the paper's full user scale (J = 300 users on the
15-cloud Rome metro topology, taxi mobility, power-law workloads):

* every slot's P2 solve carries a duality-gap certificate of at most
  1e-6 (relative), and
* the empirical competitive ratio of every checked prefix stays within
  the computed ``1 + gamma |I|`` bound.

The horizon is shortened to 6 slots because each ratio checkpoint solves
an offline prefix LP whose cost grows superlinearly in the horizon — the
per-slot subproblems themselves (whose optimality is what's being
certified) are at full paper scale.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import competitive_ratio_bound
from repro.core.regularization import OnlineRegularizedAllocator
from repro.diagnostics import competitive_ratio_trace
from repro.experiments.fig2 import fig2_scenario
from repro.experiments.settings import PAPER_NUM_USERS, ExperimentScale


@pytest.fixture(scope="module")
def paper_scale_run():
    scale = ExperimentScale(num_users=PAPER_NUM_USERS, num_slots=6)
    instance = fig2_scenario(scale).build(seed=scale.seed)
    algorithm = OnlineRegularizedAllocator(
        eps1=scale.eps, eps2=scale.eps, certify=True
    )
    schedule = algorithm.run(instance)
    return scale, instance, algorithm, schedule


class TestPaperScaleCertificates:
    def test_every_slot_gap_within_1e_6(self, paper_scale_run):
        _, instance, algorithm, _ = paper_scale_run
        certificates = algorithm.last_certificates
        assert len(certificates) == instance.num_slots
        for certificate in certificates:
            assert certificate.relative_gap <= 1e-6, (
                certificate.slot,
                certificate.relative_gap,
            )
            assert certificate.ok()


class TestPaperScaleRatioBound:
    def test_empirical_ratio_within_theorem_2(self, paper_scale_run):
        scale, instance, _, schedule = paper_scale_run
        trace = competitive_ratio_trace(
            instance, schedule, eps1=scale.eps, eps2=scale.eps, every=3
        )
        assert trace.bound == competitive_ratio_bound(
            instance, scale.eps, scale.eps
        )
        assert trace.certified, [
            (p.slot, p.ratio) for p in trace.violations()
        ]
        assert trace.final_ratio <= trace.bound
        # The paper's headline: online-approx is near-optimal in practice,
        # orders of magnitude inside the worst-case guarantee.
        assert trace.final_ratio < 2.0
