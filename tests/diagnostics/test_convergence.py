"""Interior-point convergence traces recorded through telemetry."""

from __future__ import annotations

from repro.core.regularization import OnlineRegularizedAllocator
from repro.diagnostics import (
    iteration_series,
    summarize_convergence,
    trace_events,
)
from repro.simulation.scenario import Scenario
from repro.solvers.registry import get_backend
from repro.telemetry import (
    read_manifest,
    telemetry_session,
    write_manifest,
)


def _run_with_traces():
    instance = Scenario(num_users=5, num_slots=3).build(seed=6)
    algorithm = OnlineRegularizedAllocator(backend=get_backend("ipm"))
    with telemetry_session() as registry:
        algorithm.run(instance)
    return instance, registry


class TestTraceEmission:
    def test_one_trace_event_per_solve(self):
        instance, registry = _run_with_traces()
        events = trace_events(registry)
        assert len(events) == instance.num_slots
        for event in events:
            assert event["iterations"] > 0
            series = event["trace"]
            assert series, "expected a per-outer-iteration series"
            mus = [step["mu"] for step in series]
            assert all(b < a for a, b in zip(mus, mus[1:]))  # strictly down

    def test_no_events_without_telemetry(self):
        instance = Scenario(num_users=5, num_slots=2).build(seed=6)
        algorithm = OnlineRegularizedAllocator(backend=get_backend("ipm"))
        with telemetry_session() as registry:
            pass  # session closed before the run
        algorithm.run(instance)
        assert trace_events(registry) == []


class TestSummaries:
    def test_summary_from_registry(self):
        instance, registry = _run_with_traces()
        summary = summarize_convergence(registry)
        assert summary.solves == instance.num_slots
        assert summary.total_iterations > 0
        assert summary.max_iterations <= summary.total_iterations
        assert summary.mean_iterations > 0
        assert summary.max_final_mu < 1e-6
        assert summary.non_decreasing_mu == 0
        as_dict = summary.as_dict()
        assert as_dict["solves"] == summary.solves

    def test_summary_round_trips_through_manifest(self, tmp_path):
        _, registry = _run_with_traces()
        path = write_manifest(tmp_path / "run.jsonl", registry)
        record = read_manifest(path)
        assert summarize_convergence(record) == summarize_convergence(registry)

    def test_iteration_series_matches_events(self):
        _, registry = _run_with_traces()
        series = iteration_series(registry)
        assert series == [e["iterations"] for e in trace_events(registry)]

    def test_summary_of_empty_source(self):
        summary = summarize_convergence([])
        assert summary.solves == 0
        assert summary.mean_iterations == 0.0

    def test_plain_iterable_source(self):
        events = [
            {"type": "solver.ipm.trace", "iterations": 7, "trace": []},
            {"type": "other"},
        ]
        assert len(trace_events(events)) == 1
        assert iteration_series(events) == [7]
