"""Per-slot optimality certificates: tightness, validity, and purity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regularization import OnlineRegularizedAllocator
from repro.core.subproblem import RegularizedSubproblem
from repro.diagnostics import (
    CertificateHook,
    certify_schedule,
    certify_solution,
    duality_gap_bound,
    finite_difference_residual,
    lp_multipliers,
    record_certificate,
    recover_multipliers,
    worst_certificate,
)
from repro.simulation.engine import run_algorithm
from repro.simulation.scenario import Scenario
from repro.telemetry import telemetry_session


@pytest.fixture(scope="module")
def small_run():
    """One certified online run on a small instance (shared, read-only)."""
    instance = Scenario(num_users=6, num_slots=3).build(seed=11)
    algorithm = OnlineRegularizedAllocator(certify=True)
    schedule = algorithm.run(instance)
    return instance, algorithm, schedule


def _subproblem(instance, slot=0, x_prev=None):
    if x_prev is None:
        x_prev = np.zeros((instance.num_clouds, instance.num_users))
    return RegularizedSubproblem.from_instance(
        instance, slot, x_prev, eps1=1.0, eps2=1.0
    )


class TestCertifySolution:
    def test_solver_result_certifies_tightly(self, small_run):
        instance, algorithm, _ = small_run
        subproblem = _subproblem(instance)
        certificate = certify_solution(subproblem, algorithm.last_solves[0])
        assert certificate.ok()
        assert certificate.relative_gap <= 1e-6
        assert certificate.kkt_residual < 1e-4
        assert certificate.source in ("solver", "recovered")
        assert certificate.backend == algorithm.last_solves[0].backend

    def test_bare_point_uses_recovered_multipliers(self, small_run):
        instance, _, schedule = small_run
        subproblem = _subproblem(instance)
        certificate = certify_solution(subproblem, schedule.x[0].ravel())
        assert certificate.source == "recovered"
        assert certificate.ok()

    def test_suboptimal_point_gets_a_large_gap(self, small_run):
        instance, _, _ = small_run
        subproblem = _subproblem(instance)
        # The canonical interior point is feasible but far from optimal.
        certificate = certify_solution(subproblem, subproblem.interior_point())
        assert not certificate.ok()
        assert certificate.relative_gap > 1e-3

    def test_gap_bound_is_an_actual_upper_bound(self, small_run):
        """f(x) - bound <= f(x*) for a clearly suboptimal feasible x."""
        instance, algorithm, _ = small_run
        subproblem = _subproblem(instance)
        optimum = float(subproblem.objective(algorithm.last_solves[0].x))
        point = subproblem.interior_point()
        theta, rho = recover_multipliers(subproblem, point)
        gap = duality_gap_bound(subproblem, point, theta, rho)
        value = float(subproblem.objective(point))
        assert value - gap <= optimum + 1e-8

    def test_gap_bound_nonnegative_for_any_multipliers(self, small_run):
        instance, algorithm, _ = small_run
        subproblem = _subproblem(instance)
        flat = algorithm.last_solves[0].x
        zeros_t = np.zeros(subproblem.num_users)
        zeros_r = np.zeros(subproblem.num_clouds)
        assert duality_gap_bound(subproblem, flat, zeros_t, zeros_r) >= 0.0

    def test_lp_multipliers_realize_the_frank_wolfe_gap(self, small_run):
        """With exact LP duals the closed-form bound equals
        ``grad·x - min_y grad·y`` and never loses to the other sources."""
        instance, algorithm, _ = small_run
        subproblem = _subproblem(instance)
        flat = algorithm.last_solves[0].x
        theta, rho = lp_multipliers(subproblem, flat)
        assert theta.shape == (subproblem.num_users,)
        assert rho.shape == (subproblem.num_clouds,)
        assert (theta >= 0).all() and (rho >= 0).all()
        lp_gap = duality_gap_bound(subproblem, flat, theta, rho)
        theta_r, rho_r = recover_multipliers(subproblem, flat)
        assert lp_gap <= duality_gap_bound(subproblem, flat, theta_r, rho_r) * (
            1 + 1e-9
        )

    def test_finite_difference_cross_check(self, small_run):
        instance, algorithm, _ = small_run
        subproblem = _subproblem(instance)
        flat = algorithm.last_solves[0].x
        theta, rho = recover_multipliers(subproblem, flat)
        analytic = subproblem.kkt_stationarity_residual(flat, theta, rho)
        numeric = finite_difference_residual(subproblem, flat, theta, rho)
        assert numeric == pytest.approx(analytic, abs=1e-5)


class TestInRunCertification:
    def test_certify_flag_populates_certificates(self, small_run):
        instance, algorithm, _ = small_run
        assert len(algorithm.last_certificates) == instance.num_slots
        assert [c.slot for c in algorithm.last_certificates] == [0, 1, 2]
        assert all(c.ok() for c in algorithm.last_certificates)

    def test_certify_off_is_bit_identical(self):
        instance = Scenario(num_users=6, num_slots=3).build(seed=11)
        plain = OnlineRegularizedAllocator(certify=False).run(instance)
        certified = OnlineRegularizedAllocator(certify=True).run(instance)
        assert np.array_equal(plain.x, certified.x)  # exact equality

    def test_post_hoc_matches_in_run(self, small_run):
        instance, algorithm, schedule = small_run
        post_hoc = certify_schedule(
            instance,
            schedule,
            eps1=1.0,
            eps2=1.0,
            solves=algorithm.last_solves,
        )
        assert len(post_hoc) == len(algorithm.last_certificates)
        for fresh, recorded in zip(post_hoc, algorithm.last_certificates):
            assert fresh.relative_gap == pytest.approx(
                recorded.relative_gap, rel=1e-9, abs=1e-15
            )

    def test_certify_schedule_without_solves(self, small_run):
        instance, _, schedule = small_run
        certificates = certify_schedule(instance, schedule, eps1=1.0, eps2=1.0)
        assert all(c.source == "recovered" for c in certificates)
        assert all(c.ok() for c in certificates)

    def test_certify_schedule_rejects_mismatched_solves(self, small_run):
        instance, algorithm, schedule = small_run
        with pytest.raises(ValueError, match="solver results"):
            certify_schedule(
                instance,
                schedule,
                eps1=1.0,
                eps2=1.0,
                solves=algorithm.last_solves[:-1],
            )


class TestCertificateHook:
    def test_hook_certifies_every_slot_on_the_spine(self):
        instance = Scenario(num_users=5, num_slots=3).build(seed=4)
        hook = CertificateHook()
        run_algorithm(OnlineRegularizedAllocator(), instance, hooks=[hook])
        assert len(hook.certificates) == instance.num_slots
        assert all(c.ok() for c in hook.certificates)
        assert hook.worst is hook.certificates[
            max(
                range(len(hook.certificates)),
                key=lambda i: hook.certificates[i].relative_gap,
            )
        ]

    def test_hook_adopts_controller_epsilons(self):
        instance = Scenario(num_users=5, num_slots=2).build(seed=4)
        hook = CertificateHook(record=False)
        run_algorithm(
            OnlineRegularizedAllocator(eps1=0.5, eps2=2.0), instance, hooks=[hook]
        )
        assert (hook.eps1, hook.eps2) == (0.5, 2.0)
        assert all(c.ok() for c in hook.certificates)


class TestRecording:
    def test_record_certificate_emits_metrics_and_event(self, small_run):
        _, algorithm, _ = small_run
        certificate = algorithm.last_certificates[0]
        with telemetry_session() as registry:
            record_certificate(certificate)
        assert registry.histogram("diag.kkt.residual").count == 1
        assert registry.histogram("diag.duality_gap").count == 1
        events = [e for e in registry.events if e["type"] == "diag.certificate"]
        assert len(events) == 1
        assert events[0]["relative_gap"] == certificate.relative_gap
        assert events[0]["source"] == certificate.source

    def test_record_is_noop_when_disabled(self, small_run):
        _, algorithm, _ = small_run
        record_certificate(algorithm.last_certificates[0])  # must not raise


class TestWorstCertificate:
    def test_empty_is_none(self):
        assert worst_certificate([]) is None
