"""Running competitive ratio vs the certified Theorem-2 bound."""

from __future__ import annotations

import pytest

from repro.core.bounds import competitive_ratio_bound
from repro.core.regularization import OnlineRegularizedAllocator
from repro.diagnostics import (
    RatioPoint,
    RatioTrace,
    competitive_ratio_trace,
    record_ratio_trace,
)
from repro.simulation.scenario import Scenario
from repro.telemetry import telemetry_session


@pytest.fixture(scope="module")
def traced_run():
    instance = Scenario(num_users=6, num_slots=4).build(seed=3)
    schedule = OnlineRegularizedAllocator().run(instance)
    trace = competitive_ratio_trace(instance, schedule, eps1=1.0, eps2=1.0)
    return instance, trace


class TestTrace:
    def test_one_point_per_slot_with_every_1(self, traced_run):
        instance, trace = traced_run
        assert [p.slot for p in trace.points] == list(range(instance.num_slots))

    def test_every_prefix_is_certified(self, traced_run):
        _, trace = traced_run
        assert trace.certified
        assert trace.violations() == []
        assert trace.worst_ratio <= trace.bound

    def test_final_ratio_at_least_one(self, traced_run):
        """The online cost can never beat the offline optimum."""
        _, trace = traced_run
        assert trace.final_ratio >= 1.0 - 1e-9

    def test_bound_matches_theorem_2(self, traced_run):
        instance, trace = traced_run
        assert trace.bound == competitive_ratio_bound(instance, 1.0, 1.0)

    def test_subsampling_always_keeps_the_final_slot(self):
        instance = Scenario(num_users=4, num_slots=5).build(seed=9)
        schedule = OnlineRegularizedAllocator().run(instance)
        trace = competitive_ratio_trace(
            instance, schedule, eps1=1.0, eps2=1.0, every=3
        )
        assert trace.points[-1].slot == instance.num_slots - 1
        assert len(trace.points) < instance.num_slots

    def test_every_must_be_positive(self, traced_run):
        instance, _ = traced_run
        schedule = OnlineRegularizedAllocator().run(instance)
        with pytest.raises(ValueError, match="every"):
            competitive_ratio_trace(
                instance, schedule, eps1=1.0, eps2=1.0, every=0
            )


class TestRatioPointEdges:
    def test_zero_offline_nonzero_online_is_infinite(self):
        assert RatioPoint(0, 1.0, 0.0).ratio == float("inf")

    def test_zero_over_zero_is_one(self):
        assert RatioPoint(0, 0.0, 0.0).ratio == 1.0


class TestViolationFlagging:
    def _violating_trace(self):
        return RatioTrace(
            points=(
                RatioPoint(slot=0, online_cost=5.0, offline_cost=4.0),
                RatioPoint(slot=1, online_cost=30.0, offline_cost=10.0),
            ),
            bound=2.0,
        )

    def test_violations_are_flagged(self):
        trace = self._violating_trace()
        assert not trace.certified
        assert [p.slot for p in trace.violations()] == [1]

    def test_recording_emits_violation_events(self):
        trace = self._violating_trace()
        with telemetry_session() as registry:
            record_ratio_trace(trace)
        assert registry.counter("diag.ratio.violations").value == 1
        violations = [
            e for e in registry.events if e["type"] == "diag.ratio.violation"
        ]
        assert len(violations) == 1
        assert violations[0]["slot"] == 1


class TestRecording:
    def test_trace_event_and_gauges(self, traced_run):
        _, trace = traced_run
        with telemetry_session() as registry:
            record_ratio_trace(trace)
        assert registry.gauge("diag.ratio.bound").value == trace.bound
        assert registry.gauge("diag.ratio.final").value == trace.final_ratio
        assert registry.histogram("diag.ratio").count == len(trace.points)
        events = [e for e in registry.events if e["type"] == "diag.ratio.trace"]
        assert len(events) == 1
        assert len(events[0]["points"]) == len(trace.points)
        assert events[0]["certified"] is True

    def test_noop_when_disabled(self, traced_run):
        _, trace = traced_run
        record_ratio_trace(trace)  # null registry active; must not raise
