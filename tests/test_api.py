"""The public API surface: everything advertised in __all__ resolves."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.solvers",
    "repro.topology",
    "repro.mobility",
    "repro.workload",
    "repro.pricing",
    "repro.baselines",
    "repro.simulation",
    "repro.experiments",
    "repro.io",
    "repro.cli",
]


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_import(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize(
        "module_name",
        [m for m in SUBPACKAGES if m not in ("repro.cli",)],
    )
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_algorithms_share_protocol(self):
        from repro.baselines.base import AllocationAlgorithm

        for algorithm in (
            repro.OfflineOptimal(),
            repro.OnlineGreedy(),
            repro.OnlineRegularizedAllocator(),
            repro.PerfOpt(),
            repro.OperOpt(),
            repro.StatOpt(),
            repro.StaticAllocation(),
        ):
            assert isinstance(algorithm, AllocationAlgorithm)
            assert isinstance(algorithm.name, str)
