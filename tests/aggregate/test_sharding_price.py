"""Price-aware shard capacity slicing: valid shares, guaranteed headroom."""

import numpy as np
import pytest

from repro.aggregate.sharding import (
    ShardedSolve,
    shard_capacity_shares,
    solve_sharded,
)
from repro.core.subproblem import RegularizedSubproblem
from tests.conftest import make_tiny_instance


def _subproblem(seed: int = 0, x_prev: np.ndarray | None = None):
    instance = make_tiny_instance(seed=seed)
    if x_prev is None:
        # A realized previous decision: everyone served at the attached
        # station, so the usage split is non-trivial.
        x_prev = np.zeros((instance.num_clouds, instance.num_users))
        x_prev[instance.attachment[0], np.arange(instance.num_users)] = (
            instance.workloads
        )
    return RegularizedSubproblem.from_instance(
        instance, 0, x_prev, eps1=1.0, eps2=1.0
    )


def _blocks():
    return [np.array([0, 1]), np.array([2, 3])]


class TestShardCapacityShares:
    def test_shares_sum_to_one_per_cloud(self):
        sub = _subproblem()
        duals = np.array([5.0, 0.1, 2.0])
        for slicing, capacity_duals in [
            ("proportional", None),
            ("price", None),
            ("price", duals),
        ]:
            t = shard_capacity_shares(
                sub, _blocks(), slicing=slicing, capacity_duals=capacity_duals
            )
            assert t.shape == (3, 2)
            assert np.all(t >= 0.0)
            assert np.allclose(t.sum(axis=1), 1.0)

    def test_without_duals_price_equals_proportional(self):
        sub = _subproblem()
        price = shard_capacity_shares(sub, _blocks(), slicing="price")
        proportional = shard_capacity_shares(
            sub, _blocks(), slicing="proportional"
        )
        assert np.array_equal(price, proportional)

    def test_single_block_gets_everything(self):
        sub = _subproblem()
        t = shard_capacity_shares(
            sub,
            [np.arange(4)],
            slicing="price",
            capacity_duals=np.array([1.0, 1.0, 1.0]),
        )
        assert np.allclose(t, 1.0)

    def test_every_shard_keeps_its_feasibility_headroom(self):
        sub = _subproblem()
        workloads = np.asarray(sub.workloads, dtype=float)
        capacities = np.asarray(sub.capacities, dtype=float)
        total = float(workloads.sum())
        overprovision = float(capacities.sum()) / total
        blocks = _blocks()
        shares = np.array([workloads[b].sum() / total for b in blocks])
        # 0.1 is the slicer's headroom-keep fraction (see sharding.py).
        target = (1.0 + 0.1 * (overprovision - 1.0)) * shares * total
        for duals in [
            np.array([100.0, 0.0, 0.0]),
            np.array([0.0, 0.0, 100.0]),
            np.array([3.0, 7.0, 1.0]),
        ]:
            t = shard_capacity_shares(
                sub, blocks, slicing="price", capacity_duals=duals
            )
            shard_totals = capacities @ t
            assert np.all(shard_totals >= target - 1e-9)

    def test_unknown_slicing_is_rejected(self):
        with pytest.raises(ValueError, match="unknown shard slicing"):
            shard_capacity_shares(_subproblem(), _blocks(), slicing="magic")


class TestShardedSolveResult:
    def test_unpacks_as_the_legacy_two_tuple(self):
        sub = _subproblem()
        solve = solve_sharded(sub, shards=2)
        assert isinstance(solve, ShardedSolve)
        x, iterations = solve
        assert x.shape == (3, 4)
        assert iterations == solve.iterations
        assert solve.partial_solves == 0

    def test_carries_capacity_duals_for_the_next_slot(self):
        solve = solve_sharded(_subproblem(), shards=2, backend="ipm")
        assert solve.capacity_duals is not None
        assert solve.capacity_duals.shape == (3,)

    def test_price_sliced_shards_stay_feasible(self):
        sub = _subproblem()
        duals = solve_sharded(sub, shards=2, backend="ipm").capacity_duals
        solve = solve_sharded(
            sub, shards=2, backend="ipm", capacity_duals=duals, slicing="price"
        )
        x = solve.x
        workloads = np.asarray(sub.workloads, dtype=float)
        capacities = np.asarray(sub.capacities, dtype=float)
        assert np.all(x.sum(axis=0) >= workloads - 1e-6)
        assert np.all(x.sum(axis=1) <= capacities + 1e-6)
        assert np.all(x >= -1e-9)
