"""Warm cohort reuse: cache hits on stable maps, invalidation on churn."""

import numpy as np
import pytest

from repro.aggregate import AggregatedController, AggregationConfig
from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.observations import (
    SystemDescription,
    observations_from_instance,
)
from repro.simulation.spine import simulate
from tests.conftest import make_tiny_instance


def _stable_setup(seed: int = 0, **config_overrides):
    """A tiny instance whose attachment never changes across slots."""
    instance = make_tiny_instance(seed=seed)
    instance.attachment[:] = instance.attachment[0]
    system = SystemDescription.from_instance(instance)
    config = AggregationConfig(**config_overrides)
    controller = AggregatedController(
        system=system,
        algorithm=OnlineRegularizedAllocator(),
        config=config,
    )
    return instance, system, controller


class TestWarmCohortCache:
    def test_stable_map_hits_from_the_second_slot(self):
        instance, _, controller = _stable_setup()
        for observation in observations_from_instance(instance):
            controller.observe(observation)
        hits = [r.warm_cohort_hit for r in controller.last_reports]
        assert hits[0] is False
        assert all(hits[1:])

    def test_cohort_churn_invalidates_the_cache(self):
        instance, _, controller = _stable_setup(seed=1)
        observations = observations_from_instance(instance)
        controller.observe(observations[0])
        controller.observe(observations[1])
        # Move one user to another station: new cohort signature.
        churned = observations[2]
        attachment = np.array(churned.attachment)
        attachment[0] = (attachment[0] + 1) % 3
        churned = type(churned)(
            slot=churned.slot,
            op_prices=churned.op_prices,
            attachment=attachment,
            access_delay=churned.access_delay,
        )
        controller.observe(churned)
        hits = [r.warm_cohort_hit for r in controller.last_reports]
        assert hits == [False, True, False]

    def test_disabled_config_never_hits(self):
        instance, _, controller = _stable_setup(warm_cohorts=False)
        for observation in observations_from_instance(instance):
            controller.observe(observation)
        assert not any(r.warm_cohort_hit for r in controller.last_reports)

    def test_reset_drops_the_cache(self):
        instance, _, controller = _stable_setup()
        observations = observations_from_instance(instance)
        controller.observe(observations[0])
        controller.observe(observations[1])
        controller.reset()
        controller.observe(observations[0])
        assert controller.last_reports[-1].warm_cohort_hit is False

    def test_warm_reuse_does_not_change_the_costs(self):
        instance, system, _ = _stable_setup(seed=2)
        observations = observations_from_instance(instance)

        def run(warm: bool) -> float:
            allocator = OnlineRegularizedAllocator(
                aggregation=AggregationConfig(warm_cohorts=warm)
            )
            return simulate(
                allocator.as_controller(system), observations, system
            ).total_cost

        assert run(True) == pytest.approx(run(False), rel=1e-6)


class TestCheckpointRoundTrip:
    def test_six_tuple_state_preserves_the_warm_cache(self):
        instance, system, controller = _stable_setup(seed=3)
        observations = observations_from_instance(instance)
        controller.observe(observations[0])
        controller.observe(observations[1])
        state = controller.get_state()
        assert len(state) == 6

        restored = AggregatedController(
            system=system,
            algorithm=OnlineRegularizedAllocator(),
            config=AggregationConfig(),
        )
        restored.set_state(state)
        restored.observe(observations[2])
        assert restored.last_reports[-1].warm_cohort_hit is True

    def test_legacy_three_tuple_state_restores_with_cold_caches(self):
        instance, system, controller = _stable_setup(seed=3)
        observations = observations_from_instance(instance)
        controller.observe(observations[0])
        controller.observe(observations[1])
        state = controller.get_state()[:3]

        restored = AggregatedController(
            system=system,
            algorithm=OnlineRegularizedAllocator(),
            config=AggregationConfig(),
        )
        restored.set_state(state)
        restored.observe(observations[2])
        assert restored.last_reports[-1].warm_cohort_hit is False
