"""Equivalence and epsilon-bound acceptance at paper-shaped scales.

Two layers of guarantee, both pinned here:

* the *a-priori* bound — the aggregated trajectory cost stays within
  ``(1 + epsilon)`` of the direct per-user cost, with ``epsilon`` computed
  from instance parameters only (:func:`aggregation_error_bound`);
* the *realized* gap — far tighter than epsilon in practice, pinned for
  the fig2 (taxi) and fig5 (random-walk) scenarios so a regression in the
  reduction shows up as a failed pin, not a silently looser bound.

Sharding contracts: worker count never changes the solution (bit-for-bit),
``shards=1`` is exactly the unsharded solve, and shard count perturbs the
decision only boundedly.
"""

import numpy as np
import pytest

from repro.aggregate import (
    AggregatedController,
    AggregationConfig,
    build_cohorts,
    BucketSpec,
    reduced_subproblem,
    solve_sharded,
)
from repro.core.regularization import OnlineRegularizedAllocator
from repro.experiments.fig2 import fig2_scenario
from repro.experiments.settings import ExperimentScale
from repro.mobility.random_walk import RandomWalkMobility
from repro.simulation.observations import (
    SlotObservation,
    SystemDescription,
    iter_observations,
)
from repro.simulation.scenario import Scenario
from repro.simulation.spine import simulate
from repro.solvers.registry import get_backend
from repro.topology.metro import rome_metro_topology

#: Realized-cost pins (aggregated / direct) for the paper scenarios at the
#: scale below. Observed: fig2 ~1.009, fig5 ~1.025 with 8 buckets; the
#: pins leave a small margin for solver/platform noise but would catch any
#: real modeling regression.
FIG2_PIN = 1.05
FIG5_PIN = 1.08
EXACT_BUCKET_PIN = 1.005

SCALE = ExperimentScale(num_users=40, num_slots=10)


def _run_pair(instance, config: AggregationConfig):
    """(direct result, aggregated result, aggregated controller)."""
    system = SystemDescription.from_instance(instance)
    direct = OnlineRegularizedAllocator().as_controller(system)
    aggregated = AggregatedController(system=system, config=config)
    res_direct = simulate(direct, iter_observations(instance), system)
    res_agg = simulate(aggregated, iter_observations(instance), system)
    return res_direct, res_agg, aggregated


def fig5_instance(seed: int = 2017):
    topology = rome_metro_topology()
    return Scenario(
        topology=topology,
        mobility=RandomWalkMobility(topology),
        num_users=SCALE.num_users,
        num_slots=SCALE.num_slots,
        workload_distribution="power",
    ).build(seed=seed)


@pytest.mark.parametrize(
    "build,pin",
    [
        (lambda: fig2_scenario(SCALE).build(seed=SCALE.seed), FIG2_PIN),
        (fig5_instance, FIG5_PIN),
    ],
    ids=["fig2-taxi", "fig5-random-walk"],
)
def test_epsilon_bound_and_pin_on_paper_scenarios(build, pin):
    instance = build()
    res_direct, res_agg, controller = _run_pair(
        instance, AggregationConfig(lambda_buckets=8)
    )
    ratio = res_agg.total_cost / res_direct.total_cost
    # The formal acceptance: within 1 + epsilon, epsilon from instance
    # parameters only (worst slot's bound over the run).
    epsilon = max(r.error_bound for r in controller.last_reports)
    assert ratio <= 1.0 + epsilon
    # The realized pin: what the reduction actually achieves.
    assert ratio <= pin
    # The reduction must actually reduce on heterogeneous populations.
    assert all(r.cohorts < r.users for r in controller.last_reports)
    assert res_agg.feasibility.demand_violation <= 1e-8
    assert res_agg.feasibility.capacity_violation <= 1e-8


def test_exact_buckets_close_the_gap_to_churn_noise():
    """lambda_buckets=None: only cohort churn remains, and it is tiny."""
    instance = fig2_scenario(SCALE).build(seed=SCALE.seed)
    res_direct, res_agg, controller = _run_pair(
        instance, AggregationConfig(lambda_buckets=None)
    )
    assert all(r.spread == 0.0 for r in controller.last_reports)
    assert all(r.error_bound == 0.0 for r in controller.last_reports)
    ratio = res_agg.total_cost / res_direct.total_cost
    assert ratio <= EXACT_BUCKET_PIN


def test_error_bound_shrinks_with_bucket_resolution():
    """epsilon(bucket width) is monotone: more buckets, smaller bound."""
    instance = fig2_scenario(SCALE).build(seed=SCALE.seed)
    system = SystemDescription.from_instance(instance)
    bounds = {}
    for buckets in (4, 8, 16, None):
        controller = AggregatedController(
            system=system, config=AggregationConfig(lambda_buckets=buckets)
        )
        simulate(controller, iter_observations(instance), system)
        bounds[buckets] = max(r.error_bound for r in controller.last_reports)
    assert bounds[4] >= bounds[8] >= bounds[16] >= bounds[None] == 0.0


def _reduced_for_test(num_users: int = 30, seed: int = 5):
    """A representative reduced subproblem straight from a fig2 slot."""
    instance = fig2_scenario(
        ExperimentScale(num_users=num_users, num_slots=2)
    ).build(seed=seed)
    system = SystemDescription.from_instance(instance)
    observation = next(iter_observations(instance))
    spec = BucketSpec.from_workloads(system.workloads, 4)
    cohorts = build_cohorts(observation.attachment, system.workloads, spec)
    subproblem = reduced_subproblem(
        system,
        observation,
        cohorts,
        np.zeros((system.num_clouds, cohorts.num_cohorts)),
        eps1=1.0,
        eps2=1.0,
    )
    return subproblem


def test_workers_never_change_the_solution_bit_for_bit():
    subproblem = _reduced_for_test()
    serial, it_serial = solve_sharded(subproblem, shards=3, workers=1)
    pooled, it_pooled = solve_sharded(subproblem, shards=3, workers=2)
    assert np.array_equal(serial, pooled)
    assert it_serial == it_pooled


def test_one_shard_is_exactly_the_unsharded_solve():
    subproblem = _reduced_for_test()
    sharded, _ = solve_sharded(subproblem, shards=1, workers=1)
    result = get_backend("auto").solve(subproblem.build_program(), tol=1e-8)
    direct = np.asarray(result.x).reshape(sharded.shape)
    assert np.array_equal(sharded, direct)


def test_shard_count_changes_the_solution_only_boundedly():
    """Shards trade optimality for parallel wall-clock — boundedly.

    Proportional capacity slicing keeps every shard feasible with the
    joint problem's headroom, but it stops shards from *concentrating*
    onto the cheapest clouds; measured degradation at shards=4 is
    ~20-34% on paper-shaped instances (docs/SCALING.md quantifies this
    and when the trade is worth it). The pin catches both a blow-up and
    a silent change in the slicing semantics.
    """
    instance = fig2_scenario(SCALE).build(seed=SCALE.seed)
    system = SystemDescription.from_instance(instance)
    costs = {}
    for shards in (1, 4):
        controller = AggregatedController(
            system=system,
            config=AggregationConfig(lambda_buckets=8, shards=shards),
        )
        result = simulate(controller, iter_observations(instance), system)
        assert result.feasibility.demand_violation <= 1e-8
        assert result.feasibility.capacity_violation <= 1e-8
        costs[shards] = result.total_cost
    assert costs[1] <= costs[4] <= 1.35 * costs[1]


def test_sharded_controller_matches_serial_bit_for_bit_end_to_end():
    """Full trajectories: workers=2 == workers=1 at a fixed shard count."""
    instance = fig2_scenario(
        ExperimentScale(num_users=12, num_slots=4)
    ).build(seed=7)
    system = SystemDescription.from_instance(instance)
    schedules = {}
    for workers in (1, 2):
        controller = AggregatedController(
            system=system,
            config=AggregationConfig(lambda_buckets=4, shards=3, workers=workers),
        )
        result = simulate(controller, iter_observations(instance), system)
        assert result.schedule is not None
        schedules[workers] = np.asarray(result.schedule.x)
    assert np.array_equal(schedules[1], schedules[2])
