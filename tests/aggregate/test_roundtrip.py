"""Property tests: aggregation -> disaggregation is a faithful round trip.

Hypothesis draws random user populations (workload distributions, bucket
counts, attachment patterns); the cohort map must preserve total demand
exactly, keep every disaggregated allocation feasible, and reduce to the
per-user solve bit-for-bit in the exactness regime (workload-uniform
cohorts moving together).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate import AggregatedController, AggregationConfig, BucketSpec, build_cohorts
from repro.core.problem import CostWeights, MigrationPrices, ProblemInstance
from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.observations import SystemDescription, iter_observations
from repro.simulation.spine import simulate


def random_population(seed: int, num_users: int, num_stations: int):
    """(attachment, workloads) for one slot's user population."""
    rng = np.random.default_rng(seed)
    workloads = rng.uniform(0.2, 8.0, size=num_users)
    attachment = rng.integers(0, num_stations, size=num_users)
    return attachment, workloads


population_args = dict(
    seed=st.integers(min_value=0, max_value=10_000),
    num_users=st.integers(min_value=1, max_value=40),
    num_stations=st.integers(min_value=1, max_value=6),
    buckets=st.sampled_from([None, 1, 2, 8]),
)


@given(**population_args)
@settings(max_examples=60, deadline=None)
def test_cohort_map_partitions_users(seed, num_users, num_stations, buckets):
    attachment, workloads = random_population(seed, num_users, num_stations)
    spec = BucketSpec.from_workloads(workloads, buckets)
    cohorts = build_cohorts(attachment, workloads, spec)
    assert cohorts.num_users == num_users
    assert 1 <= cohorts.num_cohorts <= num_users
    # Workload mass is partitioned exactly (same-order summation per cohort).
    assert np.isclose(cohorts.workloads.sum(), workloads.sum(), rtol=1e-12)
    assert int(cohorts.sizes.sum()) == num_users
    # Every member's share weights sum to one within its cohort.
    share_sums = np.bincount(
        cohorts.cohort_of, weights=cohorts.member_share,
        minlength=cohorts.num_cohorts,
    )
    assert np.allclose(share_sums, 1.0, atol=1e-12)
    # Cohort-mates share a station.
    assert np.array_equal(
        np.asarray(cohorts.stations)[cohorts.cohort_of], attachment
    )


@given(**population_args)
@settings(max_examples=60, deadline=None)
def test_disaggregation_preserves_total_demand_exactly(
    seed, num_users, num_stations, buckets
):
    attachment, workloads = random_population(seed, num_users, num_stations)
    spec = BucketSpec.from_workloads(workloads, buckets)
    cohorts = build_cohorts(attachment, workloads, spec)
    num_clouds = num_stations
    rng = np.random.default_rng(seed + 1)
    # A feasible-looking cohort allocation: columns sum to Lambda_g.
    y = rng.uniform(0.0, 1.0, size=(num_clouds, cohorts.num_cohorts))
    y = y / y.sum(axis=0, keepdims=True) * cohorts.workloads[None, :]
    x = cohorts.disaggregate(y)
    # Per-user demand satisfied (up to float rounding of the split).
    assert np.allclose(x.sum(axis=0), workloads, rtol=1e-12, atol=1e-12)
    # Cloud totals preserved — capacity feasibility transfers structurally.
    assert np.allclose(x.sum(axis=1), y.sum(axis=1), rtol=1e-12, atol=1e-12)
    assert (x >= 0).all()


@given(**population_args)
@settings(max_examples=60, deadline=None)
def test_aggregate_disaggregate_is_identity_on_cohort_columns(
    seed, num_users, num_stations, buckets
):
    attachment, workloads = random_population(seed, num_users, num_stations)
    spec = BucketSpec.from_workloads(workloads, buckets)
    cohorts = build_cohorts(attachment, workloads, spec)
    rng = np.random.default_rng(seed + 2)
    y = rng.uniform(0.0, 3.0, size=(4, cohorts.num_cohorts))
    back = cohorts.aggregate(cohorts.disaggregate(y))
    assert np.allclose(back, y, rtol=1e-12, atol=1e-12)
    # And aggregation alone preserves per-cloud mass for any allocation.
    x = rng.uniform(0.0, 2.0, size=(4, num_users))
    assert np.allclose(
        cohorts.aggregate(x).sum(axis=1), x.sum(axis=1), rtol=1e-12
    )


@given(**population_args)
@settings(max_examples=60, deadline=None)
def test_spread_is_zero_iff_cohorts_are_workload_uniform(
    seed, num_users, num_stations, buckets
):
    attachment, workloads = random_population(seed, num_users, num_stations)
    spec = BucketSpec.from_workloads(workloads, buckets)
    cohorts = build_cohorts(attachment, workloads, spec)
    spread = cohorts.spread(workloads)
    assert spread >= 0.0
    hi = np.zeros(cohorts.num_cohorts)
    lo = np.full(cohorts.num_cohorts, np.inf)
    np.maximum.at(hi, cohorts.cohort_of, workloads)
    np.minimum.at(lo, cohorts.cohort_of, workloads)
    uniform = bool(np.all(hi == lo))
    assert (spread == 0.0) == uniform
    if buckets is None:
        # Exact-value buckets are the zero-spread mode by construction.
        assert spread == 0.0


def make_cohorted_instance(
    *, num_slots: int = 4, seed: int = 11, groups: int = 2, group_size: int = 3
) -> ProblemInstance:
    """Users form `groups` workload-identical groups that move *together*.

    Every member of a group shares its workload and its whole attachment
    trajectory, so under exact buckets the groups are cohorts in every
    slot and the equal-split invariant is preserved across slots — the
    regime where aggregation is provably exact.
    """
    rng = np.random.default_rng(seed)
    num_clouds = 3
    num_users = groups * group_size
    workloads = np.repeat(np.linspace(1.0, 3.0, groups), group_size)
    group_walk = rng.integers(0, num_clouds, size=(num_slots, groups))
    attachment = np.repeat(group_walk, group_size, axis=1)
    delay = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.5], [2.0, 1.5, 0.0]])
    return ProblemInstance(
        workloads=workloads,
        capacities=np.full(num_clouds, workloads.sum()),
        op_prices=0.5 + rng.uniform(0.0, 1.0, size=(num_slots, num_clouds)),
        reconfig_prices=np.array([0.8, 1.0, 1.2]),
        migration_prices=MigrationPrices(
            out=np.array([0.4, 0.5, 0.6]), into=np.array([0.6, 0.5, 0.4])
        ),
        inter_cloud_delay=delay,
        attachment=attachment,
        access_delay=rng.uniform(0.0, 0.5, size=(num_slots, num_users)),
        weights=CostWeights(),
    )


@pytest.mark.parametrize("groups,group_size", [(1, 4), (2, 3), (3, 2)])
def test_identical_users_in_a_bucket_match_direct_cost_to_1e9(groups, group_size):
    """Workload-identical cohort-mates: aggregated cost == direct to 1e-9.

    Exact buckets, groups moving together, tight solver tolerance — the
    reduced P2 is mathematically the same program, so the realized P0
    trajectory cost must agree to 1e-9 relative.
    """
    instance = make_cohorted_instance(groups=groups, group_size=group_size)
    system = SystemDescription.from_instance(instance)
    direct = OnlineRegularizedAllocator(tol=1e-10).as_controller(system)
    config = AggregationConfig(lambda_buckets=None)
    aggregated = AggregatedController(
        system=system,
        algorithm=OnlineRegularizedAllocator(tol=1e-10),
        config=config,
    )
    res_direct = simulate(direct, iter_observations(instance), system)
    res_agg = simulate(aggregated, iter_observations(instance), system)
    scale = max(1.0, abs(res_direct.total_cost))
    assert abs(res_agg.total_cost - res_direct.total_cost) <= 1e-9 * scale
    # The per-slot modeling gap recorded by the controller is ~solver-tol.
    for report in aggregated.last_reports:
        assert report.spread == 0.0
        assert report.error_bound == 0.0
        assert report.disagg_error is not None and report.disagg_error < 1e-9
    # Feasibility of the disaggregated per-user trajectory.
    assert res_agg.feasibility.demand_violation <= 1e-8
    assert res_agg.feasibility.capacity_violation <= 1e-8
    assert res_agg.feasibility.negativity_violation == 0.0


@given(
    seed=st.integers(min_value=0, max_value=500),
    buckets=st.sampled_from([None, 4, 8]),
)
@settings(max_examples=10, deadline=None)
def test_aggregated_allocations_always_feasible(seed, buckets):
    """Whatever the buckets, disaggregated slots satisfy every constraint."""
    instance = make_cohorted_instance(seed=seed, groups=3, group_size=2)
    system = SystemDescription.from_instance(instance)
    controller = AggregatedController(
        system=system, config=AggregationConfig(lambda_buckets=buckets)
    )
    result = simulate(controller, iter_observations(instance), system)
    assert result.feasibility.demand_violation <= 1e-8
    assert result.feasibility.capacity_violation <= 1e-8
    assert result.feasibility.negativity_violation == 0.0
