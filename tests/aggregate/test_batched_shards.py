"""Batched shard solves must be indistinguishable from the serial loop.

``solve_sharded(..., batch_solves=True)`` stacks a slot's shard P2s into
one batched-IPM call. Everything observable — the assembled solution,
iteration counts, capacity duals, telemetry aggregates, fallback and
circuit-breaker bookkeeping — must match the executor path bit-for-bit.
"""

import numpy as np
import pytest

from repro.aggregate import AggregationConfig, solve_sharded
from repro.aggregate.sharding import _batchable_backend
from repro.core.regularization import OnlineRegularizedAllocator
from repro.core.subproblem import RegularizedSubproblem
from repro.simulation.observations import (
    SystemDescription,
    iter_observations,
)
from repro.simulation.scenario import Scenario
from repro.simulation.spine import simulate
from repro.solvers.base import SolverError
from repro.solvers.interior_point import InteriorPointBackend
from repro.solvers.registry import FallbackBackend, get_backend
from repro.solvers.scipy_backend import ScipyTrustConstrBackend
from repro.telemetry import telemetry_session


def random_subproblem(seed: int, num_clouds: int = 4, num_users: int = 9):
    rng = np.random.default_rng(seed)
    workloads = rng.integers(1, 6, size=num_users).astype(float)
    capacities = workloads.sum() * (0.3 + rng.dirichlet(np.ones(num_clouds)))
    capacities *= 1.5 * workloads.sum() / capacities.sum()
    x_prev = rng.uniform(0.0, 1.0, size=(num_clouds, num_users))
    x_prev *= workloads[None, :] / num_clouds
    return RegularizedSubproblem(
        static_prices=rng.uniform(0.05, 2.0, size=(num_clouds, num_users)),
        reconfig_prices=rng.uniform(0.1, 2.0, size=num_clouds),
        migration_prices=rng.uniform(0.1, 2.0, size=num_clouds),
        capacities=capacities,
        workloads=workloads,
        x_prev=x_prev,
        eps1=0.5,
        eps2=0.7,
    )


def assert_solves_identical(serial, batched):
    assert np.array_equal(serial.x, batched.x)
    assert serial.iterations == batched.iterations
    assert serial.partial_solves == batched.partial_solves
    if serial.capacity_duals is None:
        assert batched.capacity_duals is None
    else:
        assert np.array_equal(serial.capacity_duals, batched.capacity_duals)


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("warm", [False, True])
    def test_matches_executor_path(self, shards, warm):
        sub = random_subproblem(11 + shards)
        get_backend("auto").reset_circuit()
        serial = solve_sharded(sub, shards=shards, warm=warm)
        get_backend("auto").reset_circuit()
        batched = solve_sharded(
            sub, shards=shards, warm=warm, batch_solves=True
        )
        assert_solves_identical(serial, batched)

    def test_ipm_backend(self):
        sub = random_subproblem(23)
        serial = solve_sharded(sub, shards=3, backend="ipm")
        batched = solve_sharded(
            sub, shards=3, backend="ipm", batch_solves=True
        )
        assert_solves_identical(serial, batched)

    def test_unbatchable_backend_degrades_to_executor(self):
        assert not _batchable_backend(get_backend("scipy"))
        sub = random_subproblem(31, num_clouds=3, num_users=5)
        serial = solve_sharded(sub, shards=2, backend="scipy", tol=1e-6)
        batched = solve_sharded(
            sub, shards=2, backend="scipy", tol=1e-6, batch_solves=True
        )
        assert_solves_identical(serial, batched)

    def test_batchable_backend_predicate(self):
        assert _batchable_backend(get_backend("ipm"))
        assert _batchable_backend(get_backend("auto"))
        assert not _batchable_backend(ScipyTrustConstrBackend())


class TestTelemetryParity:
    def test_solver_counters_match_serial(self):
        sub = random_subproblem(42)
        get_backend("auto").reset_circuit()
        with telemetry_session() as serial_registry:
            solve_sharded(sub, shards=3)
        get_backend("auto").reset_circuit()
        with telemetry_session() as batched_registry:
            solve_sharded(sub, shards=3, batch_solves=True)
        ser = serial_registry.snapshot()
        bat = batched_registry.snapshot()
        for name in ("solver.ipm.solves", "solver.iterations"):
            assert bat["counters"].get(name) == ser["counters"].get(name), name
        ser_traces = [
            e for e in ser["events"] if e["type"] == "solver.ipm.trace"
        ]
        bat_traces = [
            e for e in bat["events"] if e["type"] == "solver.ipm.trace"
        ]
        assert [t["trace"] for t in bat_traces] == [
            t["trace"] for t in ser_traces
        ]
        assert bat["counters"]["solver.batched.instances"] == 3
        assert bat["histograms"]["solver.batched.batch_size"]["max"] == 3


class _BoomPrimary(InteriorPointBackend):
    """A structured-IPM lookalike whose sequential solve always fails."""

    def solve(self, program, *, tol=1e-8):
        raise SolverError("injected primary failure")


class TestFallbackParity:
    def _program(self, seed=7):
        sub = random_subproblem(seed, num_clouds=3, num_users=4)
        return sub.build_program()

    def test_absorb_primary_failure_matches_solve(self):
        program = self._program()
        error = SolverError("injected primary failure")
        via_solve = FallbackBackend(_BoomPrimary(), ScipyTrustConstrBackend())
        via_absorb = FallbackBackend(_BoomPrimary(), ScipyTrustConstrBackend())
        with telemetry_session() as reg_solve:
            res_solve = via_solve.solve(program, tol=1e-6)
        with telemetry_session() as reg_absorb:
            res_absorb = via_absorb.absorb_primary_failure(
                program, tol=1e-6, error=error
            )
        assert np.array_equal(res_solve.x, res_absorb.x)
        assert res_solve.primary_error == res_absorb.primary_error
        assert (
            reg_solve.snapshot()["counters"]["solver.fallbacks"]
            == reg_absorb.snapshot()["counters"]["solver.fallbacks"]
            == 1
        )
        assert (
            via_solve._consecutive_failures
            == via_absorb._consecutive_failures
            == 1
        )

    def test_absorbed_failures_open_the_circuit(self):
        backend = FallbackBackend(
            _BoomPrimary(), ScipyTrustConstrBackend(), failure_threshold=2
        )
        program = self._program()
        error = SolverError("injected primary failure")
        with telemetry_session() as registry:
            backend.absorb_primary_failure(program, tol=1e-6, error=error)
            assert not backend.circuit_open
            backend.absorb_primary_failure(program, tol=1e-6, error=error)
        assert backend.circuit_open
        counters = registry.snapshot()["counters"]
        assert counters["solver.circuit_breaker.opened"] == 1

    def test_absorb_primary_success_closes_the_breaker(self):
        backend = FallbackBackend(_BoomPrimary(), ScipyTrustConstrBackend())
        program = self._program()
        error = SolverError("injected primary failure")
        with telemetry_session():
            backend.absorb_primary_failure(program, tol=1e-6, error=error)
            result = InteriorPointBackend().solve(program, tol=1e-6)
        assert backend._consecutive_failures == 1
        assert backend.absorb_primary_success(result) is result
        assert backend._consecutive_failures == 0


class TestControllerWiring:
    def test_aggregated_trajectory_identical(self):
        scenario = Scenario(num_users=12, num_slots=4)
        instance = scenario.build(seed=2017)
        system = SystemDescription.from_instance(instance)

        def run(config):
            from repro.aggregate import AggregatedController

            controller = AggregatedController(system=system, config=config)
            return simulate(controller, iter_observations(instance), system)

        plain = run(AggregationConfig(lambda_buckets=4, shards=2))
        batched = run(
            AggregationConfig(lambda_buckets=4, shards=2, batch_solves=True)
        )
        assert np.array_equal(plain.schedule.x, batched.schedule.x)
        assert plain.breakdown.totals() == batched.breakdown.totals()

    def test_scale_plumbs_batch_solves(self):
        from repro.experiments.settings import ExperimentScale, aggregation_config

        scale = ExperimentScale(aggregate=True, batch_solves=True)
        assert aggregation_config(scale).batch_solves

    def test_regularized_allocator_aggregation_path(self):
        scenario = Scenario(num_users=10, num_slots=3)
        instance = scenario.build(seed=5)
        plain = OnlineRegularizedAllocator(
            aggregation=AggregationConfig(lambda_buckets=4, shards=2)
        ).run(instance)
        batched = OnlineRegularizedAllocator(
            aggregation=AggregationConfig(
                lambda_buckets=4, shards=2, batch_solves=True
            )
        ).run(instance)
        assert np.array_equal(plain.x, batched.x)
