"""Degenerate populations and lifecycle edges of the aggregation layer.

Covers the corners the round-trip properties cannot reach by random
sampling alone: stations with no attached users, one-user cohorts, the
single-cohort population, cohort churn as users move mid-run, schedule
dropping under aggregation, controller reset/resume, and configuration
validation.
"""

import numpy as np
import pytest

from repro.aggregate import (
    AggregatedController,
    AggregationConfig,
    BucketSpec,
    build_cohorts,
)
from repro.baselines.greedy import GreedyController
from repro.core.problem import CostWeights, MigrationPrices, ProblemInstance
from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.observations import (
    SystemDescription,
    iter_observations,
)
from repro.simulation.spine import simulate


def small_instance(
    *,
    num_slots: int = 4,
    num_users: int = 6,
    num_clouds: int = 3,
    seed: int = 3,
    attachment: np.ndarray | None = None,
    workloads: np.ndarray | None = None,
) -> ProblemInstance:
    rng = np.random.default_rng(seed)
    if workloads is None:
        workloads = rng.uniform(0.5, 4.0, size=num_users)
    if attachment is None:
        attachment = rng.integers(0, num_clouds, size=(num_slots, num_users))
    delay = rng.uniform(0.5, 2.0, size=(num_clouds, num_clouds))
    delay = (delay + delay.T) / 2
    np.fill_diagonal(delay, 0.0)
    return ProblemInstance(
        workloads=np.asarray(workloads, dtype=float),
        capacities=np.full(num_clouds, float(np.sum(workloads))),
        op_prices=0.5 + rng.uniform(0.0, 1.0, size=(num_slots, num_clouds)),
        reconfig_prices=rng.uniform(0.5, 1.5, size=num_clouds),
        migration_prices=MigrationPrices(
            out=rng.uniform(0.2, 0.8, size=num_clouds),
            into=rng.uniform(0.2, 0.8, size=num_clouds),
        ),
        inter_cloud_delay=delay,
        attachment=np.asarray(attachment),
        access_delay=rng.uniform(0.0, 0.5, size=(num_slots, num_users)),
        weights=CostWeights(),
    )


def run_aggregated(instance, config, **controller_kwargs):
    system = SystemDescription.from_instance(instance)
    controller = AggregatedController(
        system=system, config=config, **controller_kwargs
    )
    result = simulate(controller, iter_observations(instance), system)
    return result, controller


def assert_feasible(result):
    assert result.feasibility.demand_violation <= 1e-8
    assert result.feasibility.capacity_violation <= 1e-8
    assert result.feasibility.negativity_violation == 0.0


def test_empty_stations_contribute_no_cohorts():
    """All users piled on one of several stations: the rest stay empty."""
    num_slots, num_users = 3, 8
    attachment = np.zeros((num_slots, num_users), dtype=int)
    instance = small_instance(
        num_slots=num_slots, num_users=num_users, attachment=attachment
    )
    result, controller = run_aggregated(
        instance, AggregationConfig(lambda_buckets=4)
    )
    assert_feasible(result)
    for report in controller.last_reports:
        # <= buckets cohorts despite 3 stations existing in the system.
        assert 1 <= report.cohorts <= 4


def test_single_user_per_bucket_matches_direct():
    """Distinct workloads + exact buckets: G == J, aggregation is a no-op."""
    workloads = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    instance = small_instance(num_users=5, workloads=workloads, seed=9)
    system = SystemDescription.from_instance(instance)
    direct = OnlineRegularizedAllocator(tol=1e-10).as_controller(system)
    res_direct = simulate(direct, iter_observations(instance), system)
    result, controller = run_aggregated(
        instance,
        AggregationConfig(lambda_buckets=None),
        algorithm=OnlineRegularizedAllocator(tol=1e-10),
    )
    assert_feasible(result)
    for report in controller.last_reports:
        assert report.spread == 0.0
    # Every cohort is a singleton only when no two users share a station
    # and a workload — here workloads are distinct but stations collide,
    # so just require the trajectory cost to match the direct solve.
    scale = max(1.0, abs(res_direct.total_cost))
    assert abs(result.total_cost - res_direct.total_cost) <= 1e-6 * scale


def test_all_users_in_one_cohort():
    """Identical workloads, one station: the reduced P2 has one column."""
    num_slots, num_users = 3, 7
    instance = small_instance(
        num_slots=num_slots,
        num_users=num_users,
        attachment=np.full((num_slots, num_users), 2, dtype=int),
        workloads=np.full(num_users, 1.5),
    )
    result, controller = run_aggregated(
        instance, AggregationConfig(lambda_buckets=8)
    )
    assert_feasible(result)
    for report in controller.last_reports:
        assert report.cohorts == 1
        assert report.users == num_users
        assert report.spread == 0.0
        assert report.error_bound == 0.0


def test_mid_run_cohort_churn_stays_feasible_and_reported():
    """Users hop stations every slot; membership is rebuilt per slot."""
    instance = small_instance(num_slots=6, num_users=10, seed=21)
    result, controller = run_aggregated(
        instance, AggregationConfig(lambda_buckets=4)
    )
    assert_feasible(result)
    assert len(controller.last_reports) == 6
    # Churn varies the cohort structure across slots on this seed.
    assert len({r.cohorts for r in controller.last_reports}) > 1
    for report in controller.last_reports:
        assert report.disagg_error is not None
        assert np.isfinite(report.disagg_error)


def test_keep_schedule_false_under_aggregation():
    instance = small_instance()
    system = SystemDescription.from_instance(instance)
    config = AggregationConfig(lambda_buckets=4)
    kept = simulate(
        AggregatedController(system=system, config=config),
        iter_observations(instance),
        system,
    )
    dropped = simulate(
        AggregatedController(system=system, config=config),
        iter_observations(instance),
        system,
        keep_schedule=False,
    )
    assert kept.schedule is not None
    assert dropped.schedule is None
    assert dropped.total_cost == pytest.approx(kept.total_cost, rel=1e-12)


def test_simulate_aggregation_rejects_controllers_without_support():
    instance = small_instance()
    system = SystemDescription.from_instance(instance)
    with pytest.raises(ValueError, match="aggregation"):
        simulate(
            GreedyController(system=system),
            iter_observations(instance),
            system,
            aggregation=AggregationConfig(),
        )


def test_simulate_aggregation_wraps_regularized_controller():
    instance = small_instance()
    system = SystemDescription.from_instance(instance)
    controller = OnlineRegularizedAllocator().as_controller(system)
    reference, _ = run_aggregated(instance, AggregationConfig(lambda_buckets=4))
    wrapped = simulate(
        controller,
        iter_observations(instance),
        system,
        aggregation=AggregationConfig(lambda_buckets=4),
    )
    assert wrapped.total_cost == pytest.approx(
        reference.total_cost, rel=1e-12
    )


def test_reset_reproduces_a_fresh_run():
    instance = small_instance()
    system = SystemDescription.from_instance(instance)
    controller = AggregatedController(
        system=system, config=AggregationConfig(lambda_buckets=4)
    )
    first = simulate(controller, iter_observations(instance), system)
    second = simulate(controller, iter_observations(instance), system)
    assert second.total_cost == pytest.approx(first.total_cost, rel=1e-12)
    assert len(controller.last_reports) == instance.num_slots


def test_get_state_set_state_resume_matches_uninterrupted_run():
    instance = small_instance(num_slots=6)
    system = SystemDescription.from_instance(instance)
    config = AggregationConfig(lambda_buckets=4)
    continuous = AggregatedController(system=system, config=config)
    continuous.reset()
    observations = list(iter_observations(instance))
    full = [continuous.observe(obs) for obs in observations]

    first = AggregatedController(system=system, config=config)
    first.reset()
    for obs in observations[:3]:
        first.observe(obs)
    snapshot = first.get_state()

    second = AggregatedController(system=system, config=config)
    second.reset()
    second.set_state(snapshot)
    resumed = [second.observe(obs) for obs in observations[3:]]
    for expected, got in zip(full[3:], resumed):
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"lambda_buckets": -1},
        {"shards": 0},
        {"workers": -2},
    ],
)
def test_aggregation_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        AggregationConfig(**kwargs)


def test_bucket_spec_corner_cases():
    # All-equal workloads degenerate to a single bucket.
    spec = BucketSpec.from_workloads(np.full(5, 2.0), 8)
    assert spec.num_buckets == 1
    assert np.array_equal(spec.assign(np.full(5, 2.0)), np.zeros(5, dtype=int))
    # num_buckets=1 puts everyone together regardless of spread.
    spec = BucketSpec.from_workloads(np.array([0.5, 7.0]), 1)
    assert spec.num_buckets == 1
    assert np.array_equal(spec.assign(np.array([0.5, 7.0])), [0, 0])
    # Out-of-range workloads clip into the edge buckets.
    spec = BucketSpec.from_workloads(np.array([1.0, 2.0, 4.0]), 2)
    assert spec.assign(np.array([0.01]))[0] == 0
    assert spec.assign(np.array([100.0]))[0] == spec.num_buckets - 1
    # Empty or nonpositive workloads are rejected.
    with pytest.raises(ValueError):
        BucketSpec.from_workloads(np.array([]), 4)
    with pytest.raises(ValueError):
        BucketSpec.from_workloads(np.array([1.0, -0.5]), 4)


def test_build_cohorts_rejects_misaligned_inputs():
    spec = BucketSpec.from_workloads(np.array([1.0, 2.0]), 2)
    with pytest.raises(ValueError, match="index-aligned"):
        build_cohorts(np.array([0, 1, 0]), np.array([1.0, 2.0]), spec)


def test_dense_and_sparse_key_paths_agree():
    """Huge station ids force the np.unique fallback; results must match."""
    rng = np.random.default_rng(7)
    lam = rng.uniform(0.5, 5.0, size=40)
    att = rng.integers(0, 4, size=40)
    spec = BucketSpec.from_workloads(lam, 4)
    dense = build_cohorts(att, lam, spec)
    sparse = build_cohorts(att + (1 << 40), lam, spec)
    assert np.array_equal(dense.cohort_of, sparse.cohort_of)
    assert np.array_equal(dense.sizes, sparse.sizes)
    np.testing.assert_allclose(dense.workloads, sparse.workloads)
    np.testing.assert_allclose(dense.member_share, sparse.member_share)
    assert np.array_equal(
        np.asarray(sparse.stations) - (1 << 40), np.asarray(dense.stations)
    )
