"""SlotStepper: the extracted per-slot body must equal the batch loop.

``simulate()`` is now a thin driver over :class:`SlotStepper`; these
tests pin the refactor's contract — driving the stepper one observation
at a time (the live service's mode) produces bit-identical numbers to
the batch call, and lifecycle edges (idempotent start, empty finish,
mid-stream snapshots) behave.
"""

import numpy as np
import pytest

from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.observations import (
    SystemDescription,
    observations_from_instance,
)
from repro.simulation.hooks import SlotHook
from repro.simulation.spine import SlotStepper, simulate
from tests.conftest import make_tiny_instance


def _setup(seed: int = 0):
    instance = make_tiny_instance(seed=seed)
    system = SystemDescription.from_instance(instance)
    observations = observations_from_instance(instance)
    return system, observations


def _controller(system):
    return OnlineRegularizedAllocator().as_controller(system)


class TestStepperEqualsSimulate:
    def test_step_by_step_is_bit_identical_to_batch(self):
        system, observations = _setup()
        batch = simulate(_controller(system), observations, system)

        stepper = SlotStepper(_controller(system), system)
        stepper.start()
        for observation in observations:
            stepper.step(observation)
        streamed = stepper.finish()

        assert streamed.total_cost == batch.total_cost
        assert np.array_equal(
            streamed.breakdown.operation, batch.breakdown.operation
        )
        assert streamed.feasibility == batch.feasibility
        assert batch.schedule is not None and streamed.schedule is not None
        assert np.array_equal(streamed.schedule.x, batch.schedule.x)

    def test_memory_bounded_mode_drops_the_schedule(self):
        system, observations = _setup(seed=1)
        stepper = SlotStepper(_controller(system), system, keep_schedule=False)
        for observation in observations:
            stepper.step(observation)
        result = stepper.finish()
        assert result.schedule is None
        assert result.slots == len(observations)

    def test_checkpoint_resume_matches_uninterrupted(self):
        system, observations = _setup(seed=2)
        batch = simulate(_controller(system), observations, system)

        first = SlotStepper(_controller(system), system)
        for observation in observations[:2]:
            first.step(observation)
        second = SlotStepper(
            _controller(system), system, resume_from=first.checkpoint()
        )
        for observation in observations[2:]:
            second.step(observation)
        resumed = second.finish()
        assert resumed.total_slots == len(observations)
        assert resumed.total_cost == pytest.approx(batch.total_cost, rel=1e-9)


class TestStepperLifecycle:
    def test_finish_requires_at_least_one_slot(self):
        system, _ = _setup()
        stepper = SlotStepper(_controller(system), system)
        with pytest.raises(ValueError, match="at least one observation"):
            stepper.finish()

    def test_start_is_idempotent(self):
        system, observations = _setup()

        class CountingHook(SlotHook):
            starts = 0

            def on_run_start(self, system, controller):
                CountingHook.starts += 1

        stepper = SlotStepper(_controller(system), system, hooks=[CountingHook()])
        stepper.start()
        stepper.start()
        stepper.step(observations[0])
        assert CountingHook.starts == 1

    def test_result_is_a_live_snapshot(self):
        system, observations = _setup()
        stepper = SlotStepper(_controller(system), system)
        stepper.step(observations[0])
        mid = stepper.result()
        assert mid.slots == 1
        stepper.step(observations[1])
        assert stepper.result().slots == 2
        assert stepper.result().total_cost > mid.total_cost
