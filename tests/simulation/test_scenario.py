"""Tests for the scenario builder."""

import numpy as np
import pytest

from repro.core.problem import CostWeights
from repro.mobility.random_walk import RandomWalkMobility
from repro.simulation.scenario import Scenario
from repro.topology.generators import ring_topology
from repro.topology.metro import rome_metro_topology


class TestScenarioBuild:
    def test_default_shape(self):
        instance = Scenario(num_users=5, num_slots=3).build(seed=1)
        assert instance.num_clouds == 15  # Rome metro default
        assert instance.num_users == 5
        assert instance.num_slots == 3

    def test_deterministic_per_seed(self):
        scenario = Scenario(num_users=4, num_slots=3)
        a = scenario.build(seed=9)
        b = scenario.build(seed=9)
        assert np.array_equal(a.workloads, b.workloads)
        assert np.array_equal(a.op_prices, b.op_prices)
        assert np.array_equal(a.attachment, b.attachment)

    def test_seeds_differ(self):
        scenario = Scenario(num_users=4, num_slots=3)
        a = scenario.build(seed=1)
        b = scenario.build(seed=2)
        assert not np.array_equal(a.op_prices, b.op_prices)

    def test_capacity_overprovisioning(self):
        instance = Scenario(num_users=8, num_slots=4, overprovision=1.25).build(seed=3)
        assert np.sum(instance.capacities) == pytest.approx(
            1.25 * instance.total_workload
        )

    def test_custom_topology_and_mobility(self):
        topo = ring_topology(5)
        scenario = Scenario(
            topology=topo,
            mobility=RandomWalkMobility(topo),
            num_users=4,
            num_slots=3,
        )
        instance = scenario.build(seed=1)
        assert instance.num_clouds == 5
        assert np.all(instance.access_delay == 0.0)  # walkers sit on stations

    def test_mobility_topology_mismatch_detected(self):
        scenario = Scenario(
            topology=ring_topology(5),
            mobility=RandomWalkMobility(rome_metro_topology()),
            num_users=3,
            num_slots=2,
        )
        with pytest.raises(ValueError, match="disagree"):
            scenario.build(seed=1)

    def test_workload_distribution_applied(self):
        uniform = Scenario(
            num_users=300, num_slots=1, workload_distribution="uniform"
        ).build(seed=5)
        power = Scenario(
            num_users=300, num_slots=1, workload_distribution="power"
        ).build(seed=5)
        # Power-law workloads are right-skewed (mean above the median);
        # uniform ones are symmetric.
        power_skew = np.mean(power.workloads) - np.median(power.workloads)
        uniform_skew = np.mean(uniform.workloads) - np.median(uniform.workloads)
        assert power_skew > uniform_skew + 0.2

    def test_with_mu(self):
        scenario = Scenario(num_users=3, num_slots=2).with_mu(7.0)
        assert scenario.weights.mu == 7.0
        instance = scenario.build(seed=1)
        assert instance.weights.mu == 7.0

    def test_with_users(self):
        scenario = Scenario(num_users=3, num_slots=2).with_users(11)
        assert scenario.build(seed=1).num_users == 11

    def test_weights_propagate(self):
        scenario = Scenario(
            num_users=3, num_slots=2, weights=CostWeights(static=2.0, dynamic=0.5)
        )
        assert scenario.build(seed=1).weights.static == 2.0

    def test_delay_price_scales_inter_cloud_delay(self):
        cheap = Scenario(num_users=3, num_slots=2, delay_price_per_km=1.0).build(seed=1)
        dear = Scenario(num_users=3, num_slots=2, delay_price_per_km=2.0).build(seed=1)
        assert np.allclose(dear.inter_cloud_delay, 2.0 * cheap.inter_cloud_delay)
