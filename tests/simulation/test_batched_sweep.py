"""The batched sweep runner must be indistinguishable from the serial one.

``run_cells_batched`` reroutes every regularized allocator's structured-IPM
solves through the lockstep batch; everything the sweep produces — cost
breakdowns, schedules, ratios, telemetry aggregates — must be bit-identical
to ``SweepExecutor.run_cells`` at any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.core.regularization import OnlineRegularizedAllocator
from repro.parallel import SweepCell, SweepExecutor
from repro.simulation import run_cells_batched
from repro.simulation.scenario import Scenario
from repro.telemetry import telemetry_session


def _cells(seeds, *, num_users=4, num_slots=3, keep_schedule=True):
    scenario = Scenario(num_users=num_users, num_slots=num_slots)
    algorithms = (
        OfflineOptimal(),
        OnlineGreedy(),
        OnlineRegularizedAllocator(eps1=0.5, eps2=0.5),
    )
    return [
        SweepCell(
            key=("cell", k),
            scenario=scenario,
            algorithms=algorithms,
            seed=seed,
            keep_schedule=keep_schedule,
        )
        for k, seed in enumerate(seeds)
    ]


def assert_sweeps_identical(serial, batched):
    assert [r.key for r in serial] == [r.key for r in batched]
    for ser, bat in zip(serial, batched):
        assert ser.error is None, ser.error
        assert bat.error is None, bat.error
        assert set(ser.value.results) == set(bat.value.results)
        for name, ser_run in ser.value.results.items():
            bat_run = bat.value.results[name]
            assert ser_run.breakdown.totals() == bat_run.breakdown.totals(), name
            if ser_run.schedule is None:
                assert bat_run.schedule is None
            else:
                assert np.array_equal(ser_run.schedule.x, bat_run.schedule.x), name
        assert ser.value.ratios() == bat.value.ratios()


class TestBitIdentity:
    def test_batched_matches_serial(self):
        cells = _cells([3, 11, 42])
        serial = SweepExecutor(max_workers=1).run_cells(cells)
        batched = run_cells_batched(cells, workers=1)
        assert_sweeps_identical(serial, batched)

    def test_batched_pool_matches_serial(self):
        cells = _cells([7, 19, 23, 5])
        serial = SweepExecutor(max_workers=1).run_cells(cells)
        batched = run_cells_batched(cells, workers=2)
        assert_sweeps_identical(serial, batched)

    def test_batched_shm_pool_matches_serial(self):
        cells = _cells([31, 8, 15, 16])
        serial = SweepExecutor(max_workers=1).run_cells(cells)
        batched = run_cells_batched(cells, workers=2, use_shm=True)
        assert_sweeps_identical(serial, batched)

    def test_dropped_schedules(self):
        cells = _cells([13, 21], keep_schedule=False)
        serial = SweepExecutor(max_workers=1).run_cells(cells)
        batched = run_cells_batched(cells, workers=1)
        assert_sweeps_identical(serial, batched)

    def test_single_cell(self):
        cells = _cells([77])
        serial = SweepExecutor(max_workers=1).run_cells(cells)
        batched = run_cells_batched(cells, workers=4)
        assert_sweeps_identical(serial, batched)

    def test_empty(self):
        assert run_cells_batched([]) == []


class TestTelemetryParity:
    def test_counter_aggregates_match_serial(self):
        cells = _cells([3, 11])
        with telemetry_session() as serial_registry:
            SweepExecutor(max_workers=1).run_cells(cells)
        with telemetry_session() as batched_registry:
            run_cells_batched(cells, workers=1)
        ser = serial_registry.snapshot()
        bat = batched_registry.snapshot()
        assert ser["counters"]["sweep.cells"] == bat["counters"]["sweep.cells"]
        for name in (
            "solver.ipm.solves",
            "solver.iterations",
            "solver.ipm.warm_start_hits",
        ):
            assert bat["counters"].get(name) == ser["counters"].get(name), name
        # The batched path additionally records what it batched.
        assert bat["counters"]["solver.batched.instances"] > 0
        assert "solver.batched.batch_size" in bat["histograms"]

    def test_batches_actually_form(self):
        # Concurrent cells must rendezvous into multi-instance batches, not
        # degrade to one-instance flushes (which would just be slower).
        cells = _cells([3, 11, 42])
        with telemetry_session() as registry:
            run_cells_batched(cells, workers=1)
        hist = registry.snapshot()["histograms"]["solver.batched.batch_size"]
        assert hist["max"] >= 2


class TestRunnerWiring:
    def test_run_ratio_sweep_batch_solves(self):
        from repro.experiments.runner import run_ratio_sweep

        scenario = Scenario(num_users=4, num_slots=2)
        algorithms = [
            OfflineOptimal(),
            OnlineGreedy(),
            OnlineRegularizedAllocator(eps1=0.5, eps2=0.5),
        ]
        cases = [("a", scenario, algorithms, 31), ("b", scenario, algorithms, 77)]
        plain = run_ratio_sweep(cases, repetitions=2, workers=1)
        batched = run_ratio_sweep(
            cases, repetitions=2, workers=1, batch_solves=True
        )
        for ser, bat in zip(plain, batched):
            assert ser.label == bat.label
            assert ser.stats == bat.stats

    def test_failing_cell_is_structured(self):
        class Boom:
            name = "boom"

            def run(self, instance):
                raise RuntimeError("injected failure")

        scenario = Scenario(num_users=3, num_slots=2)
        good = _cells([5])[0]
        bad = SweepCell(
            key="bad",
            scenario=scenario,
            algorithms=(OfflineOptimal(), Boom()),
            seed=5,
        )
        results = run_cells_batched([good, bad], workers=1)
        assert results[0].ok
        assert not results[1].ok
        assert "injected failure" in results[1].error


class TestScaleWiring:
    def test_experiment_scale_flags(self):
        from repro.experiments.settings import ExperimentScale

        scale = ExperimentScale(batch_solves=True, use_shm=True)
        assert scale.batch_solves and scale.use_shm
        assert not ExperimentScale().batch_solves

    def test_cli_flags_reach_scale(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["fig2", "--batch-solves", "--shm"])
        from repro.cli import _scale_from_args

        scale = _scale_from_args(args)
        assert scale.batch_solves
        assert scale.use_shm
