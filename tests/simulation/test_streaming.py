"""Tests for the streaming (slot-by-slot) online interface."""

import numpy as np
import pytest

from repro.baselines.greedy import OnlineGreedy
from repro.core.costs import total_cost
from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.streaming import (
    GreedyController,
    RegularizedController,
    SlotObservation,
    SystemDescription,
    observations_from_instance,
    replay,
)


class TestSystemDescription:
    def test_from_instance(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        assert system.num_clouds == tiny_instance.num_clouds
        assert system.num_users == tiny_instance.num_users
        assert np.array_equal(system.capacities, tiny_instance.capacities)


class TestObservations:
    def test_stream_covers_instance(self, tiny_instance):
        observations = observations_from_instance(tiny_instance)
        assert len(observations) == tiny_instance.num_slots
        for t, obs in enumerate(observations):
            assert obs.slot == t
            assert np.array_equal(obs.op_prices, tiny_instance.op_prices[t])
            assert np.array_equal(obs.attachment, tiny_instance.attachment[t])

    def test_observation_validation(self):
        with pytest.raises(ValueError):
            SlotObservation(
                slot=0,
                op_prices=np.ones((2, 2)),
                attachment=np.zeros(2, dtype=int),
                access_delay=np.zeros(2),
            )
        with pytest.raises(ValueError):
            SlotObservation(
                slot=0,
                op_prices=np.ones(2),
                attachment=np.zeros(2, dtype=int),
                access_delay=np.zeros(3),
            )


class TestReplayEquivalence:
    def test_regularized_controller_matches_batch(self, tiny_instance):
        """A controller that only ever sees one slot reproduces the batch
        algorithm — evidence the batch implementation is genuinely online."""
        system = SystemDescription.from_instance(tiny_instance)
        streamed = replay(RegularizedController(system), tiny_instance)
        batch = OnlineRegularizedAllocator().run(tiny_instance)
        assert np.allclose(streamed.x, batch.x, atol=1e-4)
        assert total_cost(streamed, tiny_instance) == pytest.approx(
            total_cost(batch, tiny_instance), rel=1e-5
        )

    def test_greedy_controller_matches_batch(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        streamed = replay(GreedyController(system), tiny_instance)
        batch = OnlineGreedy().run(tiny_instance)
        assert np.allclose(streamed.x, batch.x, atol=1e-6)

    def test_replay_resets_state(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        controller = RegularizedController(system)
        first = replay(controller, tiny_instance)
        second = replay(controller, tiny_instance)  # must reset, not resume
        assert np.allclose(first.x, second.x, atol=1e-6)

    def test_streamed_schedule_feasible(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        schedule = replay(RegularizedController(system), tiny_instance)
        schedule.require_feasible(tiny_instance, tol=1e-5)

    def test_manual_observation_sequence(self, tiny_instance):
        # Drive the controller by hand, out of band of any instance.
        system = SystemDescription.from_instance(tiny_instance)
        controller = GreedyController(system)
        obs = observations_from_instance(tiny_instance)[0]
        x = controller.observe(obs)
        assert x.shape == (tiny_instance.num_clouds, tiny_instance.num_users)
        assert np.all(x.sum(axis=0) >= np.asarray(tiny_instance.workloads) - 1e-6)
