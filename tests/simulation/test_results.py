"""Tests for result containers and aggregation."""

import numpy as np
import pytest

from repro.core.allocation import AllocationSchedule, FeasibilityReport
from repro.core.costs import CostBreakdown
from repro.core.problem import CostWeights
from repro.simulation.results import Comparison, RunResult, aggregate_ratios


def make_run(name: str, cost: float, num_slots: int = 2) -> RunResult:
    per_slot = np.full(num_slots, cost / num_slots)
    zeros = np.zeros(num_slots)
    breakdown = CostBreakdown(
        operation=per_slot,
        service_quality=zeros,
        reconfiguration=zeros,
        migration=zeros,
        weights=CostWeights(),
    )
    return RunResult(
        algorithm=name,
        schedule=AllocationSchedule.zeros(num_slots, 1, 1),
        breakdown=breakdown,
        feasibility=FeasibilityReport(0.0, 0.0, 0.0),
        wall_time_s=0.1,
    )


def make_comparison(costs: dict[str, float]) -> Comparison:
    return Comparison(
        results={name: make_run(name, cost) for name, cost in costs.items()},
        baseline="offline-opt",
    )


class TestComparison:
    def test_ratios(self):
        comparison = make_comparison(
            {"offline-opt": 10.0, "greedy": 15.0, "approx": 11.0}
        )
        assert comparison.ratio("greedy") == pytest.approx(1.5)
        assert comparison.ratio("approx") == pytest.approx(1.1)

    def test_ratios_sorted_ascending(self):
        comparison = make_comparison(
            {"offline-opt": 10.0, "b": 30.0, "a": 20.0}
        )
        assert list(comparison.ratios()) == ["offline-opt", "a", "b"]

    def test_improvement_over(self):
        comparison = make_comparison(
            {"offline-opt": 10.0, "greedy": 20.0, "approx": 12.0}
        )
        assert comparison.improvement_over("approx", "greedy") == pytest.approx(0.4)

    def test_missing_baseline(self):
        with pytest.raises(ValueError):
            make_comparison({"greedy": 5.0})

    def test_baseline_cost(self):
        comparison = make_comparison({"offline-opt": 7.0, "x": 9.0})
        assert comparison.baseline_cost == pytest.approx(7.0)


class TestRunResult:
    def test_total_cost(self):
        run = make_run("x", 12.0)
        assert run.total_cost == pytest.approx(12.0)

    def test_summary_keys(self):
        summary = make_run("x", 5.0).summary()
        for key in (
            "operation",
            "service_quality",
            "reconfiguration",
            "migration",
            "static",
            "dynamic",
            "total",
            "wall_time_s",
        ):
            assert key in summary


class TestAggregate:
    def test_mean_and_std(self):
        comparisons = [
            make_comparison({"offline-opt": 10.0, "greedy": 12.0}),
            make_comparison({"offline-opt": 10.0, "greedy": 18.0}),
        ]
        stats = aggregate_ratios(comparisons)
        mean, std = stats["greedy"]
        assert mean == pytest.approx(1.5)
        assert std == pytest.approx(0.3)

    def test_empty(self):
        assert aggregate_ratios([]) == {}
