"""Streaming <-> batch equivalence for EVERY shipped algorithm.

The batch ``run()`` of each algorithm is a thin adapter over the streaming
spine, so its schedule must be *bit-identical* to driving the algorithm's
controller form through :func:`simulate` by hand. This pins the tentpole
guarantee: there is exactly one execution path.
"""

import numpy as np
import pytest

from repro.baselines import (
    OfflineOptimal,
    OnlineGreedy,
    OperOpt,
    PerfOpt,
    PeriodicRebalance,
    RecedingHorizon,
    StaticAllocation,
    StatOpt,
)
from repro.core.costs import cost_breakdown
from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.observations import (
    OnlineController,
    SystemDescription,
    iter_observations,
)
from repro.simulation.spine import controller_for, simulate
from repro.simulation.streaming import replay

ALGORITHM_FACTORIES = {
    "online-approx": OnlineRegularizedAllocator,
    "online-greedy": OnlineGreedy,
    "perf-opt": PerfOpt,
    "oper-opt": OperOpt,
    "stat-opt": StatOpt,
    "static": StaticAllocation,
    "periodic-2": lambda: PeriodicRebalance(period=2),
    "lookahead-2": lambda: RecedingHorizon(window=2),
    "offline-opt": OfflineOptimal,
}


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
def test_batch_equals_streamed(name, small_instance):
    """run() and the controller form produce bit-identical schedules."""
    algorithm = ALGORITHM_FACTORIES[name]()
    batch = algorithm.run(small_instance)

    controller = controller_for(ALGORITHM_FACTORIES[name](), small_instance)
    assert isinstance(controller, OnlineController)
    system = SystemDescription.from_instance(small_instance)
    streamed = simulate(controller, iter_observations(small_instance), system)

    assert streamed.schedule is not None
    np.testing.assert_array_equal(batch.x, streamed.schedule.x)
    # Incremental accounting agrees with scoring the batch schedule post hoc.
    assert streamed.breakdown.total == pytest.approx(
        cost_breakdown(batch, small_instance).total, rel=1e-9
    )
    assert streamed.feasibility.worst() < 1e-5


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
def test_replay_equals_batch(name, small_instance):
    """The legacy replay() entry point rides the same spine."""
    algorithm = ALGORITHM_FACTORIES[name]()
    controller = controller_for(algorithm, small_instance)
    replayed = replay(controller, small_instance)
    np.testing.assert_array_equal(
        replayed.x, ALGORITHM_FACTORIES[name]().run(small_instance).x
    )


def test_causal_controllers_need_no_instance(small_instance):
    """Causal algorithms build controllers from the system description alone."""
    system = SystemDescription.from_instance(small_instance)
    for factory in (OnlineRegularizedAllocator, OnlineGreedy, PerfOpt, StaticAllocation):
        controller = controller_for(factory(), system=system)
        assert isinstance(controller, OnlineController)


def test_privileged_controllers_require_instance(small_instance):
    """Lookahead and offline-opt legitimately need the instance (the future)."""
    system = SystemDescription.from_instance(small_instance)
    for factory in (OfflineOptimal, lambda: RecedingHorizon(window=2)):
        algorithm = factory()
        assert not hasattr(algorithm, "as_controller")
        with pytest.raises(ValueError):
            controller_for(algorithm, system=system)


def test_regularized_solver_diagnostics_survive_streaming(tiny_instance):
    """last_solves keeps feeding dual-price extraction on streamed runs."""
    algorithm = OnlineRegularizedAllocator()
    system = SystemDescription.from_instance(tiny_instance)
    simulate(
        algorithm.as_controller(system), iter_observations(tiny_instance), system
    )
    assert len(algorithm.last_solves) == tiny_instance.num_slots
    assert algorithm.total_solver_iterations > 0
