"""The streaming spine: hooks, checkpoint/resume, and memory-bounded mode."""

import tracemalloc

import numpy as np
import pytest

from repro.baselines import OnlineGreedy
from repro.core.regularization import OnlineRegularizedAllocator
from repro.pricing.bandwidth import MigrationPrices
from repro.simulation.hooks import (
    FeasibilityHook,
    ProgressHook,
    SolverStatsHook,
    WallTimeHook,
)
from repro.simulation.observations import (
    SlotObservation,
    SystemDescription,
    iter_observations,
)
from repro.simulation.spine import (
    RecomputeController,
    ScheduleController,
    controller_for,
    simulate,
)


class TestSimulateBasics:
    def test_empty_stream_raises(self, tiny_instance):
        controller = controller_for(OnlineGreedy(), tiny_instance)
        system = SystemDescription.from_instance(tiny_instance)
        with pytest.raises(ValueError, match="at least one observation"):
            simulate(controller, [], system)

    def test_max_slots_leaves_stream_unconsumed(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        controller = controller_for(OnlineGreedy(), tiny_instance, system)
        stream = iter_observations(tiny_instance)
        result = simulate(controller, stream, system, max_slots=2)
        assert result.slots == result.total_slots == 2
        assert next(stream).slot == 2  # slots 2+ were never pulled

    def test_fallback_controller_replays_batch_schedule(self, tiny_instance):
        class BatchOnly:
            name = "batch-only"

            def run(self, instance):
                return OnlineGreedy().run(instance)

        controller = controller_for(BatchOnly(), tiny_instance)
        assert isinstance(controller, ScheduleController)
        system = SystemDescription.from_instance(tiny_instance)
        result = simulate(controller, iter_observations(tiny_instance), system)
        np.testing.assert_array_equal(
            result.schedule.x, OnlineGreedy().run(tiny_instance).x
        )

    def test_controller_for_needs_something(self):
        with pytest.raises(ValueError):
            controller_for(OnlineGreedy())


class TestCheckpointResume:
    @pytest.mark.parametrize(
        "factory", [OnlineGreedy, OnlineRegularizedAllocator], ids=["greedy", "approx"]
    )
    def test_interrupted_run_resumes_exactly(self, tiny_instance, factory):
        system = SystemDescription.from_instance(tiny_instance)
        reference = simulate(
            controller_for(factory(), tiny_instance, system),
            iter_observations(tiny_instance),
            system,
        )

        controller = controller_for(factory(), tiny_instance, system)
        observations = list(iter_observations(tiny_instance))
        first = simulate(controller, observations, system, max_slots=2)
        assert first.total_slots == 2

        second = simulate(
            controller,
            observations[2:],
            system,
            resume_from=first.checkpoint,
        )
        assert second.total_slots == tiny_instance.num_slots
        assert second.slots == tiny_instance.num_slots - 2
        # The resumed breakdown covers the WHOLE trajectory and matches the
        # uninterrupted run exactly.
        np.testing.assert_array_equal(
            second.breakdown.total_per_slot, reference.breakdown.total_per_slot
        )
        # The resumed leg's schedule holds the post-checkpoint slots.
        np.testing.assert_array_equal(second.schedule.x, reference.schedule.x[2:])
        assert second.feasibility.worst() == reference.feasibility.worst()

    def test_resume_needs_stateful_controller(self, tiny_instance):
        class Stateless:
            def observe(self, observation):
                return np.zeros((3, 4))

            def reset(self):
                pass

        system = SystemDescription.from_instance(tiny_instance)
        result = simulate(
            ScheduleController(plan=np.zeros((5, 3, 4))),
            iter_observations(tiny_instance),
            system,
        )
        with pytest.raises(ValueError, match="set_state"):
            simulate(
                Stateless(),
                iter_observations(tiny_instance),
                system,
                resume_from=result.checkpoint,
            )


class TestHooks:
    def test_hooks_observe_every_slot(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        algorithm = OnlineRegularizedAllocator()
        wall = WallTimeHook()
        solver = SolverStatsHook()
        feasibility = FeasibilityHook()
        ticks = []
        progress = ProgressHook(lambda done, costs: ticks.append(done), every=2)
        simulate(
            algorithm.as_controller(system),
            iter_observations(tiny_instance),
            system,
            hooks=[wall, solver, feasibility, progress],
        )
        n = tiny_instance.num_slots
        assert len(wall.per_slot_s) == n and wall.total_s > 0
        assert len(solver.iterations) == n
        assert solver.total_iterations == algorithm.total_solver_iterations
        assert len(feasibility.demand) == n
        assert feasibility.worst() < 1e-5
        assert ticks == [2, 4]

    def test_progress_hook_validates_every(self):
        with pytest.raises(ValueError):
            ProgressHook(lambda done, costs: None, every=0)


class TestAdapters:
    def test_schedule_controller_exhaustion(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        controller = ScheduleController(plan=np.zeros((2, 3, 4)))
        with pytest.raises(ValueError, match="plan exhausted"):
            simulate(controller, iter_observations(tiny_instance), system)

    def test_schedule_controller_validates_shape(self):
        with pytest.raises(ValueError):
            ScheduleController(plan=np.zeros((3, 4)))

    def test_recompute_controller_validates_period(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        with pytest.raises(ValueError):
            RecomputeController(
                system=system, solve=lambda observation: None, period=0
            )


class TestMemoryBoundedMode:
    def test_long_horizon_without_materializing_schedule(self):
        """A keep_schedule=False run completes a horizon whose full (T, I, J)
        schedule would dwarf the spine's actual peak allocation."""
        num_slots, num_clouds, num_users = 6000, 20, 60
        system = SystemDescription(
            workloads=np.ones(num_users),
            capacities=np.full(num_clouds, float(num_users)),
            reconfig_prices=np.ones(num_clouds),
            migration_prices=MigrationPrices(
                out=np.ones(num_clouds), into=np.ones(num_clouds)
            ),
            inter_cloud_delay=np.zeros((num_clouds, num_clouds)),
        )
        allocation = np.zeros((num_clouds, num_users))
        allocation[0] = 1.0  # everyone at cloud 0: feasible, cheap to emit
        controller = RecomputeController(
            system=system, solve=lambda observation: allocation, period=None
        )

        op_prices = np.ones(num_clouds)
        attachment = np.zeros(num_users, dtype=int)
        access_delay = np.zeros(num_users)

        def stream():
            for t in range(num_slots):
                yield SlotObservation(
                    slot=t,
                    op_prices=op_prices,
                    attachment=attachment,
                    access_delay=access_delay,
                )

        hypothetical_schedule_bytes = num_slots * num_clouds * num_users * 8
        tracemalloc.start()
        try:
            result = simulate(controller, stream(), system, keep_schedule=False)
            _, peak_bytes = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        assert result.schedule is None
        assert result.total_slots == num_slots
        assert result.breakdown.operation.shape == (num_slots,)
        assert result.feasibility.worst() == 0.0
        # The whole point: the horizon was processed in a fraction of what
        # the materialized schedule alone would have needed.
        assert peak_bytes * 10 < hypothetical_schedule_bytes, (
            f"peak {peak_bytes} bytes vs hypothetical schedule "
            f"{hypothetical_schedule_bytes} bytes"
        )

    def test_keep_schedule_false_matches_kept_costs(self, tiny_instance):
        system = SystemDescription.from_instance(tiny_instance)
        kept = simulate(
            controller_for(OnlineGreedy(), tiny_instance, system),
            iter_observations(tiny_instance),
            system,
        )
        dropped = simulate(
            controller_for(OnlineGreedy(), tiny_instance, system),
            iter_observations(tiny_instance),
            system,
            keep_schedule=False,
        )
        assert dropped.schedule is None
        np.testing.assert_array_equal(
            dropped.breakdown.total_per_slot, kept.breakdown.total_per_slot
        )
        assert dropped.feasibility.worst() == kept.feasibility.worst()
