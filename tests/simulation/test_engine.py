"""Tests for the simulation engine."""

import pytest

from repro.baselines import OfflineOptimal, OnlineGreedy, StatOpt
from repro.core.allocation import AllocationSchedule
from repro.core.regularization import OnlineRegularizedAllocator
from repro.simulation.engine import compare_algorithms, run_algorithm


class BrokenAlgorithm:
    """Returns an all-zero (infeasible) schedule."""

    name = "broken"

    def run(self, instance):
        return AllocationSchedule.zeros(
            instance.num_slots, instance.num_clouds, instance.num_users
        )


class TestRunAlgorithm:
    def test_result_fields(self, tiny_instance):
        result = run_algorithm(OnlineGreedy(), tiny_instance)
        assert result.algorithm == "online-greedy"
        assert result.total_cost > 0
        assert result.wall_time_s >= 0
        assert result.feasibility.worst() <= 1e-5
        assert result.summary()["total"] == pytest.approx(result.total_cost)

    def test_infeasible_schedule_rejected(self, tiny_instance):
        with pytest.raises(ValueError, match="infeasible"):
            run_algorithm(BrokenAlgorithm(), tiny_instance)

    def test_infeasible_allowed_when_disabled(self, tiny_instance):
        result = run_algorithm(
            BrokenAlgorithm(), tiny_instance, require_feasible=False
        )
        assert result.feasibility.worst() > 0


class TestCompareAlgorithms:
    def test_offline_is_best(self, small_instance):
        comparison = compare_algorithms(
            [OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator(), StatOpt()],
            small_instance,
        )
        ratios = comparison.ratios()
        assert ratios["offline-opt"] == pytest.approx(1.0)
        for name, ratio in ratios.items():
            assert ratio >= 1.0 - 1e-6, name

    def test_missing_baseline_rejected(self, tiny_instance):
        with pytest.raises(ValueError, match="baseline"):
            compare_algorithms([OnlineGreedy()], tiny_instance)

    def test_custom_baseline(self, tiny_instance):
        comparison = compare_algorithms(
            [OnlineGreedy(), StatOpt()], tiny_instance, baseline="online-greedy"
        )
        assert comparison.ratio("online-greedy") == pytest.approx(1.0)
