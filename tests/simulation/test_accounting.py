"""CostAccumulator vs the batch cost model: exact agreement, slot by slot."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import OnlineGreedy
from repro.core.allocation import AllocationSchedule
from repro.core.costs import cost_breakdown
from repro.experiments.fig2 import fig2_scenario
from repro.experiments.settings import ExperimentScale
from repro.simulation.accounting import CostAccumulator
from repro.simulation.observations import SystemDescription, iter_observations
from tests.conftest import make_tiny_instance, random_schedule

seeds = st.integers(min_value=0, max_value=100_000)

#: The scale the golden-file tests pin (tests/experiments/test_golden.py).
GOLDEN_SCALE = ExperimentScale(num_users=6, num_slots=4, repetitions=1, seed=2017)


def accumulate(instance, x):
    """Feed a (T, I, J) trajectory through a fresh accumulator."""
    system = SystemDescription.from_instance(instance)
    accumulator = CostAccumulator(system)
    slot_costs = [
        accumulator.update(observation, x[observation.slot])
        for observation in iter_observations(instance)
    ]
    return accumulator, slot_costs


def assert_matches_batch(instance, x, *, tol=1e-9):
    """Incremental accounting must equal ``cost_breakdown`` to ``tol``."""
    accumulator, slot_costs = accumulate(instance, x)
    incremental = accumulator.breakdown()
    batch = cost_breakdown(AllocationSchedule(x), instance)
    for component in ("operation", "service_quality", "reconfiguration", "migration"):
        np.testing.assert_allclose(
            getattr(incremental, component),
            getattr(batch, component),
            rtol=tol,
            atol=tol,
            err_msg=component,
        )
    assert incremental.total == pytest.approx(batch.total, rel=tol)
    # The streamed per-slot records agree with the assembled breakdown too.
    np.testing.assert_allclose(
        [c.total for c in slot_costs], batch.total_per_slot, rtol=tol, atol=tol
    )


class TestMatchesBatchCostModel:
    @given(seed=seeds, num_slots=st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_random_instances(self, seed, num_slots):
        instance = make_tiny_instance(seed=seed % 9, num_slots=num_slots)
        x = random_schedule(instance, seed=seed)
        assert_matches_batch(instance, x)

    def test_fig2_golden_instance(self):
        instance = fig2_scenario(GOLDEN_SCALE).build(seed=GOLDEN_SCALE.seed)
        assert_matches_batch(instance, random_schedule(instance, seed=1))
        assert_matches_batch(instance, OnlineGreedy().run(instance).x)

    def test_fig4_golden_instance(self):
        instance = (
            fig2_scenario(GOLDEN_SCALE).with_mu(1e3).build(seed=GOLDEN_SCALE.seed)
        )
        assert_matches_batch(instance, random_schedule(instance, seed=2))
        assert_matches_batch(instance, OnlineGreedy().run(instance).x)


class TestAccumulatorBehavior:
    def test_empty_breakdown_raises(self, tiny_instance):
        accumulator = CostAccumulator(SystemDescription.from_instance(tiny_instance))
        with pytest.raises(ValueError):
            accumulator.breakdown()

    def test_totals_match_breakdown(self, tiny_instance):
        x = random_schedule(tiny_instance, seed=3)
        accumulator, _ = accumulate(tiny_instance, x)
        assert accumulator.totals() == accumulator.breakdown().totals()
        assert accumulator.total == accumulator.breakdown().total
        assert accumulator.num_slots == tiny_instance.num_slots

    def test_state_roundtrip_resumes_exactly(self, tiny_instance):
        x = random_schedule(tiny_instance, seed=4)
        system = SystemDescription.from_instance(tiny_instance)
        observations = list(iter_observations(tiny_instance))

        reference, _ = accumulate(tiny_instance, x)

        first = CostAccumulator(system)
        for observation in observations[:2]:
            first.update(observation, x[observation.slot])
        state = first.get_state()
        # Mutating the donor after the snapshot must not leak into the clone.
        first.update(observations[2], x[2])

        second = CostAccumulator(system)
        second.set_state(state)
        for observation in observations[2:]:
            second.update(observation, x[observation.slot])

        np.testing.assert_array_equal(
            second.breakdown().operation, reference.breakdown().operation
        )
        assert second.total == reference.total
