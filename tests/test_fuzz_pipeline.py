"""Fuzz the full pipeline: random scenario configurations must never break
the online algorithm's feasibility guarantee.

Hypothesis draws topology shapes, user/slot counts, price scales, weights,
and capacity headroom; for every draw the regularized allocator must
produce a feasible trajectory and never beat the offline optimum.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CostWeights,
    OfflineOptimal,
    OnlineRegularizedAllocator,
    Scenario,
    total_cost,
)
from repro.mobility import RandomWalkMobility, TaxiMobility
from repro.topology import grid_topology, ring_topology, rome_metro_topology


@st.composite
def scenario_configs(draw):
    topology_kind = draw(st.sampled_from(["ring", "grid", "metro"]))
    if topology_kind == "ring":
        topology = ring_topology(draw(st.integers(min_value=3, max_value=6)))
    elif topology_kind == "grid":
        topology = grid_topology(2, draw(st.integers(min_value=2, max_value=3)))
    else:
        topology = rome_metro_topology()
    mobility_kind = draw(st.sampled_from(["walk", "taxi"]))
    mobility = (
        RandomWalkMobility(topology)
        if mobility_kind == "walk"
        else TaxiMobility(topology)
    )
    return Scenario(
        topology=topology,
        mobility=mobility,
        num_users=draw(st.integers(min_value=1, max_value=5)),
        num_slots=draw(st.integers(min_value=1, max_value=3)),
        workload_distribution=draw(st.sampled_from(["power", "uniform", "normal"])),
        weights=CostWeights.from_mu(draw(st.sampled_from([0.1, 1.0, 10.0]))),
        overprovision=draw(st.sampled_from([1.1, 1.25, 2.0])),
        op_reference_price=draw(st.sampled_from([0.1, 0.3, 1.0])),
        delay_price_per_km=draw(st.sampled_from([0.5, 2.0])),
    )


@given(config=scenario_configs(), seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=12, deadline=None)
def test_online_always_feasible_never_beats_offline(config, seed):
    instance = config.build(seed=seed)
    schedule = OnlineRegularizedAllocator().run(instance)
    schedule.require_feasible(instance, tol=1e-5)
    offline_cost = total_cost(OfflineOptimal().run(instance), instance)
    online_cost = total_cost(schedule, instance)
    assert online_cost >= offline_cost - 1e-6 * max(1.0, abs(offline_cost))


@given(config=scenario_configs(), seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=8, deadline=None)
def test_instances_always_well_formed(config, seed):
    instance = config.build(seed=seed)
    assert instance.capacities.sum() >= instance.total_workload - 1e-9
    assert np.all(np.asarray(instance.op_prices) > 0)
    assert np.all(np.asarray(instance.workloads) >= 1)
    prices = instance.static_prices(0)
    assert prices.shape == (instance.num_clouds, instance.num_users)
    assert np.all(prices >= 0)
