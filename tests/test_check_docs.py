"""The docs reference checker must pass on the real docs and fail on rot.

`scripts/check_docs.py` is the CI gate that keeps README.md and docs/*.md
honest: every repo-rooted file path and every ``repro.*`` dotted symbol
they mention has to exist/import. These tests pin both directions —
green on the committed docs, red on a deliberately broken reference.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs.py"


def _run(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=False,
    )


class TestCommittedDocs:
    def test_default_scan_passes(self):
        result = _run()
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 stale reference(s)" in result.stdout


class TestBrokenDocs:
    def test_missing_path_fails(self, tmp_path):
        doc = tmp_path / "broken.md"
        doc.write_text("See `docs/DOES_NOT_EXIST_ANYWHERE.md` for details.\n")
        result = _run(str(doc))
        assert result.returncode == 1
        assert "missing path" in result.stdout
        assert "DOES_NOT_EXIST_ANYWHERE" in result.stdout

    def test_missing_symbol_fails(self, tmp_path):
        doc = tmp_path / "broken.md"
        doc.write_text(
            "Call `repro.telemetry.no_such_function()` and also "
            "`repro.not_a_module.thing`.\n"
        )
        result = _run(str(doc))
        assert result.returncode == 1
        assert "no_such_function" in result.stdout
        assert "not_a_module" in result.stdout

    def test_broken_markdown_link_fails(self, tmp_path):
        doc = tmp_path / "broken.md"
        doc.write_text("[dead](NOPE.md)\n")
        result = _run(str(doc))
        assert result.returncode == 1
        assert "broken link target" in result.stdout

    def test_line_numbers_reported(self, tmp_path):
        doc = tmp_path / "broken.md"
        doc.write_text("fine line\n\nbad `tests/ghost_test.py` here\n")
        result = _run(str(doc))
        assert ":3:" in result.stdout


class TestAcceptedReferences:
    def test_good_references_pass(self, tmp_path):
        doc = tmp_path / "good.md"
        doc.write_text(
            "Paths: `src/repro/cli.py`, `repro/telemetry/metrics.py`, "
            "`docs/OBSERVABILITY.md`, `benchmarks/results/parallel.txt`.\n"
            "Selector: `tests/simulation/test_spine.py::TestCheckpointResume`.\n"
            "Symbols: `repro.simulation.spine.simulate`, "
            "`repro.telemetry.MetricsRegistry`, `repro.analysis.load_manifest()`.\n"
            "Non-references: `--users/--slots`, `out.jsonl`, `a/b` math.\n"
        )
        result = _run(str(doc))
        assert result.returncode == 0, result.stdout

    def test_lazy_reexports_resolve(self, tmp_path):
        # Symbols provided via module __getattr__ must count as present.
        doc = tmp_path / "good.md"
        doc.write_text("`repro.parallel.SweepCell` stays importable.\n")
        result = _run(str(doc))
        assert result.returncode == 0, result.stdout
