"""Round-trip tests for figure-data CSV export."""

import pytest

from repro.experiments.runner import RatioPoint
from repro.io.figures import load_ratio_points_csv, save_ratio_points_csv


def make_points():
    return [
        RatioPoint(
            label="3pm",
            stats={"offline-opt": (1.0, 0.0), "online-approx": (1.15, 0.02)},
            comparisons=[],
        ),
        RatioPoint(
            label="4pm",
            stats={"offline-opt": (1.0, 0.0), "online-approx": (1.18, 0.01)},
            comparisons=[],
        ),
    ]


class TestFigureCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fig2.csv"
        save_ratio_points_csv(make_points(), path)
        data = load_ratio_points_csv(path)
        assert set(data) == {"3pm", "4pm"}
        mean, std = data["3pm"]["online-approx"]
        assert mean == pytest.approx(1.15)
        assert std == pytest.approx(0.02)

    def test_exact_float_round_trip(self, tmp_path):
        # repr-based serialization keeps full float precision.
        points = [
            RatioPoint(
                label="x",
                stats={"a": (1.123456789012345, 0.000000001234)},
                comparisons=[],
            )
        ]
        path = tmp_path / "exact.csv"
        save_ratio_points_csv(points, path)
        mean, std = load_ratio_points_csv(path)["x"]["a"]
        assert mean == 1.123456789012345
        assert std == 0.000000001234

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("label,algorithm,mean_ratio,std_ratio\n")
        with pytest.raises(ValueError, match="empty"):
            load_ratio_points_csv(path)

    def test_empty_points_list(self, tmp_path):
        path = tmp_path / "none.csv"
        save_ratio_points_csv([], path)
        with pytest.raises(ValueError):
            load_ratio_points_csv(path)
