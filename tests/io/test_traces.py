"""Round-trip tests for trace serialization."""

import numpy as np
import pytest

from repro.io.traces import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
    trace_from_dict,
    trace_to_dict,
)
from repro.mobility.base import MobilityTrace
from repro.mobility.taxi import TaxiMobility
from repro.topology.metro import rome_metro_topology


@pytest.fixture
def taxi_trace():
    topo = rome_metro_topology()
    return TaxiMobility(topo).generate(4, 5, np.random.default_rng(0))


@pytest.fixture
def plain_trace():
    return MobilityTrace(
        attachment=np.array([[0, 1], [2, 1]]),
        access_delay=np.array([[0.5, 0.0], [1.5, 0.25]]),
        num_clouds=3,
    )


class TestDictRoundTrip:
    def test_with_positions(self, taxi_trace):
        restored = trace_from_dict(trace_to_dict(taxi_trace))
        assert np.array_equal(restored.attachment, taxi_trace.attachment)
        assert np.allclose(restored.access_delay, taxi_trace.access_delay)
        assert np.allclose(restored.positions, taxi_trace.positions)

    def test_without_positions(self, plain_trace):
        restored = trace_from_dict(trace_to_dict(plain_trace))
        assert restored.positions is None
        assert np.array_equal(restored.attachment, plain_trace.attachment)


class TestJsonRoundTrip:
    def test_round_trip(self, taxi_trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace_json(taxi_trace, path)
        restored = load_trace_json(path)
        assert np.array_equal(restored.attachment, taxi_trace.attachment)
        assert restored.num_clouds == taxi_trace.num_clouds


class TestCsvRoundTrip:
    def test_round_trip_with_positions(self, taxi_trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(taxi_trace, path)
        restored = load_trace_csv(path, num_clouds=taxi_trace.num_clouds)
        assert np.array_equal(restored.attachment, taxi_trace.attachment)
        assert np.allclose(restored.access_delay, taxi_trace.access_delay)
        assert np.allclose(restored.positions, taxi_trace.positions)

    def test_round_trip_without_positions(self, plain_trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(plain_trace, path)
        restored = load_trace_csv(path, num_clouds=3)
        assert restored.positions is None
        assert np.array_equal(restored.attachment, plain_trace.attachment)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("slot,user,cloud,access_delay\n")
        with pytest.raises(ValueError, match="empty"):
            load_trace_csv(path, num_clouds=2)

    def test_missing_entries_rejected(self, tmp_path):
        path = tmp_path / "partial.csv"
        path.write_text(
            "slot,user,cloud,access_delay\n0,0,1,0.0\n1,1,0,0.0\n"
        )
        with pytest.raises(ValueError, match="missing"):
            load_trace_csv(path, num_clouds=2)
