"""Round-trip tests for result serialization."""

import numpy as np
import pytest

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.io.results import (
    comparison_to_dict,
    load_comparison_summary,
    load_schedule_npz,
    run_result_to_dict,
    save_comparison_json,
    save_schedule_npz,
)
from repro.simulation.engine import compare_algorithms, run_algorithm


@pytest.fixture(scope="module")
def comparison(small_instance):
    return compare_algorithms([OfflineOptimal(), OnlineGreedy()], small_instance)


class TestRunResultDict:
    def test_fields(self, small_instance):
        result = run_algorithm(OnlineGreedy(), small_instance)
        data = run_result_to_dict(result)
        assert data["algorithm"] == "online-greedy"
        assert data["costs"]["total"] == pytest.approx(result.total_cost)
        assert len(data["per_slot_total"]) == small_instance.num_slots
        assert "schedule" not in data

    def test_schedule_opt_in(self, small_instance):
        result = run_algorithm(OnlineGreedy(), small_instance)
        data = run_result_to_dict(result, include_schedule=True)
        assert np.asarray(data["schedule"]).shape == result.schedule.x.shape


class TestComparisonJson:
    def test_round_trip(self, comparison, tmp_path):
        path = tmp_path / "comparison.json"
        save_comparison_json(comparison, path)
        loaded = load_comparison_summary(path)
        assert loaded["baseline"] == "offline-opt"
        assert loaded["ratios"]["offline-opt"] == pytest.approx(1.0)
        assert loaded["ratios"]["online-greedy"] == pytest.approx(
            comparison.ratio("online-greedy")
        )
        assert set(loaded["runs"]) == {"offline-opt", "online-greedy"}

    def test_dict_structure(self, comparison):
        data = comparison_to_dict(comparison)
        assert data["baseline_cost"] == pytest.approx(comparison.baseline_cost)


class TestScheduleNpz:
    def test_round_trip(self, tmp_path):
        x = np.random.default_rng(0).uniform(size=(3, 2, 4))
        path = tmp_path / "schedule.npz"
        save_schedule_npz(path, x)
        assert np.allclose(load_schedule_npz(path), x)
