"""Tests for the solver base types (ConvexProgram, SolverResult)."""

import numpy as np
import pytest
from scipy import sparse

from repro.solvers.base import ConvexProgram, SolverResult


def make_program():
    # Feasible region: x0 + x1 >= 1, x >= 0.
    return ConvexProgram(
        objective=lambda v: float(v @ v),
        gradient=lambda v: 2 * v,
        constraint_matrix=sparse.csr_matrix(np.array([[1.0, 1.0]])),
        constraint_lower=np.array([1.0]),
        x_lower=np.zeros(2),
        x0=np.array([1.0, 1.0]),
    )


class TestConvexProgram:
    def test_dimensions(self):
        program = make_program()
        assert program.num_variables == 2
        assert program.num_constraints == 1

    def test_constraint_slack(self):
        program = make_program()
        slack = program.constraint_slack(np.array([2.0, 0.5]))
        assert slack == pytest.approx([1.5])

    def test_max_violation_feasible_point(self):
        program = make_program()
        assert program.max_violation(np.array([0.5, 0.5])) == 0.0

    def test_max_violation_constraint(self):
        program = make_program()
        assert program.max_violation(np.array([0.2, 0.2])) == pytest.approx(0.6)

    def test_max_violation_bounds(self):
        program = make_program()
        assert program.max_violation(np.array([2.0, -0.3])) == pytest.approx(0.3)

    def test_max_violation_takes_worst(self):
        program = make_program()
        # Bound violation 0.5 vs constraint violation 1.0 - (-0.5 + 0.2).
        violation = program.max_violation(np.array([-0.5, 0.2]))
        assert violation == pytest.approx(1.3)

    def test_no_constraints(self):
        program = ConvexProgram(
            objective=lambda v: 0.0,
            gradient=lambda v: np.zeros_like(v),
            constraint_matrix=sparse.csr_matrix((0, 2)),
            constraint_lower=np.zeros(0),
            x_lower=np.zeros(2),
            x0=np.ones(2),
        )
        assert program.max_violation(np.array([1.0, 1.0])) == 0.0


class TestSolverResult:
    def test_defaults(self):
        result = SolverResult(x=np.zeros(3), objective=1.5)
        assert result.iterations == 0
        assert result.backend == ""
        assert result.duals == {}

    def test_frozen(self):
        result = SolverResult(x=np.zeros(1), objective=0.0)
        with pytest.raises(AttributeError):
            result.objective = 2.0
