"""Deadline budgets: partial solves, feasibility, and session resets.

The serving contract (docs/SERVING.md) rests on three solver-level
guarantees: a fired budget yields a *feasible* partial iterate, a ``None``
budget is bit-identical to no budget at all, and session-boundary resets
clear every piece of cross-solve state (the fallback circuit breaker).
"""

import numpy as np
import pytest

from repro.core.regularization import OnlineRegularizedAllocator
from repro.core.subproblem import RegularizedSubproblem
from repro.solvers.base import ConvexProgram, SolveBudget, SolverError
from repro.solvers.interior_point import InteriorPointBackend
from repro.solvers.registry import (
    FallbackBackend,
    get_backend,
    reset_session,
)
from repro.solvers.scipy_backend import ScipyTrustConstrBackend
from tests.conftest import make_tiny_instance


def _program(seed: int = 0, budget: SolveBudget | None = None) -> ConvexProgram:
    instance = make_tiny_instance(seed=seed)
    rng = np.random.default_rng(seed + 7)
    shape = (instance.num_clouds, instance.num_users)
    x_prev = rng.uniform(0.0, 1.0, size=shape) * np.asarray(instance.workloads)
    sub = RegularizedSubproblem.from_instance(instance, 0, x_prev, eps1=1.0, eps2=1.0)
    program = sub.build_program()
    program.budget = budget
    return program


class TestSolveBudget:
    def test_exhausted_by_either_limit(self):
        budget = SolveBudget(deadline_s=1.0, max_iterations=10)
        assert not budget.exhausted(elapsed_s=0.5, iterations=5)
        assert budget.exhausted(elapsed_s=1.0, iterations=5)
        assert budget.exhausted(elapsed_s=0.5, iterations=10)

    def test_unset_limits_never_fire(self):
        budget = SolveBudget()
        assert not budget.exhausted(elapsed_s=1e9, iterations=10**9)


class TestPartialSolves:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_iteration_budget_yields_feasible_partial(self, seed):
        program = _program(seed, budget=SolveBudget(max_iterations=1))
        result = InteriorPointBackend().solve(program, tol=1e-10)
        assert result.partial
        assert result.iterations <= 1
        # The barrier iterate is strictly interior, hence feasible.
        assert np.all(result.x >= program.x_lower - 1e-9)
        slack = program.constraint_matrix @ result.x - program.constraint_lower
        assert float(slack.min()) >= -1e-9

    def test_zero_deadline_fires_immediately_but_stays_feasible(self):
        program = _program(3, budget=SolveBudget(deadline_s=0.0))
        result = InteriorPointBackend().solve(program, tol=1e-10)
        assert result.partial
        assert np.all(result.x >= program.x_lower - 1e-9)
        slack = program.constraint_matrix @ result.x - program.constraint_lower
        assert float(slack.min()) >= -1e-9

    def test_none_budget_is_bit_identical_to_no_budget(self):
        backend = InteriorPointBackend()
        plain = backend.solve(_program(4), tol=1e-10)
        budgeted = backend.solve(
            _program(4, budget=SolveBudget()), tol=1e-10
        )
        assert not plain.partial and not budgeted.partial
        assert np.array_equal(plain.x, budgeted.x)
        assert plain.objective == budgeted.objective
        assert plain.iterations == budgeted.iterations

    def test_generous_budget_converges_like_no_budget(self):
        backend = InteriorPointBackend()
        plain = backend.solve(_program(5), tol=1e-10)
        generous = backend.solve(
            _program(5, budget=SolveBudget(deadline_s=1e6, max_iterations=10**6)),
            tol=1e-10,
        )
        assert not generous.partial
        assert np.array_equal(plain.x, generous.x)

    def test_fallback_backend_passes_partial_through(self):
        backend = FallbackBackend(InteriorPointBackend(), ScipyTrustConstrBackend())
        result = backend.solve(
            _program(6, budget=SolveBudget(max_iterations=1)), tol=1e-10
        )
        assert result.partial


class TestDegradationLadder:
    def test_partial_slot_never_beats_attached_cloud_repair(self):
        # An attachment row that is capacity-feasible, so the ladder's
        # attached-cloud comparison is active: loads (6, 3, 1) vs (6, 5, 4).
        instance = make_tiny_instance(seed=2)
        instance.attachment[1] = [0, 1, 2, 0]
        x_prev = np.zeros((instance.num_clouds, instance.num_users))
        allocator = OnlineRegularizedAllocator(
            backend=InteriorPointBackend(), budget=SolveBudget(max_iterations=1)
        )
        x_t, result = allocator.step(instance, 1, x_prev)
        assert result.partial
        sub = RegularizedSubproblem.from_instance(
            instance, 1, x_prev, eps1=allocator.eps1, eps2=allocator.eps2
        )
        attached = np.zeros_like(x_t)
        attached[instance.attachment[1], np.arange(instance.num_users)] = (
            instance.workloads
        )
        assert sub.objective(x_t.ravel()) <= sub.objective(attached.ravel()) + 1e-9

    def test_unbudgeted_allocator_never_reports_partial(self):
        instance = make_tiny_instance(seed=3)
        x_prev = np.zeros((instance.num_clouds, instance.num_users))
        allocator = OnlineRegularizedAllocator(backend=InteriorPointBackend())
        _, result = allocator.step(instance, 0, x_prev)
        assert not result.partial


class _AlwaysFails:
    name = "always-fails"

    def solve(self, program, *, tol=1e-8):
        raise SolverError("injected failure")


class TestSessionReset:
    def test_reset_session_closes_an_open_circuit(self):
        backend = FallbackBackend(
            _AlwaysFails(), ScipyTrustConstrBackend(), failure_threshold=1
        )
        backend.solve(_program(0), tol=1e-8)
        assert backend.circuit_open
        backend.reset_session()
        assert not backend.circuit_open
        assert backend._consecutive_failures == 0

    def test_module_reset_accepts_instances_and_names(self):
        backend = FallbackBackend(
            _AlwaysFails(), ScipyTrustConstrBackend(), failure_threshold=1
        )
        backend.solve(_program(0), tol=1e-8)
        reset_session(backend)
        assert not backend.circuit_open
        # Registry names resolve; stateless backends are a silent no-op.
        reset_session("auto")
        reset_session("ipm")

    def test_reset_session_recurses_into_wrapped_backends(self):
        inner = FallbackBackend(
            _AlwaysFails(), ScipyTrustConstrBackend(), failure_threshold=1
        )
        outer = FallbackBackend(get_backend("ipm"), inner)
        inner.solve(_program(0), tol=1e-8)
        assert inner.circuit_open
        outer.reset_session()
        assert not inner.circuit_open
