"""Warm-started P2 solves: same optimum, measurably fewer iterations.

The regularizer keeps consecutive per-slot optima close (that is the whole
point of the entropic terms), so seeding slot t's solve with slot t-1's
solution lets the structured IPM start its barrier schedule lower. These
tests pin the contract: identical optima (to tolerance), strictly fewer
iterations over a multi-slot run, and graceful recovery from an infeasible
warm start.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.core.costs import total_cost
from repro.core.regularization import OnlineRegularizedAllocator
from repro.core.subproblem import RegularizedSubproblem
from repro.simulation.scenario import Scenario
from repro.solvers.base import ConvexProgram, starting_point
from repro.solvers.registry import get_backend


@pytest.fixture(scope="module")
def instance():
    return Scenario(num_users=8, num_slots=3).build(seed=42)


@pytest.fixture(scope="module")
def subproblem(instance):
    x_prev = np.zeros((instance.num_clouds, instance.num_users))
    return RegularizedSubproblem.from_instance(
        instance, 0, x_prev, eps1=1.0, eps2=1.0
    )


class TestWarmStartContract:
    def test_same_optimum_fewer_iterations_on_three_slots(self, instance):
        """Warm-started online run: same total cost, strictly fewer IPM
        iterations than cold-starting every slot."""
        cold = OnlineRegularizedAllocator(backend=get_backend("ipm"), warm_start=False)
        warm = OnlineRegularizedAllocator(backend=get_backend("ipm"), warm_start=True)
        cold_cost = total_cost(cold.run(instance), instance)
        warm_cost = total_cost(warm.run(instance), instance)
        assert warm_cost == pytest.approx(cold_cost, rel=1e-6)
        assert warm.total_solver_iterations < cold.total_solver_iterations
        # Slot 0 has no previous solution, so both start cold there; the
        # reduction must come from the genuinely warm-started slots.
        assert warm.last_solves[0].iterations == cold.last_solves[0].iterations
        for warm_solve, cold_solve in zip(warm.last_solves[1:], cold.last_solves[1:]):
            assert warm_solve.iterations < cold_solve.iterations

    def test_warm_program_same_objective_per_solve(self, subproblem):
        """One-shot check at the subproblem level for both backends."""
        ipm = get_backend("ipm")
        cold = ipm.solve(subproblem.build_program(), tol=1e-8)
        # Perturb the optimum slightly so the warm start is near, not at,
        # the solution (the realistic consecutive-slot situation).
        x_warm = 0.9 * cold.x + 0.1 * subproblem.interior_point()
        warm = ipm.solve(subproblem.build_program(x0=x_warm), tol=1e-8)
        assert warm.objective == pytest.approx(cold.objective, rel=1e-7)
        assert warm.iterations < cold.iterations

    def test_scipy_backend_accepts_warm_start(self, subproblem):
        scipy_backend = get_backend("scipy")
        cold = scipy_backend.solve(subproblem.build_program(), tol=1e-8)
        warm = scipy_backend.solve(
            subproblem.build_program(x0=cold.x), tol=1e-8
        )
        assert warm.objective == pytest.approx(cold.objective, rel=1e-6)


class TestInfeasibleWarmStart:
    def test_ipm_recovers_from_infeasible_x0(self, subproblem):
        """A zero allocation violates every demand constraint; the backend
        must fall back to its canonical interior point, not crash."""
        n = subproblem.num_clouds * subproblem.num_users
        cold = get_backend("ipm").solve(subproblem.build_program(), tol=1e-8)
        degenerate = get_backend("ipm").solve(
            subproblem.build_program(x0=np.zeros(n)), tol=1e-8
        )
        assert degenerate.objective == pytest.approx(cold.objective, rel=1e-7)

    def test_scipy_recovers_from_infeasible_x0(self, subproblem):
        n = subproblem.num_clouds * subproblem.num_users
        cold = get_backend("scipy").solve(subproblem.build_program(), tol=1e-8)
        degenerate = get_backend("scipy").solve(
            subproblem.build_program(x0=np.zeros(n)), tol=1e-8
        )
        assert degenerate.objective == pytest.approx(cold.objective, rel=1e-5)

    def test_auto_recovers_from_infeasible_x0(self, subproblem):
        n = subproblem.num_clouds * subproblem.num_users
        result = get_backend("auto").solve(
            subproblem.build_program(x0=np.zeros(n)), tol=1e-8
        )
        assert np.isfinite(result.objective)


class TestOptionalX0:
    def test_program_without_x0_reports_sizes(self):
        program = ConvexProgram(
            objective=lambda v: float(v @ v),
            gradient=lambda v: 2 * v,
            constraint_matrix=sparse.csr_matrix((0, 3)),
            constraint_lower=np.zeros(0),
            x_lower=np.zeros(3),
        )
        assert program.x0 is None
        assert program.num_variables == 3

    def test_starting_point_prefers_x0(self, subproblem):
        x0 = subproblem.interior_point() * 1.01
        program = subproblem.build_program(x0=x0)
        assert np.array_equal(starting_point(program), x0)

    def test_starting_point_uses_structure_interior(self, subproblem):
        program = subproblem.build_program()
        program.x0 = None
        assert np.array_equal(starting_point(program), subproblem.interior_point())

    def test_starting_point_falls_back_to_lower_bounds(self):
        program = ConvexProgram(
            objective=lambda v: float(v @ v),
            gradient=lambda v: 2 * v,
            constraint_matrix=sparse.csr_matrix((0, 2)),
            constraint_lower=np.zeros(0),
            x_lower=np.ones(2),
        )
        assert np.array_equal(starting_point(program), np.ones(2))

    def test_build_program_flags_warm_start(self, subproblem):
        assert subproblem.build_program().warm_start is False
        x0 = subproblem.interior_point()
        assert subproblem.build_program(x0=x0).warm_start is True
        assert (
            subproblem.build_program(x0=x0, warm_start=False).warm_start is False
        )
