"""Tests for the backend registry and the fallback wrapper."""

import numpy as np
import pytest
from scipy import sparse

from repro.solvers.base import ConvexProgram, SolverError, SolverResult
from repro.solvers.registry import (
    FallbackBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
)


class TestRegistry:
    def test_builtin_backends_present(self):
        names = available_backends()
        assert "scipy" in names
        assert "ipm" in names
        assert "auto" in names

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("glpk")

    def test_register_custom(self):
        class Dummy:
            name = "dummy"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=0.0, backend=self.name)

        register_backend("dummy-test", Dummy())
        try:
            assert get_backend("dummy-test").name == "dummy"
        finally:
            # Clean up so other tests see only the builtins.
            from repro.solvers import registry

            registry._BACKENDS.pop("dummy-test")

    def test_default_is_auto(self):
        assert default_backend() is get_backend("auto")


class TestFallback:
    @staticmethod
    def _simple_program():
        return ConvexProgram(
            objective=lambda v: float(v @ v),
            gradient=lambda v: 2 * v,
            constraint_matrix=sparse.csr_matrix((0, 2)),
            constraint_lower=np.zeros(0),
            x_lower=np.zeros(2),
            x0=np.ones(2),
        )

    def test_uses_primary_when_it_works(self):
        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=1.0, backend=self.name)

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                raise AssertionError("should not be called")

        fallback = FallbackBackend(Primary(), Secondary())
        result = fallback.solve(self._simple_program())
        assert result.backend == "primary"

    def test_falls_back_on_solver_error(self):
        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("nope")

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=2.0, backend=self.name)

        fallback = FallbackBackend(Primary(), Secondary())
        result = fallback.solve(self._simple_program())
        assert result.backend == "secondary"

    def test_primary_error_retained_on_fallback(self):
        """Regression: the primary's SolverError used to be silently
        discarded; it must be attached to the returned SolverResult."""

        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("barrier loop did not converge")

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=2.0, backend=self.name)

        fallback = FallbackBackend(Primary(), Secondary())
        result = fallback.solve(self._simple_program())
        assert result.backend == "secondary"
        assert result.primary_error == "primary: barrier loop did not converge"

    def test_primary_error_logged_on_fallback(self, caplog):
        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("woodbury singular")

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=2.0, backend=self.name)

        with caplog.at_level("WARNING", logger="repro.solvers.registry"):
            FallbackBackend(Primary(), Secondary()).solve(self._simple_program())
        assert "woodbury singular" in caplog.text

    def test_no_primary_error_when_primary_succeeds(self):
        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=1.0, backend=self.name)

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                raise AssertionError("should not be called")

        result = FallbackBackend(Primary(), Secondary()).solve(self._simple_program())
        assert result.primary_error is None

    def test_name_combines(self):
        class A:
            name = "a"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("x")

        class B:
            name = "b"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("y")

        assert FallbackBackend(A(), B()).name == "a+b"

    def test_auto_handles_unstructured_program(self):
        # The ipm primary rejects programs without structure; auto must
        # transparently fall back to scipy.
        result = get_backend("auto").solve(self._simple_program(), tol=1e-10)
        # trust-constr stops by its own criteria on this unconstrained
        # quadratic; what matters is that the fallback path produced a
        # near-optimal answer instead of raising.
        assert result.backend == "scipy-trust-constr"
        assert np.allclose(result.x, 0.0, atol=1e-2)
