"""Tests for the backend registry and the fallback wrapper."""

import numpy as np
import pytest
from scipy import sparse

from repro.solvers.base import ConvexProgram, SolverError, SolverResult
from repro.solvers.registry import (
    FallbackBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
)


class TestRegistry:
    def test_builtin_backends_present(self):
        names = available_backends()
        assert "scipy" in names
        assert "ipm" in names
        assert "auto" in names

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("glpk")

    def test_register_custom(self):
        class Dummy:
            name = "dummy"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=0.0, backend=self.name)

        register_backend("dummy-test", Dummy())
        try:
            assert get_backend("dummy-test").name == "dummy"
        finally:
            # Clean up so other tests see only the builtins.
            from repro.solvers import registry

            registry._BACKENDS.pop("dummy-test")

    def test_default_is_auto(self):
        assert default_backend() is get_backend("auto")


class TestFallback:
    @staticmethod
    def _simple_program():
        return ConvexProgram(
            objective=lambda v: float(v @ v),
            gradient=lambda v: 2 * v,
            constraint_matrix=sparse.csr_matrix((0, 2)),
            constraint_lower=np.zeros(0),
            x_lower=np.zeros(2),
            x0=np.ones(2),
        )

    def test_uses_primary_when_it_works(self):
        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=1.0, backend=self.name)

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                raise AssertionError("should not be called")

        fallback = FallbackBackend(Primary(), Secondary())
        result = fallback.solve(self._simple_program())
        assert result.backend == "primary"

    def test_falls_back_on_solver_error(self):
        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("nope")

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=2.0, backend=self.name)

        fallback = FallbackBackend(Primary(), Secondary())
        result = fallback.solve(self._simple_program())
        assert result.backend == "secondary"

    def test_primary_error_retained_on_fallback(self):
        """Regression: the primary's SolverError used to be silently
        discarded; it must be attached to the returned SolverResult."""

        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("barrier loop did not converge")

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=2.0, backend=self.name)

        fallback = FallbackBackend(Primary(), Secondary())
        result = fallback.solve(self._simple_program())
        assert result.backend == "secondary"
        assert result.primary_error == "primary: barrier loop did not converge"

    def test_primary_error_logged_on_fallback(self, caplog):
        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("woodbury singular")

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=2.0, backend=self.name)

        with caplog.at_level("WARNING", logger="repro.solvers.registry"):
            FallbackBackend(Primary(), Secondary()).solve(self._simple_program())
        assert "woodbury singular" in caplog.text

    def test_no_primary_error_when_primary_succeeds(self):
        class Primary:
            name = "primary"

            def solve(self, program, *, tol=1e-8):
                return SolverResult(x=program.x0, objective=1.0, backend=self.name)

        class Secondary:
            name = "secondary"

            def solve(self, program, *, tol=1e-8):
                raise AssertionError("should not be called")

        result = FallbackBackend(Primary(), Secondary()).solve(self._simple_program())
        assert result.primary_error is None

    def test_name_combines(self):
        class A:
            name = "a"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("x")

        class B:
            name = "b"

            def solve(self, program, *, tol=1e-8):
                raise SolverError("y")

        assert FallbackBackend(A(), B()).name == "a+b"

    def test_auto_handles_unstructured_program(self):
        # The ipm primary rejects programs without structure; auto must
        # transparently fall back to scipy.
        result = get_backend("auto").solve(self._simple_program(), tol=1e-10)
        # trust-constr stops by its own criteria on this unconstrained
        # quadratic; what matters is that the fallback path produced a
        # near-optimal answer instead of raising.
        assert result.backend == "scipy-trust-constr"
        assert np.allclose(result.x, 0.0, atol=1e-2)


class _CountingPrimary:
    """A primary that fails its first ``fail_first`` solves, then succeeds."""

    name = "primary"

    def __init__(self, fail_first=10**9):
        self.fail_first = fail_first
        self.calls = 0

    def solve(self, program, *, tol=1e-8):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise SolverError("broken")
        return SolverResult(x=program.x0, objective=1.0, backend=self.name)


class _CountingSecondary:
    """A secondary that always succeeds and counts its calls."""

    name = "secondary"

    def __init__(self):
        self.calls = 0

    def solve(self, program, *, tol=1e-8):
        self.calls += 1
        return SolverResult(x=program.x0, objective=2.0, backend=self.name)


class TestCircuitBreaker:
    """Regression: a systematically broken primary used to be retried on
    every solve; the breaker must skip it after N consecutive failures."""

    @staticmethod
    def _program():
        return TestFallback._simple_program()

    def test_opens_after_threshold_consecutive_failures(self):
        primary, secondary = _CountingPrimary(), _CountingSecondary()
        fallback = FallbackBackend(
            primary, secondary, failure_threshold=3, cooldown=5
        )
        program = self._program()
        for _ in range(3):
            assert not fallback.circuit_open
            fallback.solve(program)
        assert fallback.circuit_open
        assert primary.calls == 3

    def test_open_circuit_skips_primary_entirely(self):
        primary, secondary = _CountingPrimary(), _CountingSecondary()
        fallback = FallbackBackend(
            primary, secondary, failure_threshold=2, cooldown=4
        )
        program = self._program()
        for _ in range(2):
            fallback.solve(program)
        for _ in range(4):
            result = fallback.solve(program)
            assert result.backend == "secondary"
            assert result.primary_error == "primary: skipped (circuit open)"
        assert primary.calls == 2  # never touched while open
        assert secondary.calls == 6

    def test_half_open_retries_primary_after_cooldown(self):
        primary = _CountingPrimary(fail_first=2)  # heals after 2 failures
        secondary = _CountingSecondary()
        fallback = FallbackBackend(
            primary, secondary, failure_threshold=2, cooldown=3
        )
        program = self._program()
        for _ in range(2):  # open the circuit
            fallback.solve(program)
        for _ in range(3):  # burn the cooldown
            fallback.solve(program)
        result = fallback.solve(program)  # half-open: primary healed
        assert result.backend == "primary"
        assert result.primary_error is None
        assert not fallback.circuit_open
        assert primary.calls == 3

    def test_success_resets_consecutive_failures(self):
        primary = _CountingPrimary(fail_first=2)
        secondary = _CountingSecondary()
        fallback = FallbackBackend(
            primary, secondary, failure_threshold=3, cooldown=5
        )
        program = self._program()
        fallback.solve(program)  # failure 1
        fallback.solve(program)  # failure 2
        fallback.solve(program)  # success: streak resets
        primary.fail_first = 10**9
        primary.calls = 0
        fallback.solve(program)  # fresh failure 1 — not the third in a row
        assert not fallback.circuit_open

    def test_reset_circuit_closes_and_forgets(self):
        primary, secondary = _CountingPrimary(), _CountingSecondary()
        fallback = FallbackBackend(
            primary, secondary, failure_threshold=1, cooldown=9
        )
        fallback.solve(self._program())
        assert fallback.circuit_open
        fallback.reset_circuit()
        assert not fallback.circuit_open
        fallback.solve(self._program())
        assert primary.calls == 2  # primary gets tried again immediately

    def test_controller_reset_scopes_breaker_per_run(self):
        # RegularizedController.reset() must close the shared auto
        # backend's breaker at run start, so one pathological run cannot
        # leak an open circuit into the next (and serial sweeps behave
        # like fresh worker processes).
        from repro.core.regularization import OnlineRegularizedAllocator
        from repro.simulation.controllers import RegularizedController
        from repro.simulation.observations import SystemDescription
        from tests.conftest import make_tiny_instance

        instance = make_tiny_instance()
        backend = FallbackBackend(
            _CountingPrimary(), _CountingSecondary(), failure_threshold=1, cooldown=9
        )
        backend.solve(self._program())
        assert backend.circuit_open
        controller = RegularizedController(
            system=SystemDescription.from_instance(instance),
            algorithm=OnlineRegularizedAllocator(backend=backend),
        )
        controller.reset()
        assert not backend.circuit_open

    def test_breaker_telemetry(self):
        from repro.telemetry import telemetry_session

        primary, secondary = _CountingPrimary(), _CountingSecondary()
        fallback = FallbackBackend(
            primary, secondary, failure_threshold=2, cooldown=2
        )
        program = self._program()
        with telemetry_session() as registry:
            for _ in range(4):  # 2 failures open it, 2 skips
                fallback.solve(program)
        assert registry.counter("solver.fallbacks").value == 2.0
        assert registry.counter("solver.circuit_breaker.opened").value == 1.0
        assert registry.counter("solver.circuit_breaker.skips").value == 2.0
        kinds = [event["type"] for event in registry.events]
        assert kinds.count("solver.fallback") == 2
        assert kinds.count("solver.circuit_open") == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FallbackBackend(
                _CountingPrimary(), _CountingSecondary(), failure_threshold=0
            )
        with pytest.raises(ValueError):
            FallbackBackend(
                _CountingPrimary(), _CountingSecondary(), cooldown=0
            )
