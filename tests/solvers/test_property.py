"""Property-based cross-validation of the P2 solver backends.

Hypothesis generates small random subproblems (shapes, prices, epsilons,
previous allocations); the structured IPM and SciPy trust-constr must agree
on the optimal objective, and the IPM solution must satisfy constraints
and first-order optimality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subproblem import RegularizedSubproblem
from repro.solvers.interior_point import InteriorPointBackend
from repro.solvers.scipy_backend import ScipyTrustConstrBackend


def random_subproblem(
    seed: int, num_clouds: int, num_users: int, eps1: float, eps2: float
) -> RegularizedSubproblem:
    rng = np.random.default_rng(seed)
    workloads = rng.integers(1, 6, size=num_users).astype(float)
    capacities = workloads.sum() * (0.3 + rng.dirichlet(np.ones(num_clouds))) * 1.3
    # Normalize so sum(capacities) = 1.3 * total workload exactly.
    capacities *= 1.3 * workloads.sum() / capacities.sum()
    x_prev = rng.uniform(0.0, 1.0, size=(num_clouds, num_users))
    x_prev *= workloads[None, :] / num_clouds
    return RegularizedSubproblem(
        static_prices=rng.uniform(0.05, 2.0, size=(num_clouds, num_users)),
        reconfig_prices=rng.uniform(0.1, 2.0, size=num_clouds),
        migration_prices=rng.uniform(0.1, 2.0, size=num_clouds),
        capacities=capacities,
        workloads=workloads,
        x_prev=x_prev,
        eps1=eps1,
        eps2=eps2,
    )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_clouds=st.integers(min_value=2, max_value=4),
    num_users=st.integers(min_value=2, max_value=5),
    eps=st.sampled_from([0.05, 0.5, 2.0, 20.0]),
)
@settings(max_examples=15, deadline=None)
def test_backends_agree_on_random_subproblems(seed, num_clouds, num_users, eps):
    sub = random_subproblem(seed, num_clouds, num_users, eps, eps)
    program = sub.build_program()
    ipm = InteriorPointBackend().solve(program, tol=1e-9)
    scipy_result = ScipyTrustConstrBackend().solve(program, tol=1e-9)
    scale = max(1.0, abs(scipy_result.objective))
    # The IPM never does worse than trust-constr (tight one-sided check) …
    assert ipm.objective <= scipy_result.objective + 1e-5 * scale
    # … and they agree up to trust-constr's own convergence slack.
    assert abs(ipm.objective - scipy_result.objective) <= 5e-4 * scale


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_clouds=st.integers(min_value=2, max_value=4),
    num_users=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_ipm_solution_feasible_and_stationary(seed, num_clouds, num_users):
    sub = random_subproblem(seed, num_clouds, num_users, 1.0, 1.0)
    program = sub.build_program()
    result = InteriorPointBackend().solve(program, tol=1e-9)
    # Feasibility.
    assert program.max_violation(result.x) <= 1e-7
    # First-order optimality: x is a KKT point iff *some* valid duals
    # exist. Fit (theta, rho) by least squares on the support (rho pinned
    # to 0 where capacity is slack), then check the stationarity residual.
    grad = sub.gradient(result.x).reshape(num_clouds, num_users)
    x = result.x.reshape(num_clouds, num_users)
    capacity_slack = np.asarray(sub.capacities) - x.sum(axis=1)
    binding = capacity_slack <= 1e-5
    rows, cols, rhs = [], [], []
    for (i, j) in zip(*np.nonzero(x > 1e-6)):
        # grad_ij - theta_j + rho_i = 0 on the support.
        row = np.zeros(num_users + num_clouds)
        row[j] = -1.0
        if binding[i]:
            row[num_users + i] = 1.0
        rows.append(row)
        rhs.append(-grad[i, j])
    solution, *_ = np.linalg.lstsq(np.array(rows), np.array(rhs), rcond=None)
    theta = solution[:num_users]
    rho = np.where(binding, solution[num_users:], 0.0)
    residual = sub.kkt_stationarity_residual(result.x, theta, np.maximum(rho, 0.0))
    assert residual < 5e-3


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    eps=st.sampled_from([0.1, 1.0, 10.0]),
)
@settings(max_examples=15, deadline=None)
def test_objective_convex_along_random_segments(seed, eps):
    """Midpoint convexity of the P2 objective on the positive orthant."""
    sub = random_subproblem(seed, 3, 3, eps, eps)
    rng = np.random.default_rng(seed + 1)
    a = rng.uniform(0.01, 3.0, size=9)
    b = rng.uniform(0.01, 3.0, size=9)
    mid = 0.5 * (a + b)
    assert sub.objective(mid) <= 0.5 * sub.objective(a) + 0.5 * sub.objective(b) + 1e-9


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_gradient_is_derivative_of_objective(seed):
    """Directional finite difference matches the analytic gradient."""
    sub = random_subproblem(seed, 3, 4, 1.0, 1.0)
    rng = np.random.default_rng(seed + 2)
    x = rng.uniform(0.1, 2.0, size=12)
    direction = rng.standard_normal(12)
    direction /= np.linalg.norm(direction)
    h = 1e-6
    numeric = (sub.objective(x + h * direction) - sub.objective(x - h * direction)) / (
        2 * h
    )
    analytic = float(sub.gradient(x) @ direction)
    assert numeric == pytest.approx(analytic, rel=1e-4, abs=1e-7)
