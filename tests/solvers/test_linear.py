"""Tests for the sparse LP builder and the HiGHS wrapper."""

import numpy as np
import pytest

from repro.solvers.base import SolverError
from repro.solvers.linear import LinearProgramBuilder


class TestBlocks:
    def test_block_layout(self):
        builder = LinearProgramBuilder()
        a = builder.add_block("a", 2, 3)
        b = builder.add_block("b", 4)
        assert a.offset == 0
        assert a.size == 6
        assert b.offset == 6
        assert b.size == 4
        assert builder.num_variables == 10

    def test_indices_shape(self):
        builder = LinearProgramBuilder()
        block = builder.add_block("x", 2, 3)
        idx = block.indices()
        assert idx.shape == (2, 3)
        assert idx[1, 2] == 5

    def test_duplicate_name(self):
        builder = LinearProgramBuilder()
        builder.add_block("x", 1)
        with pytest.raises(ValueError):
            builder.add_block("x", 2)

    def test_lookup(self):
        builder = LinearProgramBuilder()
        builder.add_block("x", 3)
        assert builder.block("x").size == 3
        with pytest.raises(KeyError):
            builder.block("missing")


class TestSolve:
    def test_simple_minimization(self):
        # min x + 2y  s.t. x + y >= 4, x <= 3  ->  x=3, y=1, objective 5.
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 1)
        y = builder.add_block("y", 1)
        builder.set_cost(x.indices(), 1.0)
        builder.set_cost(y.indices(), 2.0)
        builder.add_ge(np.array([0, 1]), np.array([1.0, 1.0]), 4.0)
        builder.set_upper_bound(x.indices(), 3.0)
        result = builder.solve()
        assert result.objective == pytest.approx(5.0)
        assert result.x[0] == pytest.approx(3.0)
        assert result.x[1] == pytest.approx(1.0)

    def test_transportation_problem(self):
        # 2 sources (capacity 5, 5), 2 sinks (demand 4, 4), unit costs.
        costs = np.array([[1.0, 3.0], [2.0, 1.0]])
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 2, 2)
        idx = x.indices()
        builder.set_cost(idx, costs)
        for sink in range(2):
            builder.add_ge(idx[:, sink], 1.0, 4.0)
        for source in range(2):
            builder.add_le(idx[source, :], 1.0, 5.0)
        result = builder.solve()
        # Optimal: send 4 on (0,0) and 4 on (1,1): cost 8.
        assert result.objective == pytest.approx(8.0)

    def test_infeasible_raises(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 1)
        builder.set_cost(x.indices(), 1.0)
        builder.add_ge(x.indices(), 1.0, 10.0)
        builder.set_upper_bound(x.indices(), 1.0)
        with pytest.raises(SolverError):
            builder.solve()

    def test_unbounded_raises(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 1)
        builder.set_cost(x.indices(), -1.0)  # minimize -x with x >= 0
        with pytest.raises(SolverError):
            builder.solve()

    def test_no_constraints(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 3)
        builder.set_cost(x.indices(), 1.0)
        result = builder.solve()
        assert np.allclose(result.x, 0.0)
        assert result.objective == pytest.approx(0.0)

    def test_cost_accumulates(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 1)
        builder.set_cost(x.indices(), 1.0)
        builder.set_cost(x.indices(), 2.0)  # same variable: 3x total
        builder.add_ge(x.indices(), 1.0, 2.0)
        result = builder.solve()
        assert result.objective == pytest.approx(6.0)

    def test_size_mismatch_rejected(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 3)
        with pytest.raises(ValueError):
            builder.set_cost(x.indices(), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            builder.add_ge(x.indices(), np.array([1.0, 2.0]), 1.0)
        with pytest.raises(ValueError):
            builder.set_upper_bound(x.indices(), np.array([1.0, 2.0]))

    def test_result_metadata(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 1)
        builder.set_cost(x.indices(), 1.0)
        builder.add_ge(x.indices(), 1.0, 1.0)
        result = builder.solve()
        assert result.backend.startswith("linprog")
