"""Cross-validation of the convex backends on P2 subproblems.

The custom structured interior-point method must agree with SciPy's
trust-constr on objective value and solution, across instance shapes,
epsilon scales, and previous-allocation patterns.
"""

import numpy as np
import pytest

from repro.core.subproblem import RegularizedSubproblem
from repro.solvers.base import ConvexProgram, SolverError
from repro.solvers.interior_point import InteriorPointBackend
from repro.solvers.scipy_backend import ScipyTrustConstrBackend
from tests.conftest import make_tiny_instance


def subproblem_case(seed: int, eps: float = 1.0, slot: int = 0, zero_prev: bool = False):
    instance = make_tiny_instance(seed=seed)
    rng = np.random.default_rng(seed + 11)
    shape = (instance.num_clouds, instance.num_users)
    if zero_prev:
        x_prev = np.zeros(shape)
    else:
        x_prev = rng.uniform(0.0, 1.0, size=shape) * np.asarray(instance.workloads)
    return RegularizedSubproblem.from_instance(
        instance, slot, x_prev, eps1=eps, eps2=eps
    )


class TestAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_objective_agreement(self, seed):
        sub = subproblem_case(seed)
        program = sub.build_program()
        scipy_result = ScipyTrustConstrBackend().solve(program, tol=1e-10)
        ipm_result = InteriorPointBackend().solve(program, tol=1e-10)
        scale = max(1.0, abs(scipy_result.objective))
        assert ipm_result.objective == pytest.approx(
            scipy_result.objective, abs=1e-5 * scale
        )

    @pytest.mark.parametrize("eps", [0.01, 1.0, 100.0])
    def test_agreement_across_eps(self, eps):
        sub = subproblem_case(5, eps=eps)
        program = sub.build_program()
        scipy_result = ScipyTrustConstrBackend().solve(program, tol=1e-10)
        ipm_result = InteriorPointBackend().solve(program, tol=1e-10)
        assert np.allclose(scipy_result.x, ipm_result.x, atol=5e-3)

    def test_zero_previous_allocation(self):
        # Slot 1 of the online algorithm: x_prev = 0 exactly.
        sub = subproblem_case(6, zero_prev=True)
        program = sub.build_program()
        scipy_result = ScipyTrustConstrBackend().solve(program, tol=1e-10)
        ipm_result = InteriorPointBackend().solve(program, tol=1e-10)
        scale = max(1.0, abs(scipy_result.objective))
        assert ipm_result.objective == pytest.approx(
            scipy_result.objective, abs=1e-5 * scale
        )

    def test_ipm_beats_or_matches_feasibility(self):
        sub = subproblem_case(7)
        program = sub.build_program()
        result = InteriorPointBackend().solve(program, tol=1e-9)
        assert program.max_violation(result.x) <= 1e-8
        assert result.x.min() >= 0.0


class TestIpmBehaviour:
    def test_requires_structure(self):
        program = ConvexProgram(
            objective=lambda x: float(np.sum(x**2)),
            gradient=lambda x: 2 * x,
            constraint_matrix=__import__("scipy.sparse", fromlist=["eye"]).eye(2),
            constraint_lower=np.zeros(2),
            x_lower=np.zeros(2),
            x0=np.ones(2),
        )
        with pytest.raises(SolverError, match="structure"):
            InteriorPointBackend().solve(program)

    def test_duals_nonnegative(self):
        sub = subproblem_case(8)
        result = InteriorPointBackend().solve(sub.build_program(), tol=1e-9)
        assert np.all(result.duals["demand"] >= 0)
        assert np.all(result.duals["capacity"] >= 0)

    def test_infeasible_start_falls_back_to_interior(self):
        sub = subproblem_case(9)
        program = sub.build_program(x0=np.zeros(sub.num_clouds * sub.num_users))
        result = InteriorPointBackend().solve(program, tol=1e-9)
        assert program.max_violation(result.x) <= 1e-8

    def test_iterations_reported(self):
        sub = subproblem_case(10)
        result = InteriorPointBackend().solve(sub.build_program(), tol=1e-8)
        assert result.iterations > 0
        assert result.backend == "structured-ipm"


class TestScipyBackend:
    def test_simple_quadratic(self):
        # min (x - 2)^2 + (y - 2)^2 s.t. x + y >= 1, x, y >= 0 -> (2, 2).
        from scipy import sparse

        program = ConvexProgram(
            objective=lambda v: float((v[0] - 2) ** 2 + (v[1] - 2) ** 2),
            gradient=lambda v: np.array([2 * (v[0] - 2), 2 * (v[1] - 2)]),
            constraint_matrix=sparse.csr_matrix(np.array([[1.0, 1.0]])),
            constraint_lower=np.array([1.0]),
            x_lower=np.zeros(2),
            x0=np.array([1.0, 1.0]),
        )
        result = ScipyTrustConstrBackend().solve(program, tol=1e-10)
        assert np.allclose(result.x, [2.0, 2.0], atol=1e-6)

    def test_binding_constraint(self):
        # min x^2 + y^2 s.t. x + y >= 2 -> (1, 1).
        from scipy import sparse

        program = ConvexProgram(
            objective=lambda v: float(v @ v),
            gradient=lambda v: 2 * v,
            constraint_matrix=sparse.csr_matrix(np.array([[1.0, 1.0]])),
            constraint_lower=np.array([2.0]),
            x_lower=np.zeros(2),
            x0=np.array([2.0, 2.0]),
        )
        result = ScipyTrustConstrBackend().solve(program, tol=1e-10)
        assert np.allclose(result.x, [1.0, 1.0], atol=1e-6)
