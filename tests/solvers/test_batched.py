"""Bit-identity of the batched barrier solver vs the sequential IPM.

The contract of :mod:`repro.solvers.batched` is not "numerically close":
every instance of a batch must produce the *identical floats* the
sequential :class:`InteriorPointBackend` produces — solution, objective,
iteration count, duals, partial flag — across instance shapes (including a
single-instance batch and mixed-shape batches), warm starts, and
budget-truncated solves. These properties pin the reduction-order analysis
in the module docstring.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subproblem import RegularizedSubproblem
from repro.solvers.base import ConvexProgram, SolveBudget, SolverError
from repro.solvers.batched import (
    BatchCoordinator,
    DeferringBackend,
    resolve_kernels,
    solve_batch,
)
from repro.solvers.interior_point import InteriorPointBackend
from repro.telemetry import MetricsRegistry, telemetry_session


def random_subproblem(
    seed: int,
    num_clouds: int,
    num_users: int,
    *,
    eps_vector: bool = False,
    zero_prev: bool = False,
) -> RegularizedSubproblem:
    rng = np.random.default_rng(seed)
    workloads = rng.integers(1, 6, size=num_users).astype(float)
    capacities = workloads.sum() * (0.3 + rng.dirichlet(np.ones(num_clouds)))
    capacities *= 1.4 * workloads.sum() / capacities.sum()
    if zero_prev:
        x_prev = np.zeros((num_clouds, num_users))
    else:
        x_prev = rng.uniform(0.0, 1.0, size=(num_clouds, num_users))
        x_prev *= workloads[None, :] / num_clouds
    eps2 = rng.uniform(0.3, 2.0, size=num_users) if eps_vector else 0.7
    return RegularizedSubproblem(
        static_prices=rng.uniform(0.05, 2.0, size=(num_clouds, num_users)),
        reconfig_prices=rng.uniform(0.1, 2.0, size=num_clouds),
        migration_prices=rng.uniform(0.1, 2.0, size=num_clouds),
        capacities=capacities,
        workloads=workloads,
        x_prev=x_prev,
        eps1=0.5,
        eps2=eps2,
    )


def build_program(sub: RegularizedSubproblem, *, warm: bool, seed: int):
    if not warm:
        return sub.build_program()
    interior = sub.interior_point()
    rng = np.random.default_rng(seed + 77)
    prev = np.asarray(sub.x_prev, dtype=float).ravel()
    x0 = 0.9 * prev + 0.1 * interior
    if rng.integers(0, 2):
        # Occasionally hand in a boundary point so the infeasible-warm-start
        # recovery (barrier restart) path is exercised in both solvers.
        x0 = prev
    return sub.build_program(x0=x0)


def assert_identical(batched, sequential):
    assert np.array_equal(batched.x, sequential.x)
    assert batched.objective == sequential.objective
    assert batched.iterations == sequential.iterations
    assert batched.backend == sequential.backend
    assert batched.partial == sequential.partial
    assert set(batched.duals) == set(sequential.duals)
    for key, value in sequential.duals.items():
        assert np.array_equal(batched.duals[key], value), key


def solve_both(programs, *, tol=1e-8):
    sequential = []
    backend = InteriorPointBackend()
    for program in programs:
        try:
            sequential.append(backend.solve(program, tol=tol))
        except Exception as exc:  # noqa: BLE001 - failure parity is tested
            sequential.append(exc)
    batched = solve_batch(programs, tol=tol)
    assert len(batched) == len(sequential)
    for got, want in zip(batched, sequential):
        if isinstance(want, Exception):
            assert isinstance(got, type(want))
            assert str(got) == str(want)
        else:
            assert_identical(got, want)
    return batched


class TestBitIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_clouds=st.integers(min_value=2, max_value=4),
        num_users=st.integers(min_value=2, max_value=5),
        batch=st.integers(min_value=1, max_value=4),
        warm=st.booleans(),
        eps_vector=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_same_shape_batches(
        self, seed, num_clouds, num_users, batch, warm, eps_vector
    ):
        programs = [
            build_program(
                random_subproblem(
                    seed + k, num_clouds, num_users, eps_vector=eps_vector
                ),
                warm=warm,
                seed=seed + k,
            )
            for k in range(batch)
        ]
        solve_both(programs)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_mixed_shape_batches(self, seed):
        shapes = [(2, 3), (3, 4), (2, 3), (4, 2), (3, 4)]
        programs = [
            build_program(
                random_subproblem(seed + k, clouds, users),
                warm=bool(k % 2),
                seed=seed + k,
            )
            for k, (clouds, users) in enumerate(shapes)
        ]
        solve_both(programs)

    def test_single_instance_batch(self):
        program = random_subproblem(3, 3, 4).build_program()
        solve_both([program])

    def test_zero_previous_allocation(self):
        programs = [
            random_subproblem(k, 3, 4, zero_prev=True).build_program()
            for k in range(3)
        ]
        solve_both(programs)

    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        max_iterations=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=10, deadline=None)
    def test_budget_truncated_solves(self, seed, max_iterations):
        # Iteration budgets are exact per lane, so truncated (partial)
        # solves must be bit-identical too; mix budgeted and unbudgeted
        # lanes in one batch to prove masks keep them independent.
        programs = []
        for k in range(3):
            program = random_subproblem(seed + k, 3, 4).build_program()
            if k != 1:
                program.budget = SolveBudget(max_iterations=max_iterations)
            programs.append(program)
        results = solve_both(programs)
        assert any(r.partial for r in results if not isinstance(r, Exception))

    def test_structureless_program_fails_like_sequential(self):
        from scipy import sparse

        bad = ConvexProgram(
            objective=lambda x: float(np.sum(x**2)),
            gradient=lambda x: 2 * x,
            constraint_matrix=sparse.eye(2),
            constraint_lower=np.zeros(2),
            x_lower=np.zeros(2),
            x0=np.ones(2),
        )
        good = random_subproblem(1, 2, 3).build_program()
        outcomes = solve_batch([bad, good])
        assert isinstance(outcomes[0], SolverError)
        assert "structure" in str(outcomes[0])
        assert not isinstance(outcomes[1], Exception)
        sequential = InteriorPointBackend().solve(good, tol=1e-8)
        assert_identical(outcomes[1], sequential)

    def test_infeasible_subproblem_fails_like_sequential(self):
        sub = random_subproblem(2, 3, 4)
        starved = RegularizedSubproblem(
            static_prices=sub.static_prices,
            reconfig_prices=sub.reconfig_prices,
            migration_prices=sub.migration_prices,
            capacities=np.asarray(sub.capacities) * 1e-3,
            workloads=sub.workloads,
            x_prev=sub.x_prev,
            eps1=sub.eps1,
            eps2=sub.eps2,
        )
        programs = [
            sub.build_program(),
            ConvexProgram(
                objective=starved.objective,
                gradient=starved.gradient,
                constraint_matrix=sub.build_program().constraint_matrix,
                constraint_lower=np.zeros(12),
                x_lower=np.zeros(12),
                structure=starved,
            ),
        ]
        solve_both(programs)


class TestTelemetryParity:
    def test_solver_counters_match_sequential(self):
        programs = [
            build_program(random_subproblem(k, 3, 4), warm=k > 0, seed=k)
            for k in range(4)
        ]
        with telemetry_session() as sequential_registry:
            backend = InteriorPointBackend()
            for program in programs:
                backend.solve(program, tol=1e-8)
        with telemetry_session() as batched_registry:
            solve_batch(programs, tol=1e-8)
        seq = sequential_registry.snapshot()
        bat = batched_registry.snapshot()
        for name in (
            "solver.ipm.solves",
            "solver.iterations",
            "solver.ipm.warm_start_hits",
        ):
            assert bat["counters"].get(name) == seq["counters"].get(name), name
        assert (
            bat["histograms"]["solver.ipm.iterations"]
            == seq["histograms"]["solver.ipm.iterations"]
        )
        seq_traces = [e for e in seq["events"] if e["type"] == "solver.ipm.trace"]
        bat_traces = [e for e in bat["events"] if e["type"] == "solver.ipm.trace"]
        assert [t["trace"] for t in bat_traces] == [t["trace"] for t in seq_traces]
        assert bat["counters"]["solver.batched.instances"] == 4

    def test_per_instance_registries(self):
        programs = [random_subproblem(k, 2, 3).build_program() for k in range(2)]
        registries = [MetricsRegistry(), MetricsRegistry()]
        solve_batch(programs, registries=registries)
        for registry in registries:
            snap = registry.snapshot()
            assert snap["counters"]["solver.ipm.solves"] == 1


class TestCoordinator:
    def test_threads_get_sequential_results(self):
        programs = [
            build_program(random_subproblem(k, 3, 4), warm=k % 2 == 1, seed=k)
            for k in range(5)
        ]
        backend = InteriorPointBackend()
        expected = [backend.solve(p, tol=1e-8) for p in programs]

        coordinator = BatchCoordinator(total=len(programs))
        deferring = DeferringBackend(coordinator)
        outcomes: list = [None] * len(programs)

        def worker(index):
            try:
                outcomes[index] = deferring.solve(programs[index], tol=1e-8)
            finally:
                coordinator.finish()

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(len(programs))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        for got, want in zip(outcomes, expected):
            assert_identical(got, want)

    def test_failed_solve_raises_in_requesting_thread(self):
        from scipy import sparse

        bad = ConvexProgram(
            objective=lambda x: float(np.sum(x**2)),
            gradient=lambda x: 2 * x,
            constraint_matrix=sparse.eye(2),
            constraint_lower=np.zeros(2),
            x_lower=np.zeros(2),
            x0=np.ones(2),
        )
        coordinator = BatchCoordinator(total=1)
        deferring = DeferringBackend(coordinator)
        with pytest.raises(SolverError, match="structure"):
            deferring.solve(bad, tol=1e-8)


class TestJitFlag:
    def test_flag_off_uses_numpy_kernels(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCHED_JIT", raising=False)
        _, _, jitted = resolve_kernels()
        assert not jitted

    def test_flag_without_numba_falls_back_cleanly(self, monkeypatch):
        # The container image deliberately has no numba: requesting the JIT
        # must degrade to the NumPy kernels and still solve bit-identically.
        import repro.solvers.batched as batched_module

        monkeypatch.setenv("REPRO_BATCHED_JIT", "1")
        monkeypatch.setattr(batched_module, "_KERNELS_RESOLVED", False)
        monkeypatch.setattr(batched_module, "_KERNELS", None)
        fill, expand, jitted = resolve_kernels()
        try:
            import numba  # noqa: F401

            assert jitted
        except ImportError:
            assert not jitted
            assert fill is batched_module._numpy_fill_smw
        program = random_subproblem(9, 3, 4).build_program()
        solve_both([program])
