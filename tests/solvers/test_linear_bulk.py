"""Tests for the vectorized bulk-row API of the LP builder."""

import numpy as np
import pytest

from repro.solvers.linear import LinearProgramBuilder


def build_transportation(use_bulk: bool):
    """The same 2x2 transportation LP via scalar or bulk constraint APIs."""
    costs = np.array([[1.0, 3.0], [2.0, 1.0]])
    builder = LinearProgramBuilder()
    x = builder.add_block("x", 2, 2)
    idx = x.indices()
    builder.set_cost(idx, costs)
    if use_bulk:
        builder.add_ge_rows(idx.T, 1.0, np.array([4.0, 4.0]))
        builder.add_le_rows(idx, 1.0, np.array([5.0, 5.0]))
    else:
        for sink in range(2):
            builder.add_ge(idx[:, sink], 1.0, 4.0)
        for source in range(2):
            builder.add_le(idx[source, :], 1.0, 5.0)
    return builder


class TestBulkRows:
    def test_bulk_equals_scalar(self):
        bulk = build_transportation(use_bulk=True).solve()
        scalar = build_transportation(use_bulk=False).solve()
        assert bulk.objective == pytest.approx(scalar.objective)
        assert np.allclose(bulk.x, scalar.x, atol=1e-9)

    def test_coefficient_broadcast(self):
        # Scalar coefficient broadcasts over all columns.
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 3)
        builder.set_cost(x.indices(), 1.0)
        builder.add_ge_rows(x.indices()[None, :], 1.0, np.array([6.0]))
        result = builder.solve()
        assert result.objective == pytest.approx(6.0)

    def test_per_entry_coefficients(self):
        # min x0 + x1 s.t. 2 x0 + x1 >= 4  ->  x0 = 2 (coef 2 is cheaper).
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 2)
        builder.set_cost(x.indices(), 1.0)
        builder.add_ge_rows(
            x.indices()[None, :], np.array([[2.0, 1.0]]), np.array([4.0])
        )
        result = builder.solve()
        assert result.objective == pytest.approx(2.0)
        assert result.x[0] == pytest.approx(2.0)

    def test_rhs_size_mismatch(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 2)
        with pytest.raises(ValueError, match="rhs size"):
            builder.add_le_rows(x.indices()[None, :], 1.0, np.array([1.0, 2.0]))

    def test_columns_rank_checked(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 2)
        with pytest.raises(ValueError, match="matrix"):
            builder.add_le_rows(x.indices(), 1.0, np.array([1.0]))

    def test_free_variables(self):
        # min u s.t. u >= x - 2, x >= 3  -> at x = 3, u = 1; but if u were
        # nonnegative-only and x could be 0, u = 0. Make u free and force
        # x >= 3 to check the negative range is actually reachable.
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 1)
        u = builder.add_block("u", 1)
        builder.set_free(u.indices())
        builder.set_cost(u.indices(), 1.0)
        builder.add_ge(x.indices(), 1.0, 3.0)
        builder.set_upper_bound(x.indices(), 3.0)
        # u >= x - 5  ->  u can go to -2.
        builder.add_ge(
            np.concatenate([u.indices(), x.indices()]),
            np.array([1.0, -1.0]),
            -5.0,
        )
        result = builder.solve()
        assert result.x[u.indices()[0]] == pytest.approx(-2.0)

    def test_row_count_advances(self):
        builder = LinearProgramBuilder()
        x = builder.add_block("x", 4)
        builder.add_le_rows(x.indices().reshape(2, 2), 1.0, np.zeros(2))
        assert builder.num_constraints == 2
        builder.add_le(x.indices()[:1], 1.0, 1.0)
        assert builder.num_constraints == 3
