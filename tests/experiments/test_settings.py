"""Tests for experiment settings and algorithm rosters."""

import pytest

from repro.experiments.settings import (
    PAPER_NUM_SLOTS,
    PAPER_NUM_USERS,
    PAPER_REPETITIONS,
    ExperimentScale,
    all_paper_algorithms,
    atomistic_algorithms,
    holistic_algorithms,
)


class TestExperimentScale:
    def test_defaults_are_laptop_sized(self):
        scale = ExperimentScale()
        assert scale.num_users < 100
        assert scale.num_slots < 60
        assert scale.eps > 0

    def test_paper_scale(self):
        scale = ExperimentScale.paper()
        assert scale.num_users == PAPER_NUM_USERS == 300
        assert scale.num_slots == PAPER_NUM_SLOTS == 60
        assert scale.repetitions == PAPER_REPETITIONS == 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExperimentScale().num_users = 5


class TestRosters:
    def test_holistic_contents(self):
        names = {a.name for a in holistic_algorithms()}
        assert names == {"offline-opt", "online-greedy", "online-approx"}

    def test_atomistic_contents(self):
        names = {a.name for a in atomistic_algorithms()}
        assert names == {"perf-opt", "oper-opt", "stat-opt"}

    def test_all_paper_algorithms(self):
        names = {a.name for a in all_paper_algorithms()}
        assert len(names) == 6
        assert "offline-opt" in names

    def test_eps_applied_to_approx(self):
        algorithms = holistic_algorithms(eps=0.25)
        approx = next(a for a in algorithms if a.name == "online-approx")
        assert approx.eps1 == approx.eps2 == 0.25

    def test_fresh_instances_per_call(self):
        # Rosters must not share mutable algorithm state between calls.
        first = holistic_algorithms()
        second = holistic_algorithms()
        assert first[2] is not second[2]
