"""Tests for the table renderer."""

import pytest

from repro.experiments.report import format_mean_std, format_table


class TestFormatTable:
    def test_basic(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert lines[2].startswith("a")
        assert "1.500" in lines[2]

    def test_column_widths_adapt(self):
        table = format_table(["x"], [["very-long-cell-value"]])
        header, rule, row = table.splitlines()
        assert len(rule) >= len("very-long-cell-value")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert len(table.splitlines()) == 2  # header + rule only

    def test_non_float_cells_passed_through(self):
        table = format_table(["k", "v"], [["key", "text"]])
        assert "text" in table


class TestMeanStd:
    def test_format(self):
        assert format_mean_std(1.1234, 0.0567) == "1.123 +/- 0.057"

    def test_digits(self):
        assert format_mean_std(1.0, 0.5, digits=1) == "1.0 +/- 0.5"
