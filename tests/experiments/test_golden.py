"""Golden-file tests pinning the paper numbers against committed fixtures.

Perf work (parallel execution, warm starts, solver tuning) must never
silently change what the figures report. These tests run the seed fig2 and
fig4 settings at a small fixed scale and compare every algorithm's full
``cost_breakdown`` against JSON fixtures committed under
``tests/experiments/golden/``.

Regenerating (only when a *deliberate* numeric change lands)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/experiments/test_golden.py

then commit the updated fixtures together with the change that explains
them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.core.regularization import OnlineRegularizedAllocator
from repro.experiments.fig2 import fig2_scenario
from repro.experiments.settings import ExperimentScale, all_paper_algorithms
from repro.simulation.engine import compare_algorithms

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small but representative scale: every algorithm (including the LP-based
#: offline optimum) runs in well under a second, yet all cost components
#: are exercised.
SCALE = ExperimentScale(num_users=6, num_slots=4, repetitions=1, seed=2017)

#: Relative tolerance for the pinned numbers. Tight enough that any real
#: behavioral change trips it; loose enough to absorb solver noise across
#: BLAS/SciPy builds.
RTOL = 1e-6


def _breakdowns(comparison) -> dict[str, dict[str, float]]:
    return {
        name: result.breakdown.totals()
        for name, result in sorted(comparison.results.items())
    }


def _fig2_breakdowns() -> dict[str, dict[str, float]]:
    """The seed fig2 setting: taxi mobility, power workloads, full roster."""
    instance = fig2_scenario(SCALE).build(seed=SCALE.seed)
    return _breakdowns(compare_algorithms(all_paper_algorithms(SCALE.eps), instance))


def _fig4_breakdowns() -> dict[str, dict[str, float]]:
    """The seed fig4 endpoints: eps sweep extremes and a large-mu scenario."""
    out: dict[str, dict[str, float]] = {}
    scenario = fig2_scenario(SCALE)
    instance = scenario.build(seed=SCALE.seed)
    for eps in (1e-3, 1e3):
        roster = [
            OfflineOptimal(),
            OnlineGreedy(),
            OnlineRegularizedAllocator(eps1=eps, eps2=eps),
        ]
        for name, totals in _breakdowns(
            compare_algorithms(roster, instance)
        ).items():
            out[f"eps={eps:g}/{name}"] = totals
    mu_instance = scenario.with_mu(1e3).build(seed=SCALE.seed)
    roster = [
        OfflineOptimal(),
        OnlineGreedy(),
        OnlineRegularizedAllocator(eps1=SCALE.eps, eps2=SCALE.eps),
    ]
    for name, totals in _breakdowns(compare_algorithms(roster, mu_instance)).items():
        out[f"mu=1000/{name}"] = totals
    return out


CASES = {
    "fig2_seed": _fig2_breakdowns,
    "fig4_seed": _fig4_breakdowns,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_cost_breakdowns(name):
    actual = CASES[name]()
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path}")
    expected = json.loads(path.read_text())
    assert sorted(actual) == sorted(expected), "algorithm set changed"
    for algorithm, totals in expected.items():
        for component, value in totals.items():
            assert actual[algorithm][component] == pytest.approx(
                value, rel=RTOL, abs=1e-9
            ), f"{name}: {algorithm}.{component} drifted from the committed value"
