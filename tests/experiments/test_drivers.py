"""Smoke tests of the figure drivers at minimal scale.

These verify the experiment plumbing end-to-end: every driver runs, the
offline baseline normalizes to 1, reports render. The committed
paper-shape numbers live in the benchmarks (see EXPERIMENTS.md); here the
scale is kept minimal so the whole suite stays fast.
"""

import pytest

from repro.experiments import (
    ExperimentScale,
    fig2_report,
    fig3_report,
    fig4_report,
    fig5_report,
    run_eps_sweep,
    run_fig2,
    run_fig3,
    run_fig5,
    run_mu_sweep,
    theoretical_bounds,
)

TINY = ExperimentScale(num_users=4, num_slots=3, repetitions=1, seed=42)


@pytest.fixture(scope="module")
def fig2_points():
    return run_fig2(TINY, hours=("3pm",))


class TestFig2:
    def test_point_structure(self, fig2_points):
        assert len(fig2_points) == 1
        point = fig2_points[0]
        assert point.label == "3pm"
        expected = {
            "offline-opt",
            "online-greedy",
            "online-approx",
            "perf-opt",
            "oper-opt",
            "stat-opt",
        }
        assert set(point.stats) == expected

    def test_offline_normalizes_to_one(self, fig2_points):
        mean, std = fig2_points[0].stats["offline-opt"]
        assert mean == pytest.approx(1.0)
        assert std == pytest.approx(0.0)

    def test_all_ratios_at_least_one(self, fig2_points):
        for name, (mean, _std) in fig2_points[0].stats.items():
            assert mean >= 1.0 - 1e-9, name

    def test_report_renders(self, fig2_points):
        report = fig2_report(fig2_points)
        assert "Figure 2" in report
        assert "online-approx" in report
        assert "paper" in report


class TestFig3:
    def test_distributions_covered(self):
        points = run_fig3(TINY, distributions=("uniform",))
        assert points[0].label == "uniform"
        report = fig3_report(points)
        assert "uniform" in report


class TestFig4:
    def test_eps_sweep(self):
        points = run_eps_sweep(TINY, eps_values=(0.1, 10.0))
        assert [p.label for p in points] == ["eps=0.1", "eps=10"]
        for point in points:
            assert point.stats["online-approx"][0] >= 1.0 - 1e-9

    def test_mu_sweep(self):
        points = run_mu_sweep(TINY, mu_values=(0.1, 10.0))
        assert [p.label for p in points] == ["mu=0.1", "mu=10"]

    def test_theoretical_bounds_monotone(self):
        bounds = theoretical_bounds(TINY, eps_values=(0.1, 1.0, 10.0))
        values = list(bounds.values())
        assert values[0] >= values[1] >= values[2]

    def test_report_renders(self):
        eps_points = run_eps_sweep(TINY, eps_values=(1.0,))
        mu_points = run_mu_sweep(TINY, mu_values=(1.0,))
        bounds = theoretical_bounds(TINY, eps_values=(1.0,))
        report = fig4_report(eps_points, mu_points, bounds)
        assert "eps" in report
        assert "mu" in report
        assert "Theorem 2" in report


class TestFig5:
    def test_user_sweep(self):
        points = run_fig5(TINY, user_counts=(3, 5))
        assert [p.label for p in points] == ["users=3", "users=5"]
        report = fig5_report(points)
        assert "Figure 5" in report

    def test_stay_bias_accepted(self):
        points = run_fig5(TINY, user_counts=(3,), stay_bias=2.0)
        assert points[0].stats["online-approx"][0] >= 1.0 - 1e-9
