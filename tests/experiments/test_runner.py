"""Tests for the generic ratio-experiment runner."""

import pytest

from repro.experiments.runner import RatioPoint, ratio_table, run_ratio_point
from repro.experiments.settings import holistic_algorithms
from repro.simulation.scenario import Scenario


@pytest.fixture(scope="module")
def point():
    scenario = Scenario(num_users=4, num_slots=3)
    return run_ratio_point(
        "case-a", scenario, holistic_algorithms(), repetitions=2, seed=77
    )


class TestRunRatioPoint:
    def test_label_and_stats(self, point):
        assert point.label == "case-a"
        assert set(point.stats) == {"offline-opt", "online-greedy", "online-approx"}

    def test_offline_is_exactly_one(self, point):
        mean, std = point.stats["offline-opt"]
        assert mean == pytest.approx(1.0)
        assert std == pytest.approx(0.0)

    def test_repetitions_recorded(self, point):
        assert len(point.comparisons) == 2

    def test_repetitions_use_distinct_seeds(self, point):
        costs = [c.baseline_cost for c in point.comparisons]
        assert costs[0] != costs[1]

    def test_mean_ratio_accessor(self, point):
        assert point.mean_ratio("online-approx") == point.stats["online-approx"][0]

    def test_dropping_schedules_leaves_ratios_identical(self, point):
        """keep_schedules only affects memory: the accounting is incremental
        either way, so every aggregated number is bit-identical."""
        scenario = Scenario(num_users=4, num_slots=3)
        dropped = run_ratio_point(
            "case-a",
            scenario,
            holistic_algorithms(),
            repetitions=2,
            seed=77,
            keep_schedules=False,
        )
        assert dropped.stats == point.stats
        for comparison in dropped.comparisons:
            assert all(r.schedule is None for r in comparison.results.values())


class TestRatioTable:
    def test_renders_all_points(self, point):
        table = ratio_table([point], axis_name="case")
        assert "case-a" in table
        assert "online-approx" in table
        # The normalizer column is omitted (always 1.0).
        assert "offline-opt" not in table.splitlines()[0]

    def test_empty(self):
        assert ratio_table([]) == "(no data)"

    def test_custom_axis_name(self, point):
        table = ratio_table([point], axis_name="hour")
        assert table.splitlines()[0].startswith("hour")

    def test_multiple_points(self, point):
        other = RatioPoint(label="case-b", stats=point.stats, comparisons=[])
        table = ratio_table([point, other])
        assert "case-a" in table
        assert "case-b" in table
