"""Tests that the Figure 1 worked examples reproduce the paper exactly."""

import pytest

from repro.experiments.fig1 import (
    EXAMPLE_A,
    EXAMPLE_B,
    PAPER_TOTALS,
    Fig1Example,
    run_example,
    run_fig1,
)


class TestPaperNumbers:
    def test_example_a_totals(self):
        result = run_example(EXAMPLE_A)
        greedy_expected, optimal_expected = PAPER_TOTALS["a"]
        assert result.greedy_cost == pytest.approx(greedy_expected)
        assert result.optimal_cost == pytest.approx(optimal_expected)

    def test_example_b_totals(self):
        result = run_example(EXAMPLE_B)
        greedy_expected, optimal_expected = PAPER_TOTALS["b"]
        assert result.greedy_cost == pytest.approx(greedy_expected)
        assert result.optimal_cost == pytest.approx(optimal_expected)

    def test_example_a_placements(self):
        # Too aggressive: greedy follows the user A-B-A, optimum stays at A.
        result = run_example(EXAMPLE_A)
        assert result.greedy_placements == ("A", "B", "A")
        assert result.optimal_placements == ("A", "A", "A")

    def test_example_b_placements(self):
        # Too conservative: greedy stays at A, optimum migrates to B.
        result = run_example(EXAMPLE_B)
        assert result.greedy_placements == ("A", "A", "A")
        assert result.optimal_placements == ("A", "B", "B")

    def test_run_fig1_keys(self):
        results = run_fig1()
        assert set(results) == {"a", "b"}

    def test_gaps_positive(self):
        for result in run_fig1().values():
            assert result.gap > 0.15  # greedy is ~20% worse in both examples


class TestExampleMechanics:
    def test_slot_cost_components(self):
        # Serving remotely adds the delay; migrating adds both dynamic costs.
        ex = EXAMPLE_A
        assert ex.slot_cost("A", "A", migrated=False) == pytest.approx(2.5)
        assert ex.slot_cost("A", "B", migrated=False) == pytest.approx(2.5 + 2.1)
        assert ex.slot_cost("B", "B", migrated=True) == pytest.approx(2.5 + 2.0)

    def test_total_cost_requires_full_placement(self):
        with pytest.raises(ValueError):
            EXAMPLE_A.total_cost(("A",))

    def test_greedy_tie_breaks_toward_not_migrating(self):
        # With delay exactly equal to migration + reconfiguration cost the
        # two choices tie; min() keeps the first (stay) option.
        example = Fig1Example(name="tie", user_path=("A", "B"), inter_cloud_delay=2.0)
        assert example.greedy_placements() == ("A", "A")

    def test_optimal_exhaustive_matches_greedy_when_greedy_is_right(self):
        # With a huge delay cost, following the user is optimal and greedy
        # does exactly that.
        example = Fig1Example(name="big", user_path=("A", "B", "B"), inter_cloud_delay=10.0)
        result = run_example(example)
        assert result.greedy_cost == pytest.approx(result.optimal_cost)
