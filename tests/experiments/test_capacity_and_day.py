"""Tests for the capacity sweep and the continuous-day Figure 2 variant."""

import pytest

from repro.experiments.capacity import run_capacity_sweep
from repro.experiments.fig2 import run_fig2_continuous_day
from repro.experiments.settings import ExperimentScale

TINY = ExperimentScale(num_users=4, num_slots=3, repetitions=1, seed=31)


class TestCapacitySweep:
    @pytest.fixture(scope="class")
    def points(self):
        return run_capacity_sweep(TINY, factors=(1.1, 2.0))

    def test_labels(self, points):
        assert [p.label for p in points] == ["capacity=1.1x", "capacity=2x"]

    def test_ratios_sane(self, points):
        for point in points:
            assert 1.0 - 1e-9 <= point.mean_ratio("online-approx") < 2.0
            assert point.stats["offline-opt"][0] == pytest.approx(1.0)

    def test_capacity_actually_varies(self):
        from dataclasses import replace

        from repro.simulation.scenario import Scenario

        base = Scenario(num_users=4, num_slots=2)
        tight = replace(base, overprovision=1.05).build(seed=1)
        loose = replace(base, overprovision=2.0).build(seed=1)
        assert loose.capacities.sum() > 1.8 * tight.capacities.sum()


class TestContinuousDay:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig2_continuous_day(TINY, hours=("3pm", "4pm"))

    def test_one_point_per_hour(self, points):
        assert [p.label for p in points] == ["3pm", "4pm"]

    def test_full_roster_present(self, points):
        expected = {
            "offline-opt",
            "online-greedy",
            "online-approx",
            "perf-opt",
            "oper-opt",
            "stat-opt",
        }
        for point in points:
            assert set(point.stats) == expected

    def test_hours_share_the_day(self, points):
        # Consecutive hours come from one instance: same capacities (the
        # day-level provisioning) in the underlying comparisons.

        first = points[0].comparisons[0].results["offline-opt"].schedule
        second = points[1].comparisons[0].results["offline-opt"].schedule
        assert first.num_users == second.num_users

    def test_ratios_at_least_one(self, points):
        for point in points:
            for name, (mean, _) in point.stats.items():
                assert mean >= 1.0 - 1e-9, (point.label, name)
