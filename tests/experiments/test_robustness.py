"""Tests for the mobility-robustness driver."""

import pytest

from repro.experiments.robustness import (
    mobility_suite,
    robustness_spread,
    run_mobility_robustness,
)
from repro.experiments.settings import ExperimentScale
from repro.topology.metro import rome_metro_topology


class TestMobilitySuite:
    def test_four_processes(self):
        suite = mobility_suite(rome_metro_topology())
        assert set(suite) == {"taxi", "uniform-walk", "lazy-markov", "levy-flight"}

    def test_all_generate_valid_traces(self):
        import numpy as np

        topo = rome_metro_topology()
        for name, model in mobility_suite(topo).items():
            trace = model.generate(4, 3, np.random.default_rng(0))
            assert trace.num_clouds == topo.num_sites, name
            assert trace.attachment.shape == (3, 4), name


class TestRobustnessRun:
    @pytest.fixture(scope="class")
    def points(self):
        scale = ExperimentScale(num_users=4, num_slots=3, repetitions=1, seed=9)
        return run_mobility_robustness(scale)

    def test_one_point_per_process(self, points):
        assert [p.label for p in points] == [
            "taxi",
            "uniform-walk",
            "lazy-markov",
            "levy-flight",
        ]

    def test_ratios_sane(self, points):
        for point in points:
            assert 1.0 - 1e-9 <= point.mean_ratio("online-approx") < 2.0

    def test_spread(self, points):
        spread = robustness_spread(points, "online-approx")
        assert 0.0 <= spread < 1.0
