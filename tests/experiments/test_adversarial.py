"""Tests for the adversarial instance families."""

import numpy as np
import pytest

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.core.costs import total_cost
from repro.experiments.adversarial import (
    oscillating_price_instance,
    ping_pong_mobility_instance,
    run_threshold_sweep,
)


class TestOscillatingPrices:
    def test_prices_swap(self):
        instance = oscillating_price_instance(num_slots=4, amplitude=1.0, period=1)
        prices = np.asarray(instance.op_prices)
        assert np.allclose(prices[0], [1.0, 2.0])
        assert np.allclose(prices[1], [2.0, 1.0])
        assert np.allclose(prices[2], [1.0, 2.0])

    def test_period_respected(self):
        instance = oscillating_price_instance(num_slots=6, amplitude=1.0, period=3)
        prices = np.asarray(instance.op_prices)
        assert np.allclose(prices[0], prices[2])
        assert not np.allclose(prices[2], prices[3])

    def test_zero_amplitude_is_constant(self):
        instance = oscillating_price_instance(num_slots=5, amplitude=0.0)
        assert np.allclose(instance.op_prices, instance.op_prices[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            oscillating_price_instance(num_slots=0)
        with pytest.raises(ValueError):
            oscillating_price_instance(period=0)
        with pytest.raises(ValueError):
            oscillating_price_instance(amplitude=-1.0)

    def test_deterministic(self):
        a = oscillating_price_instance()
        b = oscillating_price_instance()
        assert np.array_equal(a.op_prices, b.op_prices)


class TestPingPongMobility:
    def test_attachment_bounces(self):
        instance = ping_pong_mobility_instance(num_slots=6, dwell=1)
        assert list(np.asarray(instance.attachment)[:, 0]) == [0, 1, 0, 1, 0, 1]

    def test_dwell(self):
        instance = ping_pong_mobility_instance(num_slots=8, dwell=2)
        assert list(np.asarray(instance.attachment)[:, 0]) == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ping_pong_mobility_instance(num_slots=0)
        with pytest.raises(ValueError):
            ping_pong_mobility_instance(dwell=0)

    def test_fast_ping_pong_punishes_chasing(self):
        # delay slightly above moving cost, dwell 1: parking is optimal and
        # the offline optimum never pays the bounce.
        instance = ping_pong_mobility_instance(
            num_slots=12, delay_cost=2.1, dwell=1
        )
        offline = OfflineOptimal().run(instance)
        greedy = OnlineGreedy().run(instance)
        assert total_cost(greedy, instance) > total_cost(offline, instance)
        # The offline optimum essentially parks (at most one mid-horizon
        # move to balance the alternation); greedy chases every bounce.
        offline_churn = np.abs(np.diff(offline.x, axis=0)).sum()
        greedy_churn = np.abs(np.diff(greedy.x, axis=0)).sum()
        assert offline_churn <= 2.0 + 1e-6
        assert greedy_churn > 4 * offline_churn


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_threshold_sweep(amplitudes=(1.0, 3.0, 5.0), num_slots=12)

    def test_structure(self, sweep):
        assert set(sweep) == {1.0, 3.0, 5.0}
        for ratios in sweep.values():
            assert set(ratios) == {"online-greedy", "online-approx"}
            for value in ratios.values():
                assert value >= 1.0 - 1e-9

    def test_greedy_optimal_outside_trap(self, sweep):
        # Below the chase threshold (A=1) and far above the park threshold
        # (A=5), greedy's myopic rule happens to be the right call.
        assert sweep[1.0]["online-greedy"] == pytest.approx(1.0, abs=1e-6)
        assert sweep[5.0]["online-greedy"] == pytest.approx(1.0, abs=0.02)

    def test_greedy_suffers_inside_trap(self, sweep):
        # A=3 sits in (2, 4): greedy chases a flip-flopping price at a loss.
        assert sweep[3.0]["online-greedy"] > 1.1
        # The regularized algorithm does better there.
        assert sweep[3.0]["online-approx"] < sweep[3.0]["online-greedy"]
