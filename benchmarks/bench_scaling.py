"""ABL-SCALE — wall-clock scaling of the online algorithm in the user count.

Not a paper figure: this quantifies the cost of one full online run
(T slots of P2 solves with the structured IPM) as the system grows, which
is what a deployment would care about. Expect roughly linear-to-quadratic
growth in the number of users at fixed cloud count.
"""

import time

from repro.core.regularization import OnlineRegularizedAllocator
from repro.experiments.report import format_table
from repro.simulation.scenario import Scenario
from repro.solvers.registry import get_backend

from ._util import publish_report


def _run_once(num_users, scale):
    instance = Scenario(num_users=num_users, num_slots=scale.num_slots).build(
        seed=scale.seed
    )
    algorithm = OnlineRegularizedAllocator(backend=get_backend("ipm"))
    start = time.perf_counter()
    schedule = algorithm.run(instance)
    elapsed = time.perf_counter() - start
    assert schedule.is_feasible(instance, tol=1e-5)
    return elapsed


def test_scaling_in_users(benchmark, scale):
    counts = [scale.num_users, 2 * scale.num_users, 4 * scale.num_users]

    def sweep():
        return {n: _run_once(n, scale) for n in counts}

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"J={n}", f"{seconds:.2f}s", f"{seconds / scale.num_slots * 1000:.0f} ms/slot"]
        for n, seconds in timings.items()
    ]
    report = "\n".join(
        [
            "ABL-SCALE - online-approx wall clock vs user count "
            f"(I=15, T={scale.num_slots}, structured IPM)",
            format_table(["users", "total", "per slot"], rows),
        ]
    )
    publish_report("scaling", report)
