"""EXT-THRESHOLD — adversarial price oscillation (empirical lower bounds).

The paper leaves competitive-ratio lower bounds as future work; this bench
measures them on the deterministic oscillating-price family: prices flip
every slot with amplitude A, the migrate-or-stay break-even sits at
A = b + c = 2, and parking stays optimal until A = 2(b + c) = 4.

Expected shape: greedy is exactly optimal outside (2, 4) and pays a sharp
penalty inside (it chases a price that immediately flips back), while
online-approx moves through the trap smoothly and beats greedy inside it.
"""

from repro.experiments.adversarial import run_threshold_sweep
from repro.experiments.report import format_table

from ._util import publish_report

AMPLITUDES = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0)


def test_threshold_sweep(benchmark, scale):
    sweep = benchmark.pedantic(
        run_threshold_sweep,
        kwargs={"amplitudes": AMPLITUDES, "num_slots": 2 * scale.num_slots},
        rounds=1,
        iterations=1,
    )

    rows = [
        [f"A={amplitude:g}", ratios["online-greedy"], ratios["online-approx"]]
        for amplitude, ratios in sweep.items()
    ]
    report = "\n".join(
        [
            "EXT-THRESHOLD - oscillating prices, flip every slot, "
            "move cost b+c = 2 (trap region: 2 < A < 4)",
            format_table(["amplitude", "online-greedy", "online-approx"], rows),
        ]
    )
    publish_report("adversarial_threshold", report)

    # Greedy optimal below the chase threshold, hurt inside the trap.
    assert sweep[1.0]["online-greedy"] < 1.001
    trap = sweep[3.0]
    assert trap["online-greedy"] > 1.1
    assert trap["online-approx"] < trap["online-greedy"]
