"""FIG1 — the Section II-E worked examples (Figure 1a / 1b).

Regenerates the paper's exact totals: greedy 11.5 vs optimal 9.6 in
example (a), greedy 11.3 vs optimal 9.5 in example (b). The benchmark also
asserts the numbers, making it a regression gate on the cost arithmetic.
"""

from repro.experiments.fig1 import PAPER_TOTALS, run_fig1
from repro.experiments.report import format_table

from ._util import publish_report


def test_fig1_examples(benchmark):
    results = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    rows = []
    for name, result in sorted(results.items()):
        greedy_paper, optimal_paper = PAPER_TOTALS[name]
        rows.append(
            [
                f"({name})",
                "-".join(result.greedy_placements),
                result.greedy_cost,
                greedy_paper,
                "-".join(result.optimal_placements),
                result.optimal_cost,
                optimal_paper,
            ]
        )
        assert abs(result.greedy_cost - greedy_paper) < 1e-9
        assert abs(result.optimal_cost - optimal_paper) < 1e-9

    report = "\n".join(
        [
            "FIG1 - greedy pitfalls (Section II-E worked examples)",
            format_table(
                [
                    "example",
                    "greedy path",
                    "greedy",
                    "paper",
                    "optimal path",
                    "optimal",
                    "paper",
                ],
                rows,
            ),
        ]
    )
    publish_report("fig1_examples", report)
