"""EXT-CAPACITY — sensitivity to the over-provisioning factor.

The paper fixes capacity at 1.25x the total workload (80% utilization);
this bench sweeps the factor from nearly-tight to generous and reports the
empirical ratios, locating the paper's choice on the operational curve.
"""

from repro.experiments.capacity import OVERPROVISION_FACTORS, run_capacity_sweep
from repro.experiments.runner import ratio_table

from ._util import publish_report


def test_capacity_sweep(benchmark, scale):
    points = benchmark.pedantic(
        run_capacity_sweep, kwargs={"scale": scale}, rounds=1, iterations=1
    )

    report = "\n".join(
        [
            "EXT-CAPACITY - empirical ratio vs over-provisioning factor "
            "(paper's setting: 1.25x)",
            ratio_table(points, axis_name="capacity"),
        ]
    )
    publish_report("capacity", report)

    assert [p.label for p in points] == [
        f"capacity={f:g}x" for f in OVERPROVISION_FACTORS
    ]
    for point in points:
        assert point.mean_ratio("online-approx") < 1.6, point.label
