"""Shared benchmark helpers (scale resolution, report publishing).

Every benchmark regenerates one of the paper's figures/tables and

* prints the paper-style report (visible with ``pytest -s`` or on failure),
* writes it to ``benchmarks/results/<name>.txt`` so the committed numbers
  in EXPERIMENTS.md can be traced back to a concrete run.

Scale defaults are laptop-friendly; override with environment variables
``REPRO_BENCH_USERS``, ``REPRO_BENCH_SLOTS``, ``REPRO_BENCH_REPS``
(e.g. paper scale: USERS=300 SLOTS=60 REPS=5 — expect a long run).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.settings import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> ExperimentScale:
    """Benchmark scale, overridable via environment variables."""
    return ExperimentScale(
        num_users=int(os.environ.get("REPRO_BENCH_USERS", "16")),
        num_slots=int(os.environ.get("REPRO_BENCH_SLOTS", "12")),
        repetitions=int(os.environ.get("REPRO_BENCH_REPS", "2")),
        seed=int(os.environ.get("REPRO_BENCH_SEED", "2017")),
    )


def publish_report(name: str, report: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print()
    print(report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
