"""THEORY-CERT — numerically certify the competitive-analysis chain.

Section IV's proof rests on P1 >= P3 >= D (eq. 12). This bench builds and
solves the relaxed LP P3 and its dual D on a real scenario instance,
evaluates P1 of the online algorithm's trajectory, and prints the chain —
including the dual-certified ratio upper bound P1/D*, which needs no
offline solve at all.
"""

from repro.core.duality import duality_certificate, p1_value
from repro.core.regularization import OnlineRegularizedAllocator
from repro.baselines import OfflineOptimal
from repro.experiments.report import format_table
from repro.simulation.scenario import Scenario

from ._util import publish_report


def run_certificate(scale):
    instance = Scenario(
        num_users=scale.num_users, num_slots=scale.num_slots
    ).build(seed=scale.seed)
    schedule = OnlineRegularizedAllocator().run(instance)
    certificate = duality_certificate(instance, schedule)
    offline = p1_value(OfflineOptimal().run(instance), instance)
    return certificate, offline


def test_duality_certificate(benchmark, scale):
    certificate, offline = benchmark.pedantic(
        run_certificate, args=(scale,), rounds=1, iterations=1
    )

    rows = [
        ["P1(online-approx)", certificate.p1],
        ["P1(offline-opt)", offline],
        ["P3* (relaxed LP)", certificate.p3],
        ["D* (dual LP)", certificate.dual],
        ["certified ratio P1/D*", certificate.p1 / certificate.dual],
        ["true ratio P1/P1(offline)", certificate.p1 / offline],
    ]
    report = "\n".join(
        [
            "THEORY-CERT - the eq. 12 chain P1 >= P3 >= D, numerically",
            format_table(["quantity", "value"], rows),
        ]
    )
    publish_report("duality_certificate", report)

    assert certificate.chain_holds
    # LP strong duality: P3* == D* up to solver tolerance.
    assert abs(certificate.lp_duality_gap) < 1e-4 * max(1.0, certificate.p3)
    # The dual value certifies the ratio without an offline solve.
    assert certificate.p1 / certificate.dual >= certificate.p1 / offline - 1e-9
