"""FIG4 (left) — impact of the regularization parameter eps.

Regenerates the eps sweep of Figure 4 (eps = eps1 = eps2 over
[1e-3, 1e3]) and reports the theoretical bound r = 1 + gamma|I| next to
the empirical ratios. Expected shapes: the empirical curve moves within a
narrow band and stabilizes for large eps; the theoretical bound is
monotonically decreasing in eps (Remark after Theorem 2).
"""

import numpy as np

from repro.experiments.fig4 import (
    EPS_VALUES,
    fig4_report,
    run_eps_sweep,
    theoretical_bounds,
)

from ._util import publish_report


def test_fig4_eps_sweep(benchmark, scale):
    points = benchmark.pedantic(
        run_eps_sweep, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    bounds = theoretical_bounds(scale, EPS_VALUES)

    report = fig4_report(points, mu_points=[], bounds=bounds)
    publish_report("fig4_epsilon", report)

    ratios = [p.mean_ratio("online-approx") for p in points]
    # Empirical ratios stay in a stable band across six decades of eps.
    assert max(ratios) - min(ratios) < 0.3
    assert max(ratios) < 1.5
    # The theoretical bound is monotone decreasing in eps.
    bound_values = [bounds[e] for e in EPS_VALUES]
    assert np.all(np.diff(bound_values) <= 1e-9)
