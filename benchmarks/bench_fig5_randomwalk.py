"""FIG5 — synthetic random-walk mobility, varying the number of users.

Regenerates Figure 5: users walk the metro graph (uniform choice among
{stay} + neighbors, the paper's process), the user count sweeps upward,
and online-approx / online-greedy are normalized by offline-opt.

Two series are reported (see EXPERIMENTS.md):

* ``uniform`` — the paper's exact walk (a user may hop stations every
  one-minute slot);
* ``dwell`` — the same walk with a stay bias so a hop takes several slots
  (a metro ride is longer than one minute). This is the regime where
  greedy's myopia becomes clearly more expensive than online-approx.
"""

from repro.experiments.fig5 import fig5_report, run_fig5

from ._util import publish_report


def _user_counts(scale):
    base = max(4, scale.num_users // 2)
    return (base, scale.num_users, 2 * scale.num_users)


def test_fig5_uniform_walk(benchmark, scale):
    counts = _user_counts(scale)
    points = benchmark.pedantic(
        run_fig5,
        kwargs={"scale": scale, "user_counts": counts, "stay_bias": 0.0},
        rounds=1,
        iterations=1,
    )
    report = fig5_report(points)
    publish_report("fig5_randomwalk_uniform", report)

    approx = [p.mean_ratio("online-approx") for p in points]
    # Paper shape: online-approx performs stably regardless of user count.
    assert max(approx) - min(approx) < 0.25
    assert max(approx) < 1.5


def test_fig5_dwell_walk(benchmark, scale):
    counts = _user_counts(scale)
    points = benchmark.pedantic(
        run_fig5,
        kwargs={"scale": scale, "user_counts": counts, "stay_bias": 3.0},
        rounds=1,
        iterations=1,
    )
    report = fig5_report(points)
    publish_report("fig5_randomwalk_dwell", report)

    for point in points:
        approx = point.mean_ratio("online-approx")
        greedy = point.mean_ratio("online-greedy")
        assert approx < 1.5
        # Greedy pays for its myopia once user dwell times span slots.
        assert greedy > approx - 0.05, (point.label, greedy, approx)
