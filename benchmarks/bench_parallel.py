"""PARALLEL — sweep fan-out speedup and warm-start iteration reduction.

Two measurements behind the parallel experiment engine:

* **Sweep speedup** — a fig2-style (hour x repetition) grid executed
  serially vs. across a 4-worker process pool, with the determinism
  invariant (identical ratios) asserted on every run. The speedup is
  hardware-bound: on a single-CPU container the pool cannot beat serial
  (the report records the visible CPU count next to the number); on >= 4
  CPUs the grid is embarrassingly parallel and ~Nx is expected.
* **Warm starts** — the online algorithm seeded per slot with the previous
  slot's solution vs. cold-started every slot: same trajectory cost,
  measurably fewer interior-point iterations (the entropic regularizer
  keeps consecutive optima close, so the barrier schedule can start low).

Results land in benchmarks/results/parallel.txt.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.costs import total_cost
from repro.core.regularization import OnlineRegularizedAllocator
from repro.experiments.fig2 import fig2_scenario
from repro.experiments.runner import run_ratio_sweep
from repro.experiments.settings import all_paper_algorithms
from repro.solvers.registry import get_backend

from ._util import publish_report

#: Worker count for the parallel leg of the comparison.
WORKERS = 4


def _fig2_cases(scale, hours=("3pm", "4pm")):
    scenario = fig2_scenario(scale)
    algorithms = all_paper_algorithms(scale.eps)
    return [
        (hour, scenario, algorithms, scale.seed + 1000 * case)
        for case, hour in enumerate(hours)
    ]


def _measure_sweep(scale) -> tuple[str, float]:
    cases = _fig2_cases(scale)
    cells = len(cases) * scale.repetitions

    start = time.perf_counter()
    serial = run_ratio_sweep(cases, repetitions=scale.repetitions, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_ratio_sweep(cases, repetitions=scale.repetitions, workers=WORKERS)
    parallel_s = time.perf_counter() - start

    # Determinism invariant: the pool changes wall-clock time, never numbers.
    for ser, par in zip(serial, parallel):
        assert ser.label == par.label
        assert ser.stats == par.stats, (ser.label, ser.stats, par.stats)

    cpus = os.cpu_count() or 1
    speedup = serial_s / parallel_s
    report = "\n".join(
        [
            "Parallel sweep engine - fig2-style grid, serial vs process pool",
            f"  grid cells          : {cells} (hour x repetition)",
            f"  visible CPUs        : {cpus}",
            f"  serial (workers=1)  : {serial_s:8.2f} s",
            f"  pool   (workers={WORKERS}) : {parallel_s:8.2f} s",
            f"  speedup             : {speedup:.2f}x",
            "  determinism         : parallel ratios identical to serial (asserted)",
        ]
    )
    if cpus >= 4:
        # The grid is embarrassingly parallel; on real multicore hardware
        # anything below 2x means the executor is broken.
        assert speedup >= 2.0, report
    return report, speedup


def _measure_warm_start(scale) -> tuple[str, float]:
    instance = fig2_scenario(scale).build(seed=scale.seed)
    backend = get_backend("ipm")

    runs = {}
    for label, warm in (("cold", False), ("warm", True)):
        algorithm = OnlineRegularizedAllocator(backend=backend, warm_start=warm)
        start = time.perf_counter()
        schedule = algorithm.run(instance)
        elapsed = time.perf_counter() - start
        iters = [solve.iterations for solve in algorithm.last_solves]
        runs[label] = {
            "cost": total_cost(schedule, instance),
            "total_iters": sum(iters),
            "mean_iters": sum(iters) / len(iters),
            "time_s": elapsed,
        }

    cold, warm = runs["cold"], runs["warm"]
    reduction = 100.0 * (1.0 - warm["mean_iters"] / cold["mean_iters"])
    assert warm["cost"] == pytest.approx(cold["cost"], rel=1e-6)
    assert warm["total_iters"] < cold["total_iters"]

    report = "\n".join(
        [
            "Warm-started per-slot solves (structured IPM, fig2 instance)",
            f"  slots               : {instance.num_slots}",
            f"  cold mean iters/slot: {cold['mean_iters']:8.1f}  "
            f"({cold['time_s']:.2f} s)",
            f"  warm mean iters/slot: {warm['mean_iters']:8.1f}  "
            f"({warm['time_s']:.2f} s)",
            f"  iteration reduction : {reduction:.1f}%",
            f"  trajectory cost     : identical to rel 1e-6 "
            f"({warm['cost']:.6f} vs {cold['cost']:.6f})",
        ]
    )
    return report, reduction


def test_parallel_engine(benchmark, scale):
    """Measure both legs once and publish the combined report."""

    def measure():
        sweep_report, speedup = _measure_sweep(scale)
        warm_report, reduction = _measure_warm_start(scale)
        return sweep_report + "\n\n" + warm_report, speedup, reduction

    report, _, reduction = benchmark.pedantic(measure, rounds=1, iterations=1)
    publish_report("parallel", report)
    # Warm starts must help at any scale; speedup is asserted inside
    # _measure_sweep only when the hardware can express it.
    assert reduction > 5.0, report
