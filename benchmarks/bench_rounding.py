"""EXT-ROUNDING — the cost of VM-granular (integral) allocation.

The paper's model is fractional but calls VMs "the smallest resource
segment". This bench rounds each algorithm's fractional schedule to an
integral one (largest-remainder + capacity repair) and reports the
integrality premium — how much of the competitive performance survives the
granularity restriction.
"""

from repro.baselines import OfflineOptimal, OnlineGreedy
from repro.core.costs import total_cost
from repro.core.regularization import OnlineRegularizedAllocator
from repro.core.rounding import integrality_gap
from repro.experiments.report import format_table
from repro.simulation.scenario import Scenario

from ._util import publish_report


def run_rounding_study(scale):
    instance = Scenario(
        num_users=scale.num_users, num_slots=scale.num_slots
    ).build(seed=scale.seed)
    offline = total_cost(OfflineOptimal().run(instance), instance)
    rows = []
    for algorithm in (OnlineRegularizedAllocator(), OnlineGreedy()):
        schedule = algorithm.run(instance)
        fractional_ratio = total_cost(schedule, instance) / offline
        rounded, gap = integrality_gap(schedule, instance)
        assert rounded.is_feasible(instance, tol=1e-9)
        rows.append(
            [
                algorithm.name,
                fractional_ratio,
                total_cost(rounded, instance) / offline,
                f"{100 * gap:.2f}%",
            ]
        )
    return rows


def test_rounding_premium(benchmark, scale):
    rows = benchmark.pedantic(run_rounding_study, args=(scale,), rounds=1, iterations=1)

    report = "\n".join(
        [
            "EXT-ROUNDING - integral (VM-granular) allocation premium",
            format_table(
                ["algorithm", "fractional ratio", "integral ratio", "premium"], rows
            ),
        ]
    )
    publish_report("rounding", report)

    for row in rows:
        premium = float(row[3].rstrip("%")) / 100.0
        # Rounding keeps the solution feasible at a modest premium.
        assert -0.02 < premium < 0.5, row
