"""FIG4 (right) — impact of mu, the dynamic/static weight ratio.

Regenerates the mu sweep of Figure 4 over [1e-3, 1e3]. Expected shape
(paper Section V-C): for small mu the static cost dominates and the
algorithm is near-optimal; for large mu the ratio settles at a stable,
reasonably good level.
"""

from repro.experiments.fig4 import MU_VALUES, fig4_report, run_mu_sweep

from ._util import publish_report


def test_fig4_mu_sweep(benchmark, scale):
    points = benchmark.pedantic(
        run_mu_sweep, kwargs={"scale": scale}, rounds=1, iterations=1
    )

    report = fig4_report(eps_points=[], mu_points=points)
    publish_report("fig4_mu", report)

    ratios = {p.label: p.mean_ratio("online-approx") for p in points}
    # Small mu (static-dominated): essentially optimal.
    assert ratios[f"mu={MU_VALUES[0]:g}"] < 1.1
    # Every point stays at a reasonable ratio (paper: "stable yet
    # reasonably good").
    assert max(ratios.values()) < 1.6
