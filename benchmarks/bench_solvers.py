"""ABL-SOLVER — ablation: structured interior-point vs SciPy trust-constr.

The paper solved P2 with IPOPT; this repository ships two backends. The
ablation times one representative P2 subproblem solve per backend and
checks they agree on the optimum — quantifying what the structured
Woodbury solver buys (typically an order of magnitude).
"""

import numpy as np
import pytest

from repro.core.subproblem import RegularizedSubproblem
from repro.experiments.report import format_table
from repro.simulation.scenario import Scenario
from repro.solvers.interior_point import InteriorPointBackend
from repro.solvers.scipy_backend import ScipyTrustConstrBackend

from ._util import publish_report

_RESULTS: dict[str, float] = {}


def _subproblem(scale):
    instance = Scenario(
        num_users=scale.num_users, num_slots=scale.num_slots
    ).build(seed=scale.seed)
    rng = np.random.default_rng(scale.seed)
    x_prev = rng.uniform(0.0, 1.0, size=(instance.num_clouds, instance.num_users))
    x_prev *= np.asarray(instance.workloads)[None, :] / instance.num_clouds
    return RegularizedSubproblem.from_instance(
        instance, slot=1, x_prev=x_prev, eps1=1.0, eps2=1.0
    )


@pytest.mark.parametrize(
    "backend",
    [InteriorPointBackend(), ScipyTrustConstrBackend()],
    ids=["structured-ipm", "scipy-trust-constr"],
)
def test_p2_solve(benchmark, scale, backend):
    sub = _subproblem(scale)
    program = sub.build_program()
    result = benchmark(lambda: backend.solve(program, tol=1e-8))
    _RESULTS[backend.name] = result.objective

    if len(_RESULTS) == 2:
        values = list(_RESULTS.values())
        scale_obj = max(1.0, abs(values[0]))
        assert abs(values[0] - values[1]) < 1e-4 * scale_obj
        report = "\n".join(
            [
                "ABL-SOLVER - P2 backend agreement (timings in pytest-benchmark table)",
                format_table(
                    ["backend", "objective"],
                    [[name, obj] for name, obj in _RESULTS.items()],
                ),
            ]
        )
        publish_report("solver_ablation", report)
