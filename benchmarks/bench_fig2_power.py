"""FIG2 — empirical competitive ratios, taxi mobility, power workloads.

Regenerates Figure 2: six hourly test cases, all six algorithms, ratios
normalized by offline-opt, plus the headline claims (online-approx ~1.1,
up to 60% better than online-greedy, up to 4x better than the atomistic /
static approaches). Paper-scale via REPRO_BENCH_USERS/SLOTS/REPS.
"""

from repro.experiments.fig2 import fig2_report, run_fig2, run_fig2_continuous_day

from ._util import publish_report


def test_fig2_competitive_ratio(benchmark, scale):
    points = benchmark.pedantic(
        run_fig2, kwargs={"scale": scale}, rounds=1, iterations=1
    )

    report = fig2_report(points)
    publish_report("fig2_power", report)

    for point in points:
        # Paper shape: online-approx is near-optimal and beats every
        # atomistic algorithm in every test case.
        approx = point.mean_ratio("online-approx")
        assert approx < 1.45, f"{point.label}: online-approx ratio {approx}"
        for name in ("perf-opt", "oper-opt", "stat-opt"):
            assert point.mean_ratio(name) > approx, (point.label, name)


def test_fig2_continuous_day(benchmark, scale):
    """The paper's exact method: hourly cases sliced from one day, sharing
    taxis and the day-level capacity plan."""
    points = benchmark.pedantic(
        run_fig2_continuous_day,
        kwargs={"scale": scale, "hours": ("3pm", "4pm", "5pm")},
        rounds=1,
        iterations=1,
    )
    report = fig2_report(points)
    publish_report("fig2_power_continuous_day", report)

    for point in points:
        approx = point.mean_ratio("online-approx")
        assert approx < 1.45, f"{point.label}: online-approx ratio {approx}"
