"""FIG3 — competitive ratios under uniform and normal workloads.

Regenerates Figure 3: the Figure 2 comparison with the user-workload
distribution swapped to uniform and normal. Expected shape: online-approx
stays near-optimal under every distribution.
"""

from repro.experiments.fig3 import fig3_report, run_fig3

from ._util import publish_report


def test_fig3_workload_distributions(benchmark, scale):
    points = benchmark.pedantic(
        run_fig3, kwargs={"scale": scale}, rounds=1, iterations=1
    )

    report = fig3_report(points)
    publish_report("fig3_workloads", report)

    assert [p.label for p in points] == ["uniform", "normal"]
    for point in points:
        approx = point.mean_ratio("online-approx")
        assert approx < 1.45, f"{point.label}: online-approx ratio {approx}"
        for name in ("perf-opt", "oper-opt", "stat-opt"):
            assert point.mean_ratio(name) > approx, (point.label, name)
