"""EXT-MOBILITY — "arbitrary user mobility": robustness across processes.

The paper's guarantee holds for arbitrary mobility. This bench runs the
same scenario under four structurally different mobility processes (smooth
taxi trips, the paper's uniform metro walk, a lazy Markov walk, heavy-
tailed Levy flights) and reports the empirical ratios. Expected shape:
online-approx stays in a narrow band across all processes.
"""

from repro.experiments.robustness import robustness_spread, run_mobility_robustness
from repro.experiments.runner import ratio_table

from ._util import publish_report


def test_mobility_robustness(benchmark, scale):
    points = benchmark.pedantic(
        run_mobility_robustness, kwargs={"scale": scale}, rounds=1, iterations=1
    )

    spread = robustness_spread(points, "online-approx")
    report = "\n".join(
        [
            "EXT-MOBILITY - empirical ratio across mobility processes",
            ratio_table(points, axis_name="mobility"),
            "",
            f"online-approx spread across processes: {spread:.3f} "
            "(paper's claim: performance independent of the mobility pattern)",
        ]
    )
    publish_report("mobility_robustness", report)

    for point in points:
        assert point.mean_ratio("online-approx") < 1.5, point.label
    assert spread < 0.25
