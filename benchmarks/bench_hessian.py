"""PERF-HESSIAN — sparse Hessian assembly at paper scale and beyond.

``RegularizedSubproblem.hessian()`` used to densify the per-cloud rank-one
blocks through a Python loop over LIL fancy indexing; it is now a single
``sparse.kron`` expression. This benchmark times the assembly at J >= 200
users (where the old loop dominated subproblem setup) and cross-checks the
result against the reference ``hessian_factors`` structure.
"""

import os

import numpy as np
import pytest
from scipy import sparse

from repro.core.subproblem import RegularizedSubproblem
from repro.experiments.report import format_table
from repro.simulation.scenario import Scenario

from ._util import publish_report

#: At least 200 users per the optimization's acceptance bar; scale up via env.
HESSIAN_USERS = max(200, int(os.environ.get("REPRO_BENCH_HESSIAN_USERS", "200")))


def _subproblem(num_users: int) -> tuple[RegularizedSubproblem, np.ndarray]:
    instance = Scenario(num_users=num_users, num_slots=2).build(seed=2017)
    rng = np.random.default_rng(2017)
    x_prev = rng.uniform(0.0, 1.0, size=(instance.num_clouds, num_users))
    x_prev *= np.asarray(instance.workloads)[None, :] / instance.num_clouds
    sub = RegularizedSubproblem.from_instance(
        instance, slot=1, x_prev=x_prev, eps1=1.0, eps2=1.0
    )
    flat = x_prev.ravel() + 0.1
    return sub, flat


def _reference_hessian(sub: RegularizedSubproblem, flat: np.ndarray) -> np.ndarray:
    """Dense reconstruction from the (diag, cloud_scale) factor form."""
    diag, cloud_scale = sub.hessian_factors(flat)
    num_users = sub.num_users
    dense = np.diag(diag)
    for i, scale in enumerate(cloud_scale):
        sl = slice(i * num_users, (i + 1) * num_users)
        dense[sl, sl] += scale
    return dense


def test_hessian_assembly(benchmark):
    """Time the sparse assembly; verify it equals the factor-form Hessian."""
    sub, flat = _subproblem(HESSIAN_USERS)
    hess = benchmark(lambda: sub.hessian(flat))

    assert sparse.issparse(hess)
    dense = _reference_hessian(sub, flat)
    assert np.allclose(hess.toarray(), dense, rtol=1e-12, atol=1e-12)

    n = hess.shape[0]
    report = "\n".join(
        [
            "PERF-HESSIAN - sparse kron assembly "
            f"(J={HESSIAN_USERS}, n={n} variables; timings in pytest-benchmark table)",
            format_table(
                ["quantity", "value"],
                [
                    ["users J", HESSIAN_USERS],
                    ["variables n", n],
                    ["stored nonzeros", hess.nnz],
                ],
            ),
        ]
    )
    publish_report("hessian_assembly", report)


@pytest.mark.parametrize("num_users", [8])
def test_hessian_matches_factors_small(num_users):
    """Smoke-scale agreement between hessian() and hessian_factors()."""
    sub, flat = _subproblem(num_users)
    assert np.allclose(
        sub.hessian(flat).toarray(), _reference_hessian(sub, flat), atol=1e-12
    )
