"""EXT-LOOKAHEAD — what perfect prediction buys (receding-horizon ablation).

Related work assumes predicted future costs; the paper's algorithm needs no
prediction. This ablation sweeps a receding-horizon controller with a
perfect W-slot oracle from W=1 (= online-greedy) to W=T (= offline-opt)
and places the prediction-free online-approx on the same axis — showing
how many slots of *perfect* foresight the regularization is worth.
"""

from repro.baselines import OfflineOptimal, OnlineGreedy, RecedingHorizon
from repro.core.costs import total_cost
from repro.core.regularization import OnlineRegularizedAllocator
from repro.experiments.report import format_table
from repro.simulation.scenario import Scenario

from ._util import publish_report


def run_lookahead_sweep(scale):
    scenario = Scenario(num_users=scale.num_users, num_slots=scale.num_slots)
    instance = scenario.build(seed=scale.seed)
    offline = total_cost(OfflineOptimal().run(instance), instance)
    windows = [1, 2, 3, max(4, scale.num_slots // 2), scale.num_slots]
    rows = {}
    for window in windows:
        cost = total_cost(RecedingHorizon(window=window).run(instance), instance)
        rows[f"lookahead-{window}"] = cost / offline
    rows["online-approx (no prediction)"] = (
        total_cost(OnlineRegularizedAllocator().run(instance), instance) / offline
    )
    rows["online-greedy"] = total_cost(OnlineGreedy().run(instance), instance) / offline
    return rows


def test_lookahead_ablation(benchmark, scale):
    rows = benchmark.pedantic(
        run_lookahead_sweep, args=(scale,), rounds=1, iterations=1
    )

    report = "\n".join(
        [
            "EXT-LOOKAHEAD - empirical ratio vs perfect prediction window",
            format_table(
                ["algorithm", "ratio"], [[k, v] for k, v in rows.items()]
            ),
        ]
    )
    publish_report("lookahead", report)

    # Endpoints are exact by construction.
    assert abs(rows["lookahead-1"] - rows["online-greedy"]) < 1e-6
    assert abs(rows[f"lookahead-{scale.num_slots}"] - 1.0) < 1e-6
    # Full lookahead dominates greedy.
    assert rows[f"lookahead-{scale.num_slots}"] <= rows["lookahead-1"] + 1e-9
