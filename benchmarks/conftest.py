"""Benchmark fixtures."""

import pytest

from ._util import bench_scale


@pytest.fixture(scope="session")
def scale():
    return bench_scale()
