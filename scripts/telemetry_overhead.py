"""CI smoke check: streaming telemetry must not change results.

Runs the same seeded comparison twice — once under the zero-overhead
:class:`repro.telemetry.NullRegistry` default, once inside a
:func:`repro.telemetry.streaming_manifest_session` with the watchdog
enabled and ``max_events=0`` (the memory-bounded live mode) — and
enforces the observe-only contract:

* every algorithm's total cost is identical across the two runs to
  1e-9 relative (telemetry never perturbs the numbers);
* the streamed manifest passes
  :func:`repro.analysis.verify_manifest_costs` (per-slot events sum to
  each run's ``run_end`` totals);
* the wall-time delta is printed as an advisory (shared CI runners are
  too noisy to gate on), so overhead creep is visible in the job log.

A third **profiled** leg re-runs the streamed comparison inside
:func:`repro.telemetry.profiling_session` (phase timers + the 19 hz
sampling profiler) and extends the contract:

* profiled costs stay identical to the bare run to the same 1e-9;
* the profiled manifest carries ``prof.*`` events, the non-profiled one
  carries **none** (profiling-off leaves the manifest clean — the
  byte-level twin of the zero-overhead gate);
* sampler overhead is printed as an advisory next to the streaming one.

A fourth **recorded** leg re-runs the streamed comparison with the
incident flight recorder and the SLO burn-rate plane armed
(:mod:`repro.telemetry.flight` / :mod:`repro.telemetry.slo`):

* recorded costs stay identical to the bare run to the same 1e-9 (the
  recorder snapshots solve inputs, it never perturbs the solve);
* the recorded manifest carries a positive ``flight.snapshots`` counter;
* the recorder-off manifests carry **zero** ``incident.*`` / ``slo.*``
  events — recorder off leaves the manifest clean.

Exit code 0 on success, 1 with a diagnostic on any mismatch.

Run:  python scripts/telemetry_overhead.py [--users N] [--slots T]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

#: Relative tolerance on cost identity between the two runs. Both runs
#: execute the same deterministic code path, so this is a bit-identity
#: check with float-printing headroom, not a noise allowance.
COST_RTOL = 1e-9


#: Sampling-profiler frequency for the profiled leg (the CLI default:
#: co-prime with periodic slot work, so samples don't alias).
PROFILE_HZ = 19.0


def run_once(
    instance,
    stream_path: Path | None,
    *,
    profile: bool = False,
    record_flights: bool = False,
) -> tuple[dict[str, float], float]:
    """One seeded comparison; returns (total cost per algorithm, wall s)."""
    import contextlib

    from repro import (
        OfflineOptimal,
        OnlineGreedy,
        OnlineRegularizedAllocator,
        compare_algorithms,
    )
    from repro.telemetry import (
        FlightRecorder,
        default_rules,
        flight_session,
        profiling_session,
        streaming_manifest_session,
    )

    algorithms = [OfflineOptimal(), OnlineGreedy(), OnlineRegularizedAllocator()]
    recorder = FlightRecorder(8) if record_flights else None
    start = time.perf_counter()
    if stream_path is None:
        comparison = compare_algorithms(algorithms, instance)
    else:
        with streaming_manifest_session(
            stream_path,
            config={"check": "telemetry_overhead"},
            watchdog_rules=default_rules(),
            slo=True if record_flights else None,
            recorder=recorder,
        ):
            scope = (
                profiling_session(hz=PROFILE_HZ)
                if profile
                else contextlib.nullcontext()
            )
            flight_scope = (
                flight_session(recorder)
                if recorder is not None
                else contextlib.nullcontext()
            )
            with scope, flight_scope:
                comparison = compare_algorithms(algorithms, instance)
    wall = time.perf_counter() - start
    costs = {
        name: result.total_cost for name, result in comparison.results.items()
    }
    return costs, wall


def main(argv: list[str] | None = None) -> int:
    """Run the overhead check; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=10)
    parser.add_argument("--slots", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    from repro import Scenario
    from repro.analysis import load_manifest, verify_manifest_costs

    instance = Scenario(
        num_users=args.users, num_slots=args.slots
    ).build(seed=args.seed)

    manifest = Path(tempfile.gettempdir()) / "telemetry_overhead.jsonl"
    profiled_manifest = (
        Path(tempfile.gettempdir()) / "telemetry_overhead_profiled.jsonl"
    )
    recorded_manifest = (
        Path(tempfile.gettempdir()) / "telemetry_overhead_recorded.jsonl"
    )
    manifest.unlink(missing_ok=True)
    profiled_manifest.unlink(missing_ok=True)
    recorded_manifest.unlink(missing_ok=True)

    bare_costs, bare_wall = run_once(instance, None)
    streamed_costs, streamed_wall = run_once(instance, manifest)
    profiled_costs, profiled_wall = run_once(
        instance, profiled_manifest, profile=True
    )
    recorded_costs, recorded_wall = run_once(
        instance, recorded_manifest, record_flights=True
    )

    failures = []
    for name, bare in bare_costs.items():
        for label, other_costs in (
            ("streamed", streamed_costs),
            ("profiled", profiled_costs),
            ("recorded", recorded_costs),
        ):
            other = other_costs.get(name)
            if other is None:
                failures.append(f"{name}: missing from the {label} run")
                continue
            scale = max(1.0, abs(bare))
            if abs(other - bare) > COST_RTOL * scale:
                failures.append(
                    f"{name}: bare {bare!r} != {label} {other!r} "
                    f"(delta {abs(other - bare):.3e})"
                )

    record = load_manifest(manifest)
    try:
        checks = verify_manifest_costs(record)
    except ValueError as error:
        failures.append(f"manifest verification: {error}")
        checks = []
    for check in checks:
        if not check.ok(COST_RTOL):
            failures.append(
                f"manifest run {check.key}: slot events deviate from "
                f"run_end totals by {check.deviation:.3e}"
            )

    # The profiling-off gate: a run without --profile must leave zero
    # prof.* events (and no trace ids) in its manifest — profiling off is
    # not merely cheap, it is absent.
    stray = [
        event
        for event in record.events
        if str(event.get("type", "")).startswith("prof.")
        or "trace_id" in event
    ]
    if stray:
        failures.append(
            f"non-profiled manifest carries {len(stray)} prof.*/traced "
            f"event(s); first: {stray[0]}"
        )
    profiled_record = load_manifest(profiled_manifest)
    profiled_events = [
        event
        for event in profiled_record.events
        if str(event.get("type", "")).startswith("prof.")
    ]
    if not profiled_events:
        failures.append("profiled manifest carries no prof.* events")

    # The recorder-off gate: manifests from runs without the flight
    # recorder / SLO plane must carry zero incident.* / slo.* events.
    for label, clean_record in (
        ("streamed", record),
        ("profiled", profiled_record),
    ):
        stray_incident = [
            event
            for event in clean_record.events
            if str(event.get("type", "")).startswith(("incident.", "slo."))
        ]
        if stray_incident:
            failures.append(
                f"recorder-off {label} manifest carries "
                f"{len(stray_incident)} incident.*/slo.* event(s); "
                f"first: {stray_incident[0]}"
            )
    recorded_record = load_manifest(recorded_manifest)
    snapshots_taken = int(recorded_record.counters.get("flight.snapshots", 0))
    if snapshots_taken <= 0:
        failures.append(
            "recorded manifest carries no flight.snapshots counter — the "
            "recorder leg did not actually record"
        )

    overhead = streamed_wall - bare_wall
    pct = 100.0 * overhead / bare_wall if bare_wall > 0 else float("nan")
    print(
        f"telemetry overhead (advisory): bare {bare_wall:.3f}s, "
        f"streamed {streamed_wall:.3f}s, delta {overhead:+.3f}s ({pct:+.1f}%)"
    )
    sampler_overhead = profiled_wall - streamed_wall
    sampler_pct = (
        100.0 * sampler_overhead / streamed_wall
        if streamed_wall > 0
        else float("nan")
    )
    print(
        f"profiler overhead (advisory): profiled {profiled_wall:.3f}s at "
        f"{PROFILE_HZ:g} hz, delta vs streamed {sampler_overhead:+.3f}s "
        f"({sampler_pct:+.1f}%)"
    )
    recorder_overhead = recorded_wall - streamed_wall
    recorder_pct = (
        100.0 * recorder_overhead / streamed_wall
        if streamed_wall > 0
        else float("nan")
    )
    print(
        f"recorder overhead (advisory): recorded {recorded_wall:.3f}s, "
        f"delta vs streamed {recorder_overhead:+.3f}s ({recorder_pct:+.1f}%)"
    )
    print(
        f"costs identical to {COST_RTOL:g} across "
        f"{len(bare_costs)} algorithms x 3 legs: {not failures}"
    )
    print(
        f"manifest: {len(record.events)} events, {len(checks)} runs verified; "
        f"profiled manifest: {len(profiled_events)} prof.* events; "
        f"recorded manifest: {snapshots_taken} flight snapshots"
    )
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
