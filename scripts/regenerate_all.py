"""Regenerate every experiment report and figure-data CSV in one pass.

The pytest benchmarks are the canonical way to reproduce the paper's
figures with timing; this script is the benchmark-free variant for release
engineering: it runs every experiment driver at a chosen scale and writes

* paper-style text reports to ``benchmarks/results/``;
* flat CSV figure data to ``benchmarks/results/csv/`` (for plotting).

Usage::

    python scripts/regenerate_all.py                 # default (laptop) scale
    python scripts/regenerate_all.py --users 24 --slots 24 --repetitions 3
    python scripts/regenerate_all.py --paper-scale   # 300 x 60 x 5 (hours)
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments import (
    ExperimentScale,
    fig2_report,
    fig3_report,
    fig4_report,
    fig5_report,
    run_capacity_sweep,
    run_eps_sweep,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig5,
    run_mobility_robustness,
    run_mu_sweep,
    run_threshold_sweep,
    theoretical_bounds,
)
from repro.experiments.report import format_table
from repro.experiments.runner import ratio_table
from repro.io import save_ratio_points_csv

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def main() -> None:
    """Run every driver and write reports + CSVs."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--slots", type=int, default=None)
    parser.add_argument("--repetitions", type=int, default=None)
    parser.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args()

    scale = ExperimentScale.paper() if args.paper_scale else ExperimentScale()
    overrides = {
        k: v
        for k, v in {
            "num_users": args.users,
            "num_slots": args.slots,
            "repetitions": args.repetitions,
        }.items()
        if v is not None
    }
    if overrides:
        scale = ExperimentScale(**{**scale.__dict__, **overrides})

    csv_dir = RESULTS / "csv"
    csv_dir.mkdir(parents=True, exist_ok=True)

    def emit(name: str, report: str, points=None) -> None:
        (RESULTS / f"{name}.txt").write_text(report + "\n")
        if points is not None:
            save_ratio_points_csv(points, csv_dir / f"{name}.csv")
        print(f"[{time.strftime('%H:%M:%S')}] wrote {name}")

    results1 = run_fig1()
    lines = ["FIG1"]
    for key, result in sorted(results1.items()):
        lines.append(
            f"({key}) greedy {result.greedy_cost:.1f} optimal {result.optimal_cost:.1f}"
        )
    emit("fig1_examples", "\n".join(lines))

    points = run_fig2(scale)
    emit("fig2_power", fig2_report(points), points)

    points = run_fig3(scale)
    emit("fig3_workloads", fig3_report(points), points)

    eps_points = run_eps_sweep(scale)
    mu_points = run_mu_sweep(scale)
    bounds = theoretical_bounds(scale)
    emit("fig4_epsilon", fig4_report(eps_points, [], bounds), eps_points)
    emit("fig4_mu", fig4_report([], mu_points), mu_points)

    points = run_fig5(scale)
    emit("fig5_randomwalk_uniform", fig5_report(points), points)
    points = run_fig5(scale, stay_bias=3.0)
    emit("fig5_randomwalk_dwell", fig5_report(points), points)

    sweep = run_threshold_sweep()
    rows = [[f"A={a:g}", r["online-greedy"], r["online-approx"]] for a, r in sweep.items()]
    emit(
        "adversarial_threshold",
        format_table(["amplitude", "online-greedy", "online-approx"], rows),
    )

    points = run_mobility_robustness(scale)
    emit("mobility_robustness", ratio_table(points, axis_name="mobility"), points)

    points = run_capacity_sweep(scale)
    emit("capacity", ratio_table(points, axis_name="capacity"), points)

    print("done.")


if __name__ == "__main__":
    main()
