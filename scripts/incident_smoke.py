"""CI smoke check: an alert storm must leave a bit-replayable incident bundle.

Drives the full incident path end to end, the way an operator would hit
it:

1. serve a small stream through the live service with a 1-iteration
   budget (every solve is truncated → every slot misses its deadline →
   the watchdog's deadline-miss rule and the SLO burn plane both fire);
2. assert the session's flight recorder dumped at least one incident
   bundle into the incident directory;
3. replay every bundle through ``repro-edge incident replay`` and
   require exit code 0 — the recorded costs, iteration counts, and
   partial flags must reproduce **bit-for-bit**;
4. tamper one recorded cost by 1e-9 and require the replay gate to exit
   nonzero with a per-field diff (the bit-identity claim is real);
5. tear the bundle's tail off and require the strict reader and the
   replay gate to refuse it, while ``strict=False`` still salvages the
   intact prefix;
6. run the same storm with the recorder disabled and require zero
   recorder side effects (no snapshots, no bundles, no new files).

Exit code 0 on success, 1 with a diagnostic on any mismatch.

Run:  python scripts/incident_smoke.py [--users N] [--slots T]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path


def cli(argv: list[str]) -> int:
    """Run a repro-edge command in-process; returns its exit code."""
    from repro.cli import main

    try:
        return int(main(argv) or 0)
    except SystemExit as error:
        code = error.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 1


def main(argv: list[str] | None = None) -> int:
    """Run the incident smoke; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=6)
    parser.add_argument("--slots", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    from repro import Scenario
    from repro.service import ServiceConfig, run_loadgen
    from repro.simulation.observations import (
        SystemDescription,
        observations_from_instance,
    )
    from repro.telemetry import read_bundle

    instance = Scenario(
        num_users=args.users, num_slots=args.slots
    ).build(seed=args.seed)
    system = SystemDescription.from_instance(instance)
    observations = observations_from_instance(instance)

    incident_dir = Path(tempfile.mkdtemp(prefix="incident_smoke_"))
    failures: list[str] = []

    # Leg 1-2: the storm must dump bundles.
    report = run_loadgen(
        system,
        observations,
        ServiceConfig(
            max_iterations=1,
            flight_slots=6,
            incident_dir=str(incident_dir),
            slo=True,
        ),
        speed=0,
        batch_reference=False,
    )
    if report.deadline_misses != args.slots:
        failures.append(
            f"expected every slot to miss under max_iterations=1, got "
            f"{report.deadline_misses}/{args.slots}"
        )
    if report.flight_snapshots != args.slots:
        failures.append(
            f"recorder captured {report.flight_snapshots} snapshots, "
            f"expected {args.slots}"
        )
    bundles = [Path(p) for p in report.incident_bundles]
    if not bundles:
        failures.append("the miss storm wrote no incident bundle")
    if "deadline-miss" not in report.slo_active:
        failures.append(
            f"deadline-miss SLO not firing after the storm "
            f"(active: {list(report.slo_active)})"
        )

    # Leg 3: every bundle replays bit-for-bit through the CLI gate.
    for bundle in bundles:
        code = cli(["incident", "replay", str(bundle)])
        if code != 0:
            failures.append(f"replay gate failed on {bundle} (exit {code})")

    if bundles:
        # Leg 4: a 1e-9 cost tamper must diverge.
        source = bundles[0]
        tampered = incident_dir / "tampered.jsonl"
        lines = []
        patched = False
        for line in source.read_text().splitlines():
            record = json.loads(line)
            if record.get("type") == "snapshot" and not patched:
                record["recorded"]["costs"]["total"] += 1e-9
                patched = True
            lines.append(json.dumps(record))
        tampered.write_text("\n".join(lines) + "\n")
        code = cli(["incident", "replay", str(tampered)])
        if code == 0:
            failures.append(
                "replay gate accepted a bundle with a tampered cost — the "
                "bit-identity check is not real"
            )

        # Leg 5: a torn bundle is refused strictly, salvaged leniently.
        torn = incident_dir / "torn.jsonl"
        torn.write_text("\n".join(source.read_text().splitlines()[:-2]) + "\n")
        code = cli(["incident", "replay", str(torn)])
        if code == 0:
            failures.append("replay gate accepted a truncated bundle")
        try:
            read_bundle(torn)
            failures.append("strict read accepted a truncated bundle")
        except ValueError:
            pass
        salvaged = read_bundle(torn, strict=False)
        if not salvaged.truncated or not salvaged.snapshots:
            failures.append(
                "salvage read did not recover the intact prefix of the "
                "torn bundle"
            )

    # Leg 6: recorder off → zero side effects.
    before = sorted(incident_dir.iterdir())
    off_report = run_loadgen(
        system,
        observations,
        ServiceConfig(max_iterations=1),
        speed=0,
        batch_reference=False,
    )
    if off_report.flight_snapshots or off_report.incident_bundles:
        failures.append(
            "recorder-off run reports recorder activity: "
            f"{off_report.flight_snapshots} snapshots, "
            f"{list(off_report.incident_bundles)} bundles"
        )
    if sorted(incident_dir.iterdir()) != before:
        failures.append("recorder-off run wrote files into the incident dir")

    print(
        f"incident smoke: {report.slots} slots, {report.deadline_misses} "
        f"misses, {len(bundles)} bundle(s), SLOs firing: "
        f"{', '.join(report.slo_active) or 'none'}"
    )
    print(
        f"replay gate: {len(bundles)} bundle(s) reproduced bit-for-bit; "
        "tamper and truncation both refused"
    )
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
