"""Verify that docs reference only files and symbols that actually exist.

Scans README.md and docs/*.md (or an explicit list of files) for

* **file paths** — backtick spans, fenced-block tokens, and markdown
  link targets whose first segment is a known repo root (``src``,
  ``docs``, ``tests``, ``benchmarks``, ``examples``, ``scripts``,
  ``.github``, or ``repro`` which maps to ``src/repro``) must point at an
  existing file or directory;
* **``repro.*`` symbols** — dotted names such as
  ``repro.simulation.spine.simulate`` must import (module prefix) and
  resolve (attribute chain).

Every stale reference is reported as ``file:line: problem``; the exit
code is non-zero when anything is stale, which is how CI uses it
(.github/workflows/ci.yml, next to the ruff job). Run locally with::

    python scripts/check_docs.py
    python scripts/check_docs.py docs/SOLVER.md README.md
"""

from __future__ import annotations

import argparse
import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: First path segments accepted as repo-rooted references.
KNOWN_ROOTS = {
    "src",
    "repro",
    "docs",
    "tests",
    "benchmarks",
    "examples",
    "scripts",
    ".github",
}

_BACKTICK = re.compile(r"`([^`]+)`")
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
_PATH_TOKEN = re.compile(r"[A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.-]+)+/?")
_SYMBOL = re.compile(r"repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def _strip_decorations(token: str) -> str:
    """Drop call parentheses and pytest ``::`` selectors from a token."""
    token = token.split("(", 1)[0]
    token = token.split("::", 1)[0]
    return token.strip().rstrip(".,;:")


def _path_candidates(line: str) -> list[str]:
    """Repo-rooted path tokens mentioned on one line of markdown."""
    candidates = []
    for token in _PATH_TOKEN.findall(line):
        token = _strip_decorations(token)
        if token.startswith("-") or "//" in token:
            continue
        first = token.split("/", 1)[0]
        if first in KNOWN_ROOTS:
            candidates.append(token)
    return candidates


def _resolve_path(token: str) -> Path:
    """Map a doc path token onto the repo tree (``repro/`` lives in src)."""
    if token.split("/", 1)[0] == "repro":
        token = f"src/{token}"
    return REPO_ROOT / token


def _check_symbol(symbol: str) -> str | None:
    """Import a dotted ``repro.*`` name; return an error string or None."""
    parts = symbol.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attribute in parts[split:]:
            try:
                obj = getattr(obj, attribute)
            except AttributeError:
                return f"symbol {symbol!r}: {module_name} has no {attribute!r}"
        return None
    return f"symbol {symbol!r}: module does not import"


def check_file(doc: Path) -> list[str]:
    """Check one markdown file; return ``file:line: problem`` strings."""
    problems: list[str] = []
    try:
        relative = doc.relative_to(REPO_ROOT)
    except ValueError:  # explicit file argument outside the repo
        relative = doc
    symbols_checked: dict[str, str | None] = {}
    for line_number, line in enumerate(
        doc.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for token in _path_candidates(line):
            if not _resolve_path(token).exists():
                problems.append(
                    f"{relative}:{line_number}: missing path {token!r}"
                )
        for target in _MD_LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not (doc.parent / target).resolve().exists():
                problems.append(
                    f"{relative}:{line_number}: broken link target {target!r}"
                )
        for match in _SYMBOL.finditer(line):
            if line[match.end() : match.end() + 1] == "/":
                # A versioned wire-format id (``repro.incident/1``),
                # not an importable symbol.
                continue
            symbol = _strip_decorations(match.group(0))
            if symbol not in symbols_checked:
                symbols_checked[symbol] = _check_symbol(symbol)
            error = symbols_checked[symbol]
            if error is not None:
                problems.append(f"{relative}:{line_number}: {error}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code (0 = all references ok)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    args = parser.parse_args(argv)
    files = [path.resolve() for path in args.files] or [
        REPO_ROOT / "README.md",
        *sorted((REPO_ROOT / "docs").glob("*.md")),
    ]

    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems: list[str] = []
    for doc in files:
        if not doc.exists():
            problems.append(f"{doc}: file not found")
            continue
        problems.extend(check_file(doc))
    for problem in problems:
        print(problem)
    print(
        f"check_docs: {len(files)} file(s), "
        f"{len(problems)} stale reference(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
