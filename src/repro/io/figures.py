"""CSV export of experiment sweep results (figure data).

Each :class:`RatioPoint` row becomes ``label, algorithm, mean, std`` — the
flat layout plotting tools want. Round-trips through
:func:`load_ratio_points_csv` for downstream analysis without re-running
the experiments.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..experiments.runner import RatioPoint


def save_ratio_points_csv(points: list[RatioPoint], path: str | Path) -> None:
    """Write sweep results as flat CSV rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", "algorithm", "mean_ratio", "std_ratio"])
        for point in points:
            for algorithm, (mean, std) in sorted(point.stats.items()):
                writer.writerow([point.label, algorithm, f"{mean!r}", f"{std!r}"])


def load_ratio_points_csv(path: str | Path) -> dict[str, dict[str, tuple[float, float]]]:
    """Read a figure-data CSV back as {label: {algorithm: (mean, std)}}.

    The raw comparisons are not persisted, so this returns plain statistics
    rather than :class:`RatioPoint` objects.
    """
    data: dict[str, dict[str, tuple[float, float]]] = {}
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            label = row["label"]
            data.setdefault(label, {})[row["algorithm"]] = (
                float(row["mean_ratio"]),
                float(row["std_ratio"]),
            )
    if not data:
        raise ValueError(f"figure-data file {path} is empty")
    return data
