"""Result serialization: persist run results and comparisons as JSON.

Schedules are large (T x I x J); by default only the cost accounting is
persisted, with an opt-in for the full allocation trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..simulation.results import Comparison, RunResult


def run_result_to_dict(result: RunResult, *, include_schedule: bool = False) -> dict:
    """JSON-serializable summary of a run."""
    data = {
        "algorithm": result.algorithm,
        "costs": result.breakdown.totals(),
        "per_slot_total": result.breakdown.total_per_slot.tolist(),
        "wall_time_s": result.wall_time_s,
        "feasibility": {
            "demand": result.feasibility.demand_violation,
            "capacity": result.feasibility.capacity_violation,
            "negativity": result.feasibility.negativity_violation,
        },
    }
    if include_schedule:
        data["schedule"] = result.schedule.x.tolist()
    return data


def comparison_to_dict(comparison: Comparison, *, include_schedules: bool = False) -> dict:
    """JSON-serializable summary of a comparison (ratios + per-run costs)."""
    return {
        "baseline": comparison.baseline,
        "baseline_cost": comparison.baseline_cost,
        "ratios": comparison.ratios(),
        "runs": {
            name: run_result_to_dict(run, include_schedule=include_schedules)
            for name, run in comparison.results.items()
        },
    }


def save_comparison_json(
    comparison: Comparison, path: str | Path, *, include_schedules: bool = False
) -> None:
    """Write a comparison summary to disk."""
    Path(path).write_text(
        json.dumps(comparison_to_dict(comparison, include_schedules=include_schedules))
    )


def load_comparison_summary(path: str | Path) -> dict:
    """Read a comparison summary (plain dict; schedules stay as lists)."""
    return json.loads(Path(path).read_text())


def save_schedule_npz(path: str | Path, schedule_x: np.ndarray) -> None:
    """Persist a raw allocation trajectory compactly (.npz)."""
    np.savez_compressed(path, x=np.asarray(schedule_x, dtype=float))


def load_schedule_npz(path: str | Path) -> np.ndarray:
    """Load a trajectory written by :func:`save_schedule_npz`."""
    with np.load(path) as data:
        return np.asarray(data["x"], dtype=float)
