"""Serialization of mobility traces, experiment results, and figure data."""

from .figures import load_ratio_points_csv, save_ratio_points_csv
from .results import (
    comparison_to_dict,
    load_comparison_summary,
    load_schedule_npz,
    run_result_to_dict,
    save_comparison_json,
    save_schedule_npz,
)
from .traces import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "comparison_to_dict",
    "load_ratio_points_csv",
    "save_ratio_points_csv",
    "load_comparison_summary",
    "load_schedule_npz",
    "load_trace_csv",
    "load_trace_json",
    "run_result_to_dict",
    "save_comparison_json",
    "save_schedule_npz",
    "save_trace_csv",
    "save_trace_json",
    "trace_from_dict",
    "trace_to_dict",
]
