"""Mobility-trace serialization.

Traces round-trip through two formats:

* **JSON** — one self-describing document (attachment, access delay,
  optional positions), good for archiving experiment inputs;
* **CSV** — one row per (slot, user) with columns
  ``slot,user,cloud,access_delay[,lat,lon]``, good for interop with trace
  tooling (the CRAWDAD-style flat layout).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from ..mobility.base import MobilityTrace


def trace_to_dict(trace: MobilityTrace) -> dict:
    """A JSON-serializable representation of a trace."""
    data = {
        "num_clouds": trace.num_clouds,
        "attachment": trace.attachment.tolist(),
        "access_delay": trace.access_delay.tolist(),
    }
    if trace.positions is not None:
        data["positions"] = trace.positions.tolist()
    return data


def trace_from_dict(data: dict) -> MobilityTrace:
    """Inverse of :func:`trace_to_dict`."""
    positions = data.get("positions")
    return MobilityTrace(
        attachment=np.asarray(data["attachment"], dtype=np.int64),
        access_delay=np.asarray(data["access_delay"], dtype=float),
        num_clouds=int(data["num_clouds"]),
        positions=None if positions is None else np.asarray(positions, dtype=float),
    )


def save_trace_json(trace: MobilityTrace, path: str | Path) -> None:
    """Write a trace as a JSON document."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace_json(path: str | Path) -> MobilityTrace:
    """Read a trace previously written by :func:`save_trace_json`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def save_trace_csv(trace: MobilityTrace, path: str | Path) -> None:
    """Write a trace as flat CSV rows (slot, user, cloud, delay[, lat, lon])."""
    has_positions = trace.positions is not None
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["slot", "user", "cloud", "access_delay"]
        if has_positions:
            header += ["lat", "lon"]
        writer.writerow(header)
        for t in range(trace.num_slots):
            for j in range(trace.num_users):
                row = [
                    t,
                    j,
                    int(trace.attachment[t, j]),
                    float(trace.access_delay[t, j]),
                ]
                if has_positions:
                    row += [
                        float(trace.positions[t, j, 0]),
                        float(trace.positions[t, j, 1]),
                    ]
                writer.writerow(row)


def load_trace_csv(path: str | Path, *, num_clouds: int) -> MobilityTrace:
    """Read a CSV trace written by :func:`save_trace_csv`.

    ``num_clouds`` must be supplied because the CSV only records the clouds
    that were actually visited.
    """
    rows: list[dict[str, str]] = []
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    if not rows:
        raise ValueError(f"trace file {path} is empty")
    num_slots = max(int(r["slot"]) for r in rows) + 1
    num_users = max(int(r["user"]) for r in rows) + 1
    attachment = np.zeros((num_slots, num_users), dtype=np.int64)
    access = np.zeros((num_slots, num_users))
    has_positions = "lat" in rows[0]
    positions = np.zeros((num_slots, num_users, 2)) if has_positions else None
    seen = np.zeros((num_slots, num_users), dtype=bool)
    for r in rows:
        t, j = int(r["slot"]), int(r["user"])
        attachment[t, j] = int(r["cloud"])
        access[t, j] = float(r["access_delay"])
        if positions is not None:
            positions[t, j] = (float(r["lat"]), float(r["lon"]))
        seen[t, j] = True
    if not seen.all():
        raise ValueError(f"trace file {path} has missing (slot, user) entries")
    return MobilityTrace(
        attachment=attachment,
        access_delay=access,
        num_clouds=num_clouds,
        positions=positions,
    )
