"""Price and capacity generators reproducing the paper's evaluation setup."""

from .bandwidth import (
    ISP_RATES,
    MigrationPrices,
    isp_cluster_assignment,
    isp_migration_prices,
)
from .capacity import DEFAULT_OVERPROVISION, attachment_frequency, provision_capacities
from .operation import base_operation_prices, gaussian_operation_prices
from .reconfiguration import gaussian_reconfiguration_prices

__all__ = [
    "DEFAULT_OVERPROVISION",
    "ISP_RATES",
    "MigrationPrices",
    "attachment_frequency",
    "base_operation_prices",
    "gaussian_operation_prices",
    "gaussian_reconfiguration_prices",
    "isp_cluster_assignment",
    "isp_migration_prices",
    "provision_capacities",
]
