"""Migration (bandwidth) prices b_i^out, b_i^in (paper Section V-A).

    "We categorize all the edge clouds in three clusters, each of which is
    subscribed to one of the three Internet providers: Tiscali Italia,
    Vodafone Italia, and Infostrada-Wind. The per-month flat rate prices
    averaged for 1Mbps connection are 2.49 euro, 4.86 euro, and 1.25 euro,
    respectively. We will use this relative ratios between them to set the
    bandwidth prices for the three categories of edge clouds."

Only the *relative ratios* matter; ``reference_price`` rescales the mean.
Migration is "usually counted at both ends" (Section II-C-4): we split each
cloud's bandwidth price into outbound and inbound halves by default, with a
knob for asymmetric splits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: (provider name, flat monthly rate in EUR per Mbps) from the paper.
ISP_RATES: tuple[tuple[str, float], ...] = (
    ("Tiscali Italia", 2.49),
    ("Vodafone Italia", 4.86),
    ("Infostrada-Wind", 1.25),
)


@dataclass(frozen=True)
class MigrationPrices:
    """Per-cloud unit migration prices for outbound and inbound data.

    ``combined`` is the paper's b_i = b_i^out + b_i^in used after the
    gap-preserving transformation (Section III-A).
    """

    out: np.ndarray
    into: np.ndarray

    def __post_init__(self) -> None:
        if self.out.shape != self.into.shape:
            raise ValueError("out/in price arrays must have the same shape")
        if np.any(self.out < 0) or np.any(self.into < 0):
            raise ValueError("migration prices must be nonnegative")

    @property
    def combined(self) -> np.ndarray:
        """b_i = b_i^out + b_i^in."""
        return self.out + self.into


def isp_cluster_assignment(num_clouds: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Assign each cloud to one of the three ISP clusters.

    With an rng, clusters are shuffled uniformly; otherwise assignment is
    round-robin by index (deterministic).
    """
    if num_clouds < 0:
        raise ValueError("num_clouds must be nonnegative")
    clusters = np.arange(num_clouds) % len(ISP_RATES)
    if rng is not None:
        rng.shuffle(clusters)
    return clusters


def isp_migration_prices(
    num_clouds: int,
    *,
    rng: np.random.Generator | None = None,
    reference_price: float = 1.0,
    outbound_fraction: float = 0.5,
) -> MigrationPrices:
    """Migration prices based on the three-ISP clustering.

    Args:
        num_clouds: number of edge clouds I.
        rng: optional generator for random cluster assignment.
        reference_price: mean of the per-cloud combined price b_i.
        outbound_fraction: fraction of b_i charged on the outbound end
            (0.5 = symmetric).

    Returns:
        :class:`MigrationPrices` with arrays of shape (I,).
    """
    if not 0.0 <= outbound_fraction <= 1.0:
        raise ValueError("outbound_fraction must be within [0, 1]")
    if reference_price < 0:
        raise ValueError("reference_price must be nonnegative")
    rates = np.array([rate for _, rate in ISP_RATES], dtype=float)
    clusters = isp_cluster_assignment(num_clouds, rng)
    combined = rates[clusters]
    if combined.size:
        combined = combined * (reference_price / combined.mean())
    return MigrationPrices(out=combined * outbound_fraction, into=combined * (1.0 - outbound_fraction))
