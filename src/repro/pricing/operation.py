"""Operation ("resource usage") prices a_{i,t} (paper Section V-A).

The paper's generation process:

    "For each edge cloud, we first determine its base operation price
    reversely proportional to its capacity. This is reasonable due to the
    economy-of-scale effect on both energy and maintenance. The real-time
    operation price for each edge cloud follows Gaussian distributions,
    where we set the mean value as the base price we just generated and the
    standard deviation as half of the base price."

Prices are clipped at a small positive floor: the model (and the KKT-based
competitive analysis) assumes a_{i,t} > 0.
"""

from __future__ import annotations

import numpy as np

#: Lower clip applied to sampled prices, as a fraction of the base price.
PRICE_FLOOR_FRACTION = 0.05


def base_operation_prices(
    capacities: np.ndarray,
    *,
    reference_price: float = 1.0,
) -> np.ndarray:
    """Base prices inversely proportional to capacity (economy of scale).

    Normalized so that the *capacity-weighted mean* base price equals
    ``reference_price``; this keeps total operation cost comparable across
    scenarios with different numbers of clouds.
    """
    capacities = np.asarray(capacities, dtype=float)
    if capacities.ndim != 1 or capacities.size == 0:
        raise ValueError("capacities must be a nonempty 1-D array")
    if np.any(capacities <= 0):
        raise ValueError("capacities must be positive")
    raw = 1.0 / capacities
    weighted_mean = float(np.sum(raw * capacities) / np.sum(capacities))
    return raw * (reference_price / weighted_mean)


def gaussian_operation_prices(
    capacities: np.ndarray,
    num_slots: int,
    rng: np.random.Generator,
    *,
    reference_price: float = 1.0,
    std_fraction: float = 0.5,
) -> np.ndarray:
    """Time-varying prices a_{i,t}: Gaussian around the base price.

    Args:
        capacities: (I,) edge-cloud capacities.
        num_slots: number of time slots T.
        rng: numpy random generator.
        reference_price: capacity-weighted mean of the base prices.
        std_fraction: standard deviation as a fraction of the base price;
            the paper uses 0.5 ("half of the base price").

    Returns:
        Array of shape (T, I), strictly positive.
    """
    if num_slots < 0:
        raise ValueError("num_slots must be nonnegative")
    if std_fraction < 0:
        raise ValueError("std_fraction must be nonnegative")
    base = base_operation_prices(capacities, reference_price=reference_price)
    prices = rng.normal(
        loc=base[None, :],
        scale=std_fraction * base[None, :],
        size=(num_slots, base.size),
    )
    floor = PRICE_FLOOR_FRACTION * base[None, :]
    return np.maximum(prices, floor)
