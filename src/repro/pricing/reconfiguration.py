"""Reconfiguration prices c_i (paper Section V-A).

    "The reconfiguration price is assumed to be static over time and it
    varies among different edge clouds. We generate the reconfiguration
    prices following a Gauss distribution with the negative tail cutted."

We implement the truncation by resampling the negative tail (rather than
clipping at zero) so the resulting prices remain strictly positive — a zero
reconfiguration price would remove the dynamic cost the paper studies.
"""

from __future__ import annotations

import numpy as np

#: Strictly-positive floor, as a fraction of the mean, for degenerate draws.
_MIN_PRICE_FRACTION = 0.01


def gaussian_reconfiguration_prices(
    num_clouds: int,
    rng: np.random.Generator,
    *,
    mean: float = 1.0,
    std: float = 0.5,
    max_resamples: int = 100,
) -> np.ndarray:
    """Static per-cloud reconfiguration prices, truncated Gaussian.

    Draws N(mean, std) per cloud and resamples any non-positive values
    ("negative tail cut"). After ``max_resamples`` rounds any remaining
    non-positive entries are set to a small positive floor.

    Returns:
        Array of shape (I,), strictly positive.
    """
    if num_clouds < 0:
        raise ValueError("num_clouds must be nonnegative")
    if mean <= 0:
        raise ValueError("mean must be positive")
    if std < 0:
        raise ValueError("std must be nonnegative")
    prices = rng.normal(mean, std, size=num_clouds)
    for _ in range(max_resamples):
        bad = prices <= 0
        if not np.any(bad):
            break
        prices[bad] = rng.normal(mean, std, size=int(bad.sum()))
    return np.maximum(prices, _MIN_PRICE_FRACTION * mean)
