"""Capacity provisioning (paper Section V-A, "Capacity").

    "The total capacity of the edge clouds is assumed to be slightly larger
    than the total workload in the system by design. More specifically, we
    assume that the utilization of the system keeps at the level of 80%.
    Consequently, the total capacity is set to be 1.25 times the total
    workload. The capacity will be distributed to all the edge clouds
    proportionally to the frequency of users being attached to them, i.e.,
    the total number of direct user connection in all the relevant time
    slots."
"""

from __future__ import annotations

import numpy as np

#: Paper default: 80% target utilization -> capacity = 1.25 x total workload.
DEFAULT_OVERPROVISION = 1.25


def attachment_frequency(attachment: np.ndarray, num_clouds: int) -> np.ndarray:
    """Count of direct user connections per cloud over all slots.

    Args:
        attachment: (T, J) integer matrix, attachment[t, j] = attached cloud.
        num_clouds: number of clouds I.

    Returns:
        (I,) counts. Every entry of ``attachment`` must lie in [0, I).
    """
    attachment = np.asarray(attachment)
    if attachment.ndim != 2:
        raise ValueError("attachment must be a (T, J) matrix")
    if attachment.size and (attachment.min() < 0 or attachment.max() >= num_clouds):
        raise ValueError("attachment entries must be valid cloud indices")
    return np.bincount(attachment.ravel(), minlength=num_clouds).astype(float)


def provision_capacities(
    workloads: np.ndarray,
    attachment: np.ndarray,
    num_clouds: int,
    *,
    overprovision: float = DEFAULT_OVERPROVISION,
    smoothing: float = 1.0,
) -> np.ndarray:
    """Distribute total capacity proportionally to attachment frequency.

    ``smoothing`` is a Laplace-style additive count per cloud ensuring that
    clouds never visited still get a sliver of capacity (a zero-capacity
    cloud would make several denominators in the model degenerate).

    Returns:
        (I,) strictly positive capacities with
        sum(capacities) = overprovision * sum(workloads).
    """
    workloads = np.asarray(workloads, dtype=float)
    if overprovision <= 0:
        raise ValueError("overprovision must be positive")
    if smoothing < 0:
        raise ValueError("smoothing must be nonnegative")
    total_capacity = overprovision * float(workloads.sum())
    if total_capacity <= 0:
        raise ValueError("total workload must be positive")
    freq = attachment_frequency(attachment, num_clouds) + smoothing
    if np.all(freq == 0):
        freq = np.ones(num_clouds)
    return total_capacity * freq / freq.sum()
