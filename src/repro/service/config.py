"""Configuration of the live allocation service (dependency leaf).

:class:`ServiceConfig` bundles everything a serving session needs beyond
the :class:`~repro.simulation.observations.SystemDescription` itself: the
regularizer parameters, the solver backend, the optional cohort
aggregation, and — the serving-specific part — the per-slot deadline
budget. See docs/SERVING.md for how the budget turns into the
degradation ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aggregate.config import AggregationConfig
from ..solvers.base import SolveBudget

#: Default regularizer value (mirrors ``repro.core.regularization``).
_DEFAULT_EPSILON = 1.0


@dataclass(frozen=True)
class ServiceConfig:
    """How a serving session solves its slots.

    Attributes:
        deadline_s: per-slot solve deadline in seconds. When the solver
            is still iterating at the deadline it returns its last
            (strictly feasible) barrier iterate and the slot is counted
            as a deadline miss. ``None`` disables the wall-clock budget.
        max_iterations: per-slot Newton-iteration cap — the deterministic
            twin of ``deadline_s``, used by tests and the bench suite to
            engage the degradation ladder reproducibly. ``None`` disables
            the cap.
        eps1: regularizer parameter for the reconfiguration term.
        eps2: regularizer parameter for the migration term.
        tol: optimizer tolerance per subproblem.
        backend: solver-registry backend name (``"auto"`` = the default
            fallback chain).
        aggregation: when set, slots are solved over (station, workload)
            cohorts via :mod:`repro.aggregate` — the city-scale path.
        keep_schedule: keep every slot's (I, J) allocation in memory.
            Off by default: a long-running service must stay O(I*J).
        history: how many recent solver results / aggregation reports the
            session retains for diagnostics (older entries are dropped so
            an unbounded stream cannot grow memory).
        flight_slots: capacity K of the session's incident flight
            recorder (:mod:`repro.telemetry.flight`) — the last K slots
            stay replayable; 0 (the default) disables the recorder
            entirely, leaving the serving path byte-identical to pre-
            recorder behavior.
        incident_dir: directory incident bundles are dumped into when a
            watchdog alert fires mid-serve. ``None`` keeps the ring in
            memory only (explicit ``dump(path)`` still works).
        slo: evaluate the default SLO objectives
            (:func:`repro.telemetry.slo.default_slos`) over the session's
            slot stream with burn-rate alerting.
    """

    deadline_s: float | None = None
    max_iterations: int | None = None
    eps1: float = _DEFAULT_EPSILON
    eps2: float = _DEFAULT_EPSILON
    tol: float = 1e-8
    backend: str = "auto"
    aggregation: AggregationConfig | None = None
    keep_schedule: bool = False
    history: int = 16
    flight_slots: int = 0
    incident_dir: str | None = None
    slo: bool = False

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline_s must be nonnegative or None")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1 or None")
        if self.history < 1:
            raise ValueError("history must be at least 1")
        if self.flight_slots < 0:
            raise ValueError("flight_slots must be >= 0 (0 disables)")

    def budget(self) -> SolveBudget | None:
        """The :class:`SolveBudget` this config implies (``None`` = off)."""
        if self.deadline_s is None and self.max_iterations is None:
            return None
        return SolveBudget(
            deadline_s=self.deadline_s, max_iterations=self.max_iterations
        )
