"""The service's JSON-lines wire protocol.

One JSON object per line, both directions. Client messages:

* ``{"type": "hello"}`` — handshake; the server replies ``welcome`` with
  the system shape and the slot it expects next.
* ``{"type": "update", "slot": t, "op_prices": [...], "attachment":
  [...], "access_delay": [...]}`` — the slot-t observation; the server
  solves it and replies ``slot_result``. An optional ``"trace"`` field
  (a :meth:`repro.telemetry.TraceContext.to_wire` dict) propagates the
  client's distributed-trace context: the server solves the slot under
  it and echoes its ``trace_id`` on the ``slot_result``, making the
  update → solve → reply round-trip one connected trace. A malformed
  trace field is ignored (observability must never reject a request).
* ``{"type": "reset"}`` — start a fresh horizon (slot 0, zero carried
  decision, cold solver caches); reply ``reset_ok``.
* ``{"type": "stats"}`` — reply ``stats`` with slot counts, cost totals,
  deadline misses, and latency percentiles.

Malformed input — torn JSON, a non-object line, a wrong-shaped array, a
*late* update (slot already solved) or a *future* one (slots skipped) —
raises :class:`ProtocolError`, which the session turns into an ``error``
reply **without** tearing down the session: the stream continues at the
same expected slot. See docs/SERVING.md.
"""

from __future__ import annotations

import json

import numpy as np

from ..simulation.observations import SlotObservation
from ..telemetry import TraceContext


class ProtocolError(ValueError):
    """A client message the service refuses (the session survives it)."""


#: Client message types the session dispatches on.
CLIENT_TYPES = ("hello", "update", "reset", "stats")


def parse_message(line: str | bytes) -> dict:
    """Decode one wire line into a message dict.

    Raises:
        ProtocolError: on torn/invalid JSON or a non-object payload.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable line: {exc}") from exc
    text = line.strip()
    if not text:
        raise ProtocolError("empty line")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"torn or invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("type")
    if kind not in CLIENT_TYPES:
        raise ProtocolError(
            f"unknown message type {kind!r} (expected one of {CLIENT_TYPES})"
        )
    return payload


def _vector(payload: dict, key: str, length: int, kind: str) -> np.ndarray:
    """Extract one 1-D numeric array field, validating length and dtype."""
    raw = payload.get(key)
    if raw is None:
        raise ProtocolError(f"update is missing {key!r}")
    try:
        array = np.asarray(raw, dtype=float if kind == "float" else np.int64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{key} is not numeric: {exc}") from exc
    if array.ndim != 1 or array.shape[0] != length:
        raise ProtocolError(
            f"{key} must be a length-{length} vector, got shape {array.shape}"
        )
    if kind == "float" and not np.all(np.isfinite(array)):
        raise ProtocolError(f"{key} contains non-finite values")
    return array


def parse_update(
    payload: dict,
    *,
    expected_slot: int,
    num_clouds: int,
    num_users: int,
) -> SlotObservation:
    """Validate an ``update`` message into a :class:`SlotObservation`.

    The service is strictly in-order: the carried decision x*_{t-1} only
    makes sense against slot t, so a **late** update (``slot`` below the
    expected one — already solved) and a **future** one (``slot`` above —
    slots would be silently skipped) are both protocol errors. The
    session stays alive and keeps expecting the same slot.

    Raises:
        ProtocolError: on a slot mismatch or a wrong-shaped array.
    """
    slot_raw = payload.get("slot")
    if not isinstance(slot_raw, int) or isinstance(slot_raw, bool):
        raise ProtocolError(f"update slot must be an integer, got {slot_raw!r}")
    if slot_raw < expected_slot:
        raise ProtocolError(
            f"late update for slot {slot_raw}: slot already solved "
            f"(expecting slot {expected_slot})"
        )
    if slot_raw > expected_slot:
        raise ProtocolError(
            f"future update for slot {slot_raw}: would skip slots "
            f"(expecting slot {expected_slot})"
        )
    op_prices = _vector(payload, "op_prices", num_clouds, "float")
    attachment = _vector(payload, "attachment", num_users, "int")
    if attachment.size and (attachment.min() < 0 or attachment.max() >= num_clouds):
        raise ProtocolError(
            f"attachment entries must lie in [0, {num_clouds}), got "
            f"[{attachment.min()}, {attachment.max()}]"
        )
    access_delay = _vector(payload, "access_delay", num_users, "float")
    return SlotObservation(
        slot=slot_raw,
        op_prices=op_prices,
        attachment=attachment,
        access_delay=access_delay,
    )


def observation_to_update(
    observation: SlotObservation, *, trace: TraceContext | None = None
) -> dict:
    """The ``update`` message form of an observation (loadgen's encoder).

    When ``trace`` is given, the message carries the client's trace
    context so the server-side solve joins the client's trace.
    """
    message = {
        "type": "update",
        "slot": int(observation.slot),
        "op_prices": np.asarray(observation.op_prices, dtype=float).tolist(),
        "attachment": np.asarray(observation.attachment).astype(int).tolist(),
        "access_delay": np.asarray(observation.access_delay, dtype=float).tolist(),
    }
    if trace is not None:
        message["trace"] = trace.to_wire()
    return message


def encode(message: dict) -> bytes:
    """Serialize one reply as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
