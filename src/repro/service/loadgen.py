"""Trace replay against the live service, with a batch cross-check.

:func:`run_loadgen` replays an observation stream at ``speed`` times
real time against an :class:`~repro.service.server.AllocationServer` —
an in-process one spawned on a free port by default, or an external
``host:port`` — and reports what serving *did* to the numbers:

* slot latency percentiles (p50/p95/p99, server-reported, exact
  nearest-rank);
* deadline misses and budget-truncated (partial) slots;
* the **realized-vs-batch cost delta**: the streamed total cost against
  an unbudgeted batch :func:`~repro.simulation.spine.simulate` of the
  same stream. At 1x speed with a generous deadline the two are equal to
  solver precision (the CI ``service-smoke`` gate); at high replay
  speeds the delta is the measured price of the degradation ladder.

The replay paces sends to ``slot_s / speed`` seconds per slot
(``speed=0`` = as fast as possible) and always drives slots in order —
the protocol rejects anything else. See docs/SERVING.md.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.regularization import OnlineRegularizedAllocator
from ..simulation.observations import SlotObservation, SystemDescription
from ..simulation.spine import simulate
from ..telemetry import TraceContext, current_trace
from .config import ServiceConfig
from .protocol import ProtocolError, encode, observation_to_update
from .server import AllocationServer
from .session import AllocationSession, percentile


@dataclass(frozen=True)
class LoadgenReport:
    """What one replay measured.

    Attributes:
        slots: slots served.
        speed: the replay speed factor that was requested.
        wall_s: wall-clock seconds the replay took end to end.
        deadline_misses: slots the server classified as deadline misses.
        partial_slots: slots whose solve was budget-truncated.
        latency_p50_ms: median server-side slot latency.
        latency_p95_ms: 95th-percentile slot latency.
        latency_p99_ms: 99th-percentile slot latency.
        streamed_cost: total P0 objective realized by the service.
        batch_cost: total cost of the unbudgeted batch run of the same
            stream (``nan`` when the cross-check was skipped).
        cost_delta: ``streamed_cost - batch_cost`` (0 at 1x speed).
        flight_snapshots: solve-state snapshots the server's flight
            recorder captured (0 when the recorder is disabled).
        incident_bundles: paths of incident bundles the server wrote.
        slo_active: names of SLO objectives firing at the end of the
            replay (empty when the SLO plane is disabled or healthy).
    """

    slots: int
    speed: float
    wall_s: float
    deadline_misses: int
    partial_slots: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    streamed_cost: float
    batch_cost: float
    cost_delta: float
    flight_snapshots: int = 0
    incident_bundles: tuple = ()
    slo_active: tuple = ()

    def as_dict(self) -> dict:
        """Plain-dict (JSON-ready) form."""
        return {
            "slots": self.slots,
            "speed": self.speed,
            "wall_s": self.wall_s,
            "deadline_misses": self.deadline_misses,
            "partial_slots": self.partial_slots,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "streamed_cost": self.streamed_cost,
            "batch_cost": self.batch_cost,
            "cost_delta": self.cost_delta,
            "flight_snapshots": self.flight_snapshots,
            "incident_bundles": list(self.incident_bundles),
            "slo_active": list(self.slo_active),
        }

    def render(self) -> str:
        """Human-readable replay summary."""
        lines = [
            f"Loadgen replay: {self.slots} slots at {self.speed:g}x "
            f"in {self.wall_s:.2f}s",
            f"  slot latency ms     p50 {self.latency_p50_ms:9.2f}   "
            f"p95 {self.latency_p95_ms:9.2f}   p99 {self.latency_p99_ms:9.2f}",
            f"  deadline misses     {self.deadline_misses}"
            f" ({self.partial_slots} budget-truncated solves)",
            f"  streamed cost       {self.streamed_cost:.6f}",
        ]
        if np.isfinite(self.batch_cost):
            lines.append(
                f"  batch cost          {self.batch_cost:.6f}   "
                f"(delta {self.cost_delta:+.3e})"
            )
        if self.flight_snapshots or self.incident_bundles:
            lines.append(
                f"  flight recorder     {self.flight_snapshots} snapshots, "
                f"{len(self.incident_bundles)} bundle(s) written"
            )
            for path in self.incident_bundles:
                lines.append(f"    bundle {path}")
        if self.slo_active:
            lines.append(
                "  SLOs firing         " + ", ".join(self.slo_active)
            )
        return "\n".join(lines)


async def _replay(
    observations: Sequence[SlotObservation],
    *,
    host: str,
    port: int,
    period_s: float,
    trace_root: TraceContext | None = None,
) -> tuple[list[dict], dict | None]:
    """Send the stream over one connection; return (slot replies, stats).

    After the last slot a ``stats`` request is sent on the same
    connection, so the server-side session counters (deadline misses,
    flight-recorder snapshots, incident bundles, firing SLOs) come back
    over the wire — external servers report them exactly like the
    in-process one.

    When ``trace_root`` is set (the replay runs under an active trace,
    e.g. ``repro-edge serve --loadgen --trace-context``), every update
    carries a child context of it — each server-side solve joins the
    replay's trace and each ``slot_result`` echoes its ``trace_id``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    replies: list[dict] = []
    stats: dict | None = None
    try:
        writer.write(encode({"type": "hello"}))
        await writer.drain()
        welcome = json.loads(await reader.readline())
        if welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome}")
        start = time.perf_counter()
        for index, observation in enumerate(observations):
            if period_s > 0:
                target = start + index * period_s
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            ctx = None if trace_root is None else trace_root.child()
            writer.write(encode(observation_to_update(observation, trace=ctx)))
            await writer.drain()
            reply = json.loads(await reader.readline())
            if reply.get("type") != "slot_result":
                raise ProtocolError(
                    f"slot {observation.slot} rejected: {reply}"
                )
            replies.append(reply)
        writer.write(encode({"type": "stats"}))
        await writer.drain()
        reply = json.loads(await reader.readline())
        if reply.get("type") == "stats":
            stats = reply
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return replies, stats


def batch_reference_cost(
    system: SystemDescription,
    observations: Iterable[SlotObservation],
    config: ServiceConfig,
) -> float:
    """The unbudgeted batch cost of the same stream (the comparison target).

    Identical allocator settings minus the budget: what the service
    *would* have paid with unlimited solve time per slot.
    """
    allocator = OnlineRegularizedAllocator(
        eps1=config.eps1,
        eps2=config.eps2,
        tol=config.tol,
        aggregation=config.aggregation,
    )
    result = simulate(
        allocator.as_controller(system),
        observations,
        system,
        keep_schedule=False,
    )
    return result.total_cost


def run_loadgen(
    system: SystemDescription,
    observations: Sequence[SlotObservation],
    config: ServiceConfig,
    *,
    speed: float = 1.0,
    slot_s: float = 1.0,
    host: str | None = None,
    port: int | None = None,
    batch_reference: bool = True,
) -> LoadgenReport:
    """Replay a stream against the service and measure the outcome.

    Args:
        system: the system description the server serves.
        observations: the slot stream to replay (in slot order, from 0).
        config: the serving configuration (spawned server and batch
            reference both derive from it).
        speed: replay speed factor; ``0`` replays as fast as possible.
        slot_s: real-time slot duration in seconds (1x pace).
        host: an external server to target; ``None`` spawns an
            in-process server on a free port (always torn down after).
        port: the external server's port (required with ``host``).
        batch_reference: also run the unbudgeted batch solve of the same
            stream for the realized-vs-batch cost delta (skip for very
            long streams).
    """
    observations = list(observations)
    if not observations:
        raise ValueError("loadgen needs at least one observation")
    if (host is None) != (port is None):
        raise ValueError("pass host and port together (or neither)")
    period_s = 0.0 if speed <= 0 else slot_s / speed
    trace_root = current_trace()

    async def _run() -> tuple[list[dict], dict | None]:
        server = None
        target_host, target_port = host, port
        if target_host is None:
            server = AllocationServer(
                AllocationSession(system, config), port=0
            )
            await server.start()
            target_host, target_port = server.host, server.port
        try:
            replies, stats = await _replay(
                observations,
                host=target_host,
                port=int(target_port),
                period_s=period_s,
                trace_root=trace_root,
            )
            if stats is None and server is not None:
                stats = server.session.stats()
            return replies, stats
        finally:
            if server is not None:
                await server.stop()

    start = time.perf_counter()
    replies, stats = asyncio.run(_run())
    wall_s = time.perf_counter() - start
    stats = stats or {}
    latencies = [float(r["latency_ms"]) for r in replies]
    streamed_cost = float(replies[-1]["total_cost"])
    batch_cost = float("nan")
    if batch_reference:
        batch_cost = batch_reference_cost(system, observations, config)
    return LoadgenReport(
        slots=len(replies),
        speed=speed,
        wall_s=wall_s,
        deadline_misses=sum(1 for r in replies if r["deadline_miss"]),
        partial_slots=sum(1 for r in replies if r["partial"]),
        latency_p50_ms=percentile(latencies, 0.50),
        latency_p95_ms=percentile(latencies, 0.95),
        latency_p99_ms=percentile(latencies, 0.99),
        streamed_cost=streamed_cost,
        batch_cost=batch_cost,
        cost_delta=streamed_cost - batch_cost,
        flight_snapshots=int(stats.get("flight_snapshots", 0)),
        incident_bundles=tuple(stats.get("incident_bundles", ()) or ()),
        slo_active=tuple(stats.get("slo_active", ()) or ()),
    )


def observations_from_trace(trace, op_prices) -> list[SlotObservation]:
    """Pair a mobility trace with per-slot prices into an observation stream.

    Args:
        trace: a :class:`repro.mobility.base.MobilityTrace` (e.g. loaded
            via :mod:`repro.io.traces`).
        op_prices: (T, I) operation prices, one row per trace slot.
    """
    prices = np.asarray(op_prices, dtype=float)
    if prices.ndim != 2 or prices.shape[0] != trace.num_slots:
        raise ValueError(
            f"op_prices must be (T={trace.num_slots}, I), got {prices.shape}"
        )
    return [
        SlotObservation(
            slot=t,
            op_prices=prices[t],
            attachment=trace.attachment[t],
            access_delay=trace.access_delay[t],
        )
        for t in range(trace.num_slots)
    ]
