"""The live allocation service: streamed slots, deadline-budgeted solves.

The batch spine answers "what would the algorithm have paid over this
trace"; this package answers "can it keep up *while the trace happens*".
One :class:`AllocationSession` wraps the identical per-slot body
(:class:`repro.simulation.spine.SlotStepper`) behind a JSON-lines
protocol; :class:`AllocationServer` exposes it over asyncio TCP (or
stdio), with optional wall-clock slot ticks and a live OpenMetrics
``/metrics`` endpoint; :func:`run_loadgen` replays traces at a chosen
speed and reports latency percentiles plus the realized-vs-batch cost
delta. Solves run under a :class:`repro.solvers.SolveBudget` — when the
deadline fires, the last strictly feasible barrier iterate is repaired
and served, degradation recorded as ``service.deadline.*`` telemetry.

Entry points: ``repro-edge serve`` / ``repro-edge loadgen``; the full
architecture and the degradation ladder are in docs/SERVING.md.
"""

from .config import ServiceConfig
from .loadgen import (
    LoadgenReport,
    batch_reference_cost,
    observations_from_trace,
    run_loadgen,
)
from .protocol import (
    ProtocolError,
    encode,
    observation_to_update,
    parse_message,
    parse_update,
)
from .server import AllocationServer, serve_stdio
from .session import AllocationSession, ServiceSlotResult, percentile

__all__ = [
    "AllocationServer",
    "AllocationSession",
    "LoadgenReport",
    "ProtocolError",
    "ServiceConfig",
    "ServiceSlotResult",
    "batch_reference_cost",
    "encode",
    "observation_to_update",
    "observations_from_trace",
    "parse_message",
    "parse_update",
    "percentile",
    "run_loadgen",
    "serve_stdio",
]
