"""The live allocation server: JSON-lines over TCP or stdio, asyncio-driven.

:class:`AllocationServer` wraps one :class:`AllocationSession` behind an
``asyncio`` TCP listener. Slots advance on an **event trigger** by
default — every in-order ``update`` message is solved immediately — or
on a **wall-clock trigger** when ``tick_s`` is set: updates are buffered
(latest wins, superseded updates are answered as such) and a ticker task
solves the freshest one every tick, which is how a position feed faster
than the solver is downsampled instead of queued unboundedly.

Solves run in a thread-pool executor under a session lock, so the event
loop keeps accepting input (and serving ``/metrics`` via
:class:`repro.telemetry.exporters.MetricsEndpoint`) while the IPM is
working. :func:`serve_stdio` is the transportless twin: a blocking
JSON-lines loop over file objects, used by ``repro-edge serve --stdio``
and by pipelines that feed updates from a file. See docs/SERVING.md.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import IO

from ..telemetry import get_registry
from ..telemetry.exporters import MetricsEndpoint
from .protocol import ProtocolError, encode, parse_message
from .session import AllocationSession


class AllocationServer:
    """Serve one allocation session over newline-delimited JSON on TCP.

    Attributes:
        session: the synchronous serving core (shared by every client —
            the protocol is stateful per *session*, not per connection).
        host: listen address.
        port: listen port (0 = pick a free one; read back after start).
        tick_s: wall-clock slot trigger period; ``None`` = event-driven.
        metrics_port: when not ``None``, also serve the active telemetry
            registry as OpenMetrics on ``GET /metrics`` at this port
            (0 = pick a free one; see ``metrics_endpoint.port``).
    """

    def __init__(
        self,
        session: AllocationSession,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_s: float | None = None,
        metrics_port: int | None = None,
    ) -> None:
        if tick_s is not None and tick_s <= 0:
            raise ValueError("tick_s must be positive or None")
        self.session = session
        self.host = host
        self.port = port
        self.tick_s = tick_s
        self.metrics_port = metrics_port
        self.metrics_endpoint: MetricsEndpoint | None = None
        self._server: asyncio.AbstractServer | None = None
        self._lock: asyncio.Lock | None = None
        self._ticker: asyncio.Task | None = None
        # Latest buffered (message, writer) awaiting the next tick.
        self._pending: tuple[dict, asyncio.StreamWriter] | None = None

    # ----- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (and the metrics endpoint / ticker, if any)."""
        self._lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self.metrics_endpoint = MetricsEndpoint(
                host=self.host, port=self.metrics_port
            )
            await self.metrics_endpoint.start()
        if self.tick_s is not None:
            self._ticker = asyncio.create_task(self._tick_loop())

    async def stop(self) -> None:
        """Close the listener, the ticker, and the metrics endpoint."""
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.metrics_endpoint is not None:
            await self.metrics_endpoint.stop()
            self.metrics_endpoint = None

    async def serve_forever(self) -> None:
        """Start (if needed) and block until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ----- request handling ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                await self._dispatch(line, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # close() is enough here: awaiting wait_closed() in a handler
            # races loop shutdown (asyncio.run cancels handlers mid-await).
            writer.close()

    async def _dispatch(self, line: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            message = parse_message(line)
        except ProtocolError as exc:
            get_registry().counter("service.protocol.rejected").inc()
            await self._reply(
                writer,
                {
                    "type": "error",
                    "error": str(exc),
                    "expected_slot": self.session.expected_slot,
                },
            )
            return
        if self.tick_s is not None and message.get("type") == "update":
            superseded = self._pending
            self._pending = (message, writer)
            if superseded is not None:
                old_message, old_writer = superseded
                get_registry().counter("service.updates.superseded").inc()
                await self._reply(
                    old_writer,
                    {
                        "type": "superseded",
                        "slot": old_message.get("slot"),
                        "expected_slot": self.session.expected_slot,
                    },
                )
            return
        reply = await self._handle_locked(message)
        await self._reply(writer, reply)

    async def _handle_locked(self, message: dict) -> dict:
        """Run one session dispatch in the executor, serialized by the lock."""
        assert self._lock is not None
        loop = asyncio.get_running_loop()
        async with self._lock:
            return await loop.run_in_executor(None, self.session.handle, message)

    async def _tick_loop(self) -> None:
        """Wall-clock slot trigger: solve the freshest buffered update."""
        assert self.tick_s is not None
        while True:
            await asyncio.sleep(self.tick_s)
            pending = self._pending
            self._pending = None
            if pending is None:
                continue
            message, writer = pending
            reply = await self._handle_locked(message)
            await self._reply(writer, reply)

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, reply: dict) -> None:
        if writer.is_closing():
            return
        try:
            writer.write(encode(reply))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


def serve_stdio(
    session: AllocationSession,
    in_stream: IO[str] | None = None,
    out_stream: IO[str] | None = None,
) -> int:
    """Blocking JSON-lines loop over file objects (stdin/stdout by default).

    Reads one message per line, writes one reply per line, returns the
    number of slots served when the input stream ends. Protocol errors
    are answered and the loop continues — a torn line never kills the
    session.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    for line in in_stream:
        if not line.strip():
            continue
        reply = session.handle_line(line)
        out_stream.write(json.dumps(reply, separators=(",", ":")) + "\n")
        out_stream.flush()
    return session.stepper.processed
