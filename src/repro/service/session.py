"""One serving session: a budgeted controller driven over live updates.

:class:`AllocationSession` is the service's synchronous core — no
asyncio, no sockets — so it is directly testable and reusable from the
TCP server, the stdio loop, and the load generator alike. It wires the
pieces the batch path already has into a long-running shape:

* a :class:`~repro.core.regularization.OnlineRegularizedAllocator` whose
  :class:`~repro.solvers.base.SolveBudget` comes from the
  :class:`~repro.service.config.ServiceConfig` (the deadline ladder);
* that allocator's controller form — per-user, or cohort-aggregated when
  the config carries an :class:`~repro.aggregate.AggregationConfig`;
* a :class:`~repro.simulation.spine.SlotStepper`, so every slot runs the
  *identical* accounting/telemetry/feasibility body as batch
  :func:`~repro.simulation.spine.simulate`.

Each processed slot is measured and classified: a **deadline miss** is a
slot whose solve was budget-truncated (any partial solve) or whose wall
latency exceeded the configured deadline. Misses are counted
(``service.deadline.misses``), recorded as ``service.deadline.miss``
events (the :class:`~repro.telemetry.watchdog.DeadlineMissRule` watches
those), and surfaced in every ``slot_result`` reply.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.regularization import OnlineRegularizedAllocator
from ..simulation.accounting import SlotCosts
from ..simulation.observations import SlotObservation, SystemDescription
from ..simulation.spine import SlotStepper
from ..solvers.registry import get_backend
from ..solvers.registry import reset_session as reset_backend_session
from ..telemetry import (
    Alert,
    FlightRecorder,
    SloTracker,
    TraceContext,
    Watchdog,
    default_rules,
    default_slos,
    get_registry,
    trace_scope,
    trace_span,
)
from .config import ServiceConfig
from .protocol import ProtocolError, parse_update


def percentile(values, fraction: float) -> float:
    """Exact nearest-rank percentile of a sequence (0.0 when empty)."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return 0.0
    rank = max(1, int(np.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


@dataclass(frozen=True)
class ServiceSlotResult:
    """What serving one slot produced.

    Attributes:
        slot: the slot index that was solved.
        costs: the slot's four paper costs (incremental accounting).
        total_cost: the session's accumulated P0 objective.
        latency_ms: wall time of the whole step (solve + accounting).
        partial: whether the solve was truncated by the budget.
        deadline_miss: partial, or latency above the configured deadline.
        trace_id: the requesting update's distributed-trace id, echoed on
            the reply so the client can stitch the round-trip into its
            trace; ``None`` for untraced requests (and then absent from
            the wire reply, keeping untraced replies byte-identical).
    """

    slot: int
    costs: SlotCosts
    total_cost: float
    latency_ms: float
    partial: bool
    deadline_miss: bool
    trace_id: str | None = None

    def as_reply(self) -> dict:
        """The ``slot_result`` wire reply for this slot."""
        reply = {
            "type": "slot_result",
            "slot": self.slot,
            "cost": self.costs.total,
            "operation": self.costs.operation,
            "service_quality": self.costs.service_quality,
            "reconfiguration": self.costs.reconfiguration,
            "migration": self.costs.migration,
            "total_cost": self.total_cost,
            "latency_ms": self.latency_ms,
            "partial": self.partial,
            "deadline_miss": self.deadline_miss,
        }
        if self.trace_id is not None:
            reply["trace_id"] = self.trace_id
        return reply


class AllocationSession:
    """A long-running allocation horizon over a fixed system description.

    Attributes:
        system: the time-invariant system being served.
        config: the serving configuration (budget, solver, aggregation).
        results: every :class:`ServiceSlotResult` produced so far.
    """

    def __init__(self, system: SystemDescription, config: ServiceConfig) -> None:
        self.system = system
        self.config = config
        self._backend = get_backend(config.backend)
        self._allocator = OnlineRegularizedAllocator(
            eps1=config.eps1,
            eps2=config.eps2,
            backend=self._backend,
            tol=config.tol,
            aggregation=config.aggregation,
            budget=config.budget(),
        )
        self.results: list[ServiceSlotResult] = []
        self._deadline_misses = 0
        # Incident plane: the flight recorder snapshots the last K slots
        # (config.flight_slots), a session-local watchdog classifies the
        # slot stream so alerts trigger bundle dumps even when global
        # telemetry is off, and the SLO tracker keeps burn-rate state.
        # All three are None when disabled — the serving path is then
        # exactly the pre-recorder code.
        self.recorder: FlightRecorder | None = None
        self._watchdog: Watchdog | None = None
        if config.flight_slots > 0:
            self.recorder = FlightRecorder(
                config.flight_slots, incident_dir=config.incident_dir
            )
            self._watchdog = Watchdog(default_rules())
        self.slo: SloTracker | None = None
        if config.slo:
            self.slo = SloTracker(
                default_slos(
                    deadline_ms=None
                    if config.deadline_s is None
                    else config.deadline_s * 1000.0
                )
            )
        self._start_stepper()

    def _start_stepper(self) -> None:
        self.controller = self._allocator.as_controller(self.system)
        self.stepper = SlotStepper(
            self.controller,
            self.system,
            keep_schedule=self.config.keep_schedule,
            recorder=self.recorder,
        )
        self.stepper.start()

    # ----- slot processing ----------------------------------------------------

    @property
    def expected_slot(self) -> int:
        """The slot index the next update must carry."""
        return self.stepper.processed

    @property
    def deadline_misses(self) -> int:
        """Slots that missed the deadline (partial solve or late wall time)."""
        return self._deadline_misses

    @property
    def total_cost(self) -> float:
        """The accumulated P0 objective over every served slot."""
        if self.stepper.processed == 0:
            return 0.0
        return self.stepper.accumulator.breakdown().total

    def _solve_was_partial(self) -> bool:
        """Whether the slot just stepped hit its budget (either path)."""
        reports = getattr(self.controller, "last_reports", None)
        if reports:  # cohort-aggregated path
            return reports[-1].partial_solves > 0
        last = getattr(self.controller, "last_result", None)
        return bool(last is not None and last.partial)

    def _trim_history(self) -> None:
        """Bound the diagnostics lists a long-lived session accumulates."""
        keep = self.config.history
        algorithm = self._allocator
        if len(algorithm.last_solves) > keep:
            del algorithm.last_solves[:-keep]
        if len(algorithm.last_certificates) > keep:
            del algorithm.last_certificates[:-keep]
        reports = getattr(self.controller, "last_reports", None)
        if reports is not None and len(reports) > keep:
            del reports[:-keep]
        if len(self.results) > max(keep, 4096):
            del self.results[: -max(keep, 4096)]

    def step(
        self,
        observation: SlotObservation,
        *,
        trace: TraceContext | None = None,
    ) -> ServiceSlotResult:
        """Serve one slot: solve under budget, account, classify the latency.

        When ``trace`` carries a client's wire context, the whole solve
        runs under it — every span and event the slot records joins the
        client's trace, and the result echoes the ``trace_id``.
        """
        start = time.perf_counter()
        if trace is not None:
            with trace_scope(trace):
                with trace_span("service.slot", slot=int(observation.slot)):
                    _, costs = self.stepper.step(observation)
        else:
            _, costs = self.stepper.step(observation)
        latency_s = time.perf_counter() - start
        partial = self._solve_was_partial()
        miss = partial or (
            self.config.deadline_s is not None
            and latency_s > self.config.deadline_s
        )
        result = ServiceSlotResult(
            slot=int(observation.slot),
            costs=costs,
            total_cost=self.total_cost,
            latency_ms=latency_s * 1000.0,
            partial=partial,
            deadline_miss=miss,
            trace_id=None if trace is None else trace.trace_id,
        )
        self.results.append(result)
        telemetry = get_registry()
        telemetry.counter("service.slots").inc()
        telemetry.histogram("service.slot_latency_ms").observe(result.latency_ms)
        if miss:
            self._deadline_misses += 1
            telemetry.counter("service.deadline.misses").inc()
            if partial:
                telemetry.counter("service.deadline.partial_solves").inc()
            if telemetry.enabled:
                telemetry.event(
                    "service.deadline.miss",
                    slot=result.slot,
                    latency_ms=result.latency_ms,
                    deadline_ms=(
                        None
                        if self.config.deadline_s is None
                        else self.config.deadline_s * 1000.0
                    ),
                    partial=partial,
                )
        if telemetry.enabled:
            payload = {
                "slot": result.slot,
                "latency_ms": result.latency_ms,
                "partial": partial,
                "deadline_miss": miss,
                "total_cost": result.total_cost,
            }
            if result.trace_id is not None:
                payload["trace_id"] = result.trace_id
            telemetry.event("service.slot", **payload)
            telemetry.maybe_flush()
        self._observe_locally(result)
        self._trim_history()
        return result

    def _observe_locally(self, result: ServiceSlotResult) -> None:
        """Feed the incident plane, independent of global telemetry.

        The session synthesizes the same ``slot`` / ``service.slot`` /
        ``service.deadline.miss`` records the telemetry plane would emit
        and runs them through its own watchdog and SLO tracker, so a
        deadline-miss storm dumps an incident bundle even on a server
        started without ``--telemetry``. Pure observation — no solver or
        accounting state is touched.
        """
        if self.recorder is None and self.slo is None:
            return
        records = [
            {"type": "slot", "slot": result.slot, "wall_ms": result.latency_ms},
            {
                "type": "service.slot",
                "slot": result.slot,
                "latency_ms": result.latency_ms,
                "partial": result.partial,
                "deadline_miss": result.deadline_miss,
            },
        ]
        if result.deadline_miss:
            records.append(
                {
                    "type": "service.deadline.miss",
                    "slot": result.slot,
                    "latency_ms": result.latency_ms,
                    "partial": result.partial,
                }
            )
        for record in records:
            alerts = (
                [] if self._watchdog is None else self._watchdog.observe(record)
            )
            if self.slo is not None:
                for transition in self.slo.observe(record):
                    if transition["state"] != "firing":
                        continue
                    alerts.append(
                        Alert(
                            rule=f"slo:{transition['objective']}",
                            message=(
                                f"SLO {transition['objective']} burning at "
                                f"{transition['fast_burn']:.1f}x fast / "
                                f"{transition['slow_burn']:.1f}x slow"
                            ),
                            slot=result.slot,
                            value=float(transition["fast_burn"]),
                            threshold=float(transition["fast_threshold"]),
                        )
                    )
            if self.recorder is not None:
                self.recorder.observe_event(record)
                for alert in alerts:
                    self.recorder.observe_event(alert.as_event())

    # ----- message dispatch ---------------------------------------------------

    def handle(self, message: dict) -> dict:
        """Dispatch one parsed client message; always returns a reply dict.

        Protocol violations (bad shapes, late/future slots) produce an
        ``error`` reply and leave the session state untouched — the
        client may continue with a corrected update for the same slot.
        """
        kind = message.get("type")
        try:
            if kind == "hello":
                return self._welcome()
            if kind == "update":
                observation = parse_update(
                    message,
                    expected_slot=self.expected_slot,
                    num_clouds=self.system.num_clouds,
                    num_users=self.system.num_users,
                )
                trace = TraceContext.from_wire(message.get("trace"))
                return self.step(observation, trace=trace).as_reply()
            if kind == "reset":
                self.reset_session()
                return {"type": "reset_ok", "expected_slot": self.expected_slot}
            if kind == "stats":
                return {"type": "stats", **self.stats()}
        except ProtocolError as exc:
            get_registry().counter("service.protocol.rejected").inc()
            return {
                "type": "error",
                "error": str(exc),
                "expected_slot": self.expected_slot,
            }
        return {
            "type": "error",
            "error": f"unknown message type {kind!r}",
            "expected_slot": self.expected_slot,
        }

    def handle_line(self, line: str | bytes) -> dict:
        """Parse one wire line and dispatch it (torn lines become errors)."""
        from .protocol import parse_message

        try:
            message = parse_message(line)
        except ProtocolError as exc:
            get_registry().counter("service.protocol.rejected").inc()
            return {
                "type": "error",
                "error": str(exc),
                "expected_slot": self.expected_slot,
            }
        return self.handle(message)

    def _welcome(self) -> dict:
        return {
            "type": "welcome",
            "num_clouds": self.system.num_clouds,
            "num_users": self.system.num_users,
            "expected_slot": self.expected_slot,
            "deadline_s": self.config.deadline_s,
            "max_iterations": self.config.max_iterations,
            "aggregated": self.config.aggregation is not None,
        }

    # ----- lifecycle ----------------------------------------------------------

    def reset_session(self) -> None:
        """Start a fresh horizon: slot 0, cold caches, closed circuits.

        Clears *every* layer of cross-slot state: the controller's carried
        decision and warm caches (``controller.reset``), the backend's
        circuit-breaker/session state
        (:func:`repro.solvers.registry.reset_session`), and the stepper's
        accumulator/residuals (a fresh :class:`SlotStepper`).
        """
        reset_backend_session(self._backend)
        self.results = []
        self._deadline_misses = 0
        if self.recorder is not None:
            # Stale snapshots would replay fine (bundles are self-
            # contained) but describe the previous horizon; start clean.
            self.recorder.snapshots.clear()
            self._watchdog = Watchdog(default_rules())
        if self.slo is not None:
            self.slo = SloTracker(self.slo.objectives)
        self._start_stepper()

    def stats(self) -> dict:
        """Session statistics: slots, costs, misses, latency percentiles.

        Always includes the incident-plane counters (zeros / empty when
        the recorder and SLO tracker are disabled), so operators can see
        at a glance whether the plane is armed and what it has captured.
        """
        latencies = [r.latency_ms for r in self.results]
        recorder = self.recorder
        return {
            "slots": self.stepper.processed,
            "expected_slot": self.expected_slot,
            "total_cost": self.total_cost,
            "deadline_misses": self._deadline_misses,
            "latency_p50_ms": percentile(latencies, 0.50),
            "latency_p95_ms": percentile(latencies, 0.95),
            "latency_p99_ms": percentile(latencies, 0.99),
            "flight_snapshots": 0 if recorder is None else recorder.snapshots_taken,
            "incident_bundles": (
                [] if recorder is None
                else [str(path) for path in recorder.bundles_written]
            ),
            "slo_active": [] if self.slo is None else list(self.slo.active),
        }
