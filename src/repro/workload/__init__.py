"""User workload models."""

from .distributions import (
    WORKLOAD_DISTRIBUTIONS,
    WorkloadGenerator,
    make_workloads,
    normal_workloads,
    power_workloads,
    uniform_workloads,
)

__all__ = [
    "WORKLOAD_DISTRIBUTIONS",
    "WorkloadGenerator",
    "make_workloads",
    "normal_workloads",
    "power_workloads",
    "uniform_workloads",
]
