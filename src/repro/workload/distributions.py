"""User workload generators (paper Section V-A, "User workload").

The paper studies three workload distributions:

* **power** — highly skewed workloads "typically seen in online social
  network services" (power law / Zipf-like);
* **uniform** — every workload size equally likely in a range;
* **normal** — Gaussian around a mean.

Workloads are positive integers (the competitive analysis in Lemma 6 uses
``lambda_j in Z+`` with ``lambda_j >= 1``), so every generator rounds and
clips to ``>= 1``.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

WorkloadGenerator = Callable[[int, np.random.Generator], np.ndarray]


def _as_positive_int(values: np.ndarray) -> np.ndarray:
    """Round to integers and clip at 1, per the lambda_j in Z+ assumption."""
    return np.maximum(1, np.rint(values)).astype(np.int64)


def power_workloads(
    num_users: int,
    rng: np.random.Generator,
    *,
    exponent: float = 2.0,
    scale: float = 2.0,
    max_workload: int = 50,
) -> np.ndarray:
    """Power-law (Pareto) distributed integer workloads.

    ``exponent`` is the Pareto tail index (larger = lighter tail); ``scale``
    is the minimum of the underlying continuous distribution. The result is
    capped at ``max_workload`` to keep single users from dominating the whole
    system capacity, then rounded to integers >= 1.
    """
    if num_users < 0:
        raise ValueError("num_users must be nonnegative")
    if exponent <= 0 or scale <= 0:
        raise ValueError("exponent and scale must be positive")
    raw = scale * (1.0 + rng.pareto(exponent, size=num_users))
    return _as_positive_int(np.minimum(raw, float(max_workload)))


def uniform_workloads(
    num_users: int,
    rng: np.random.Generator,
    *,
    low: int = 1,
    high: int = 10,
) -> np.ndarray:
    """Integer workloads drawn uniformly from {low, ..., high}."""
    if num_users < 0:
        raise ValueError("num_users must be nonnegative")
    if low < 1 or high < low:
        raise ValueError("need 1 <= low <= high")
    return rng.integers(low, high + 1, size=num_users).astype(np.int64)


def normal_workloads(
    num_users: int,
    rng: np.random.Generator,
    *,
    mean: float = 5.0,
    std: float = 2.0,
) -> np.ndarray:
    """Gaussian integer workloads, truncated below at 1."""
    if num_users < 0:
        raise ValueError("num_users must be nonnegative")
    if std < 0:
        raise ValueError("std must be nonnegative")
    return _as_positive_int(rng.normal(mean, std, size=num_users))


#: Name -> generator mapping used by scenario builders and the CLI.
WORKLOAD_DISTRIBUTIONS: dict[str, WorkloadGenerator] = {
    "power": power_workloads,
    "uniform": uniform_workloads,
    "normal": normal_workloads,
}


def make_workloads(
    distribution: str,
    num_users: int,
    rng: np.random.Generator,
    **kwargs: float,
) -> np.ndarray:
    """Dispatch to a named workload distribution.

    Args:
        distribution: one of ``"power"``, ``"uniform"``, ``"normal"``.
        num_users: number of users J.
        rng: numpy random generator (callers own seeding).
        **kwargs: forwarded to the specific generator.

    Returns:
        Integer array of shape (J,), every entry >= 1.
    """
    try:
        generator = WORKLOAD_DISTRIBUTIONS[distribution]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_DISTRIBUTIONS))
        raise ValueError(f"unknown workload distribution {distribution!r}; known: {known}") from None
    return generator(num_users, rng, **kwargs)
