"""Incident flight recorder: replayable snapshots of the last K slots.

The watchdog (:mod:`repro.telemetry.watchdog`) tells you *that* a live
run went wrong; this module captures *what the solver actually saw* so
the offending slots can be re-run offline, deterministically. A
:class:`FlightRecorder` keeps a bounded ring of the last K slots' full
solve input state — the :class:`~repro.simulation.observations.SlotObservation`,
the controller state carried into the slot (x*_{t-1} and warm caches,
via the spine's checkpoint machinery), the solver/aggregation
configuration and budget, the active trace ids, and an environment
fingerprint (:mod:`repro.telemetry.environment`). On any watchdog alert
— or an explicit :meth:`FlightRecorder.dump` — it writes an **incident
bundle**: a JSON-lines file in the ``repro.incident/1`` schema holding
the triggering alert, the K snapshots, and the surrounding event window.

The loop closes with :func:`replay_bundle` (``repro-edge incident
replay``): each captured slot is rebuilt through a fresh
:class:`~repro.simulation.spine.SlotStepper` from its recorded pre-slot
state and the recorded costs, iteration count, and partial flag must
reproduce **bit-for-bit**. A budget-truncated solve replays under an
iteration cap equal to the recorded iteration count — the interior-point
method checks wall-clock and iteration budgets at the same point between
Newton iterations, so the deadline truncation is reproduced exactly
without a wall clock.

Everything here is observe-only: with no recorder attached the spine's
slot body does not change, and recorder-on runs compute bit-identical
costs (pinned by ``scripts/telemetry_overhead.py``).
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from .environment import environment_fingerprint
from .manifest import _jsonify
from .metrics import get_registry
from .sinks import EventSink
from .tracing import current_trace

#: Format tag written into every incident bundle (bump on breaking change).
INCIDENT_FORMAT = "repro.incident/1"

#: Default ring capacity: how many slots of solve input state are kept.
DEFAULT_CAPACITY = 8

#: Default bound on the surrounding-event context window kept in memory.
DEFAULT_CONTEXT_EVENTS = 128

#: Default cap on bundles one recorder writes (an alert storm must not
#: fill the disk; suppressed dumps are counted, not silently dropped).
DEFAULT_MAX_BUNDLES = 16

# ----- state serialization ----------------------------------------------------
#
# Controller/accumulator states are nested tuples of ndarrays, scalars,
# and None (see SlotStepper.checkpoint()). JSON cannot round-trip tuples
# or ndarrays natively, so both are tagged; python floats round-trip
# bit-exactly through json's repr-based printing, which is what makes
# replay a bit-for-bit contract rather than a tolerance check.

_ND_TAG = "__ndarray__"
_TUPLE_TAG = "__tuple__"
_BYTES_TAG = "__bytes__"


def encode_state(value):
    """Encode a checkpoint state into a JSON-able, bit-round-trippable form.

    Raises ``TypeError`` for values outside the supported vocabulary
    (ndarray, tuple, list, dict, scalars, ``None``) — the recorder turns
    that into a non-replayable snapshot instead of a corrupt one.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return {_ND_TAG: value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, bytes):  # e.g. warm-cohort signature digests
        return {_BYTES_TAG: value.hex()}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_state(item) for item in value]}
    if isinstance(value, list):
        return [encode_state(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_state(item) for key, item in value.items()}
    raise TypeError(
        f"cannot encode {type(value).__name__} into an incident snapshot"
    )


def decode_state(value):
    """Invert :func:`encode_state` (tags back to ndarrays and tuples)."""
    if isinstance(value, dict):
        if _ND_TAG in value:
            return np.asarray(value[_ND_TAG], dtype=value.get("dtype", "float64"))
        if _BYTES_TAG in value:
            return bytes.fromhex(value[_BYTES_TAG])
        if _TUPLE_TAG in value:
            return tuple(decode_state(item) for item in value[_TUPLE_TAG])
        return {key: decode_state(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_state(item) for item in value]
    return value


def _encode_system(system) -> dict:
    """Serialize a SystemDescription so bundles are self-contained."""
    return {
        "workloads": encode_state(np.asarray(system.workloads)),
        "capacities": encode_state(np.asarray(system.capacities)),
        "reconfig_prices": encode_state(np.asarray(system.reconfig_prices)),
        "migration_out": encode_state(np.asarray(system.migration_prices.out)),
        "migration_in": encode_state(np.asarray(system.migration_prices.into)),
        "inter_cloud_delay": encode_state(np.asarray(system.inter_cloud_delay)),
        "weights": {
            "static": float(system.weights.static),
            "dynamic": float(system.weights.dynamic),
        },
    }


def _decode_system(payload: dict):
    from ..core.problem import CostWeights
    from ..pricing.bandwidth import MigrationPrices
    from ..simulation.observations import SystemDescription

    weights = payload.get("weights") or {}
    return SystemDescription(
        workloads=decode_state(payload["workloads"]),
        capacities=decode_state(payload["capacities"]),
        reconfig_prices=decode_state(payload["reconfig_prices"]),
        migration_prices=MigrationPrices(
            out=decode_state(payload["migration_out"]),
            into=decode_state(payload["migration_in"]),
        ),
        inter_cloud_delay=decode_state(payload["inter_cloud_delay"]),
        weights=CostWeights(
            static=float(weights.get("static", 1.0)),
            dynamic=float(weights.get("dynamic", 1.0)),
        ),
    )


def _backend_name(backend) -> str:
    """The registry name a backend object replays under.

    Allocators hold resolved backend *objects* whose display names
    (e.g. the fallback chain's ``structured-ipm+scipy-trust-constr``)
    are not registry keys, so the object is mapped back to its registry
    entry by identity. ``None`` means the default chain (``"auto"``).
    """
    if backend is None:
        return "auto"
    from ..solvers import registry  # lazy: registry pulls in the solvers

    for name in registry.available_backends():
        if registry.get_backend(name) is backend:
            return name
    return str(getattr(backend, "name", None) or "auto")


def _describe_controller(controller) -> dict:
    """The replay-relevant configuration of a spine controller.

    Controllers without an ``algorithm`` (baseline adapters, schedule
    replays) are recorded by name but marked non-replayable — the bundle
    still documents what ran, replay just refuses those snapshots.
    """
    algorithm = getattr(controller, "algorithm", None)
    if algorithm is None or not hasattr(algorithm, "eps1"):
        return {"kind": type(controller).__name__, "replayable": False}
    backend = getattr(algorithm, "backend", None)
    budget = getattr(algorithm, "budget", None)
    info = {
        "kind": "regularized",
        "replayable": True,
        "eps1": float(algorithm.eps1),
        "eps2": float(algorithm.eps2),
        "tol": float(algorithm.tol),
        "warm_start": bool(algorithm.warm_start),
        "backend": _backend_name(backend),
        "budget": None
        if budget is None
        else {
            "deadline_s": budget.deadline_s,
            "max_iterations": budget.max_iterations,
        },
        "aggregation": None,
    }
    config = getattr(controller, "config", None)
    if config is not None and hasattr(config, "lambda_buckets"):
        info["kind"] = "aggregated"
        info["aggregation"] = {
            "lambda_buckets": config.lambda_buckets,
            "shards": int(config.shards),
            "workers": config.workers,
            "backend": str(config.backend),
            "shard_slicing": str(config.shard_slicing),
            "warm_cohorts": bool(config.warm_cohorts),
            "batch_solves": bool(config.batch_solves),
        }
    return info


def _solver_stats(controller) -> tuple[int, bool]:
    """(iterations, partial) of the slot the controller just solved."""
    reports = getattr(controller, "last_reports", None)
    if reports:
        last = reports[-1]
        return int(last.iterations), bool(last.partial_solves > 0)
    last = getattr(controller, "last_result", None)
    if last is not None:
        return int(last.iterations), bool(last.partial)
    return 0, False


# ----- the recorder -----------------------------------------------------------


@dataclass(frozen=True)
class SlotSnapshot:
    """One slot's full solve input state plus its recorded outcome.

    Attributes:
        slot: the observed slot index.
        observation: the slot's observation (arrays copied at capture).
        checkpoint: the spine checkpoint taken *before* the solve — the
            controller state (x*_{t-1}, warm caches), accumulator state,
            and residual maxima that make the slot reproducible.
        costs: the four paper costs plus the weighted total the slot paid.
        iterations: solver Newton iterations the slot's solve performed.
        partial: whether the solve was budget-truncated.
        wall_ms: wall time of the slot body (informational; not replayed).
        trace_id, span_id: the active distributed-trace context, if any.
    """

    slot: int
    observation: object
    checkpoint: object
    costs: dict
    iterations: int
    partial: bool
    wall_ms: float
    trace_id: str | None = None
    span_id: str | None = None


class FlightRecorder:
    """Bounded ring of replayable slot snapshots, dumped on alerts.

    Wire one into the spine via :class:`~repro.simulation.spine.SlotStepper`'s
    ``recorder=`` argument or process-wide via :func:`flight_session`; feed
    it the live event stream via :class:`FlightRecorderSink` (or
    :meth:`observe_event`) so ``alert`` records trigger automatic bundle
    dumps into ``incident_dir``.

    Attributes:
        capacity: K — the ring size (oldest snapshots evicted beyond it).
        snapshots: the retained :class:`SlotSnapshot` ring, oldest first.
        snapshots_taken: snapshots ever captured (including evicted ones).
        bundles_written: paths of every incident bundle written.
        dumps_suppressed: auto-dumps skipped by the per-rule cooldown or
            the ``max_bundles`` cap.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        incident_dir: str | Path | None = None,
        context_events: int = DEFAULT_CONTEXT_EVENTS,
        max_bundles: int = DEFAULT_MAX_BUNDLES,
    ) -> None:
        """Create a recorder keeping the last ``capacity`` slots."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.incident_dir = None if incident_dir is None else Path(incident_dir)
        self.max_bundles = int(max_bundles)
        self.snapshots: deque[SlotSnapshot] = deque(maxlen=self.capacity)
        self.snapshots_taken = 0
        self.bundles_written: list[Path] = []
        self.dumps_suppressed = 0
        self._context: deque[dict] = deque(maxlen=max(1, context_events))
        self._system = None
        self._controller_info: dict | None = None
        self._pending: tuple[object, object, float] | None = None
        self._last_dump_at: dict[str, int] = {}

    # ----- spine wiring -------------------------------------------------------

    def begin_slot(self, stepper, observation) -> None:
        """Capture the pre-solve state (called by ``SlotStepper.step``)."""
        if self._system is None:
            self._system = stepper.system
            self._controller_info = _describe_controller(stepper.controller)
        self._pending = (observation, stepper.checkpoint(), time.perf_counter())

    def end_slot(self, stepper, observation, costs, wall_ms: float) -> None:
        """Seal the pending snapshot with the slot's recorded outcome."""
        if self._pending is None:
            return
        pending_observation, checkpoint, _started = self._pending
        self._pending = None
        if pending_observation is not observation:
            return  # interleaved steppers; keep only matched pairs
        iterations, partial = _solver_stats(stepper.controller)
        trace = current_trace()
        self.snapshots.append(
            SlotSnapshot(
                slot=int(observation.slot),
                observation=observation,
                checkpoint=checkpoint,
                costs={
                    "operation": costs.operation,
                    "service_quality": costs.service_quality,
                    "reconfiguration": costs.reconfiguration,
                    "migration": costs.migration,
                    "total": costs.total,
                },
                iterations=iterations,
                partial=partial,
                wall_ms=float(wall_ms),
                trace_id=None if trace is None else trace.trace_id,
                span_id=None if trace is None else trace.span_id,
            )
        )
        self.snapshots_taken += 1
        get_registry().counter("flight.snapshots").inc()

    # ----- event stream wiring ------------------------------------------------

    def observe_event(self, record: dict) -> None:
        """Fold one event into the context window; auto-dump on alerts."""
        self._context.append(record)
        if record.get("type") != "alert":
            return
        rule = str(record.get("rule", "?"))
        if not self.snapshots or self.incident_dir is None:
            return
        last = self._last_dump_at.get(rule)
        if last is not None and self.snapshots_taken - last < self.capacity:
            self.dumps_suppressed += 1
            return
        if len(self.bundles_written) >= self.max_bundles:
            self.dumps_suppressed += 1
            return
        self._last_dump_at[rule] = self.snapshots_taken
        self.dump(alert=record, reason=f"alert:{rule}")

    @property
    def active_trace_ids(self) -> list[str]:
        """Distinct trace ids across the retained snapshots, oldest first."""
        seen: list[str] = []
        for snapshot in self.snapshots:
            if snapshot.trace_id is not None and snapshot.trace_id not in seen:
                seen.append(snapshot.trace_id)
        return seen

    # ----- bundle writing -----------------------------------------------------

    def _snapshot_record(self, snapshot: SlotSnapshot) -> dict:
        observation = snapshot.observation
        checkpoint = snapshot.checkpoint
        record: dict = {
            "type": "snapshot",
            "slot": snapshot.slot,
            "recorded": {
                "costs": snapshot.costs,
                "iterations": snapshot.iterations,
                "partial": snapshot.partial,
                "wall_ms": snapshot.wall_ms,
            },
            "replayable": True,
        }
        if snapshot.trace_id is not None:
            record["trace"] = {
                "trace_id": snapshot.trace_id,
                "span_id": snapshot.span_id,
            }
        try:
            record["observation"] = {
                "slot": int(observation.slot),
                "op_prices": encode_state(np.asarray(observation.op_prices)),
                "attachment": encode_state(np.asarray(observation.attachment)),
                "access_delay": encode_state(
                    np.asarray(observation.access_delay)
                ),
            }
            accumulator = checkpoint.accumulator_state
            record["next_slot"] = int(checkpoint.next_slot)
            record["residuals"] = [float(r) for r in checkpoint.residuals]
            record["controller_state"] = encode_state(
                checkpoint.controller_state
            )
            record["accumulator_state"] = {
                "operation": list(accumulator.operation),
                "service_quality": list(accumulator.service_quality),
                "reconfiguration": list(accumulator.reconfiguration),
                "migration": list(accumulator.migration),
                "x_prev": encode_state(np.asarray(accumulator.x_prev)),
            }
        except (AttributeError, TypeError) as error:
            # Unknown observation/state vocabulary: the snapshot still
            # documents the slot, it just cannot seed a replay.
            record["replayable"] = False
            record["replay_error"] = str(error)
        return record

    def dump(
        self,
        path: str | Path | None = None,
        *,
        alert: dict | None = None,
        reason: str = "manual",
    ) -> Path | None:
        """Write the current ring as an incident bundle; return its path.

        Args:
            path: explicit bundle path; defaults to a sequenced file in
                ``incident_dir`` (``None`` with no dir configured either
                — then nothing is written and ``None`` is returned).
            alert: the triggering ``alert`` event record, if any.
            reason: why the bundle was written (``alert:<rule>``,
                ``manual``, ...).
        """
        if not self.snapshots:
            return None
        if path is None:
            if self.incident_dir is None:
                return None
            self.incident_dir.mkdir(parents=True, exist_ok=True)
            rule = "manual" if alert is None else str(alert.get("rule", "alert"))
            stem = rule.replace("/", "-").replace(":", "-")
            path = (
                self.incident_dir
                / f"incident-{len(self.bundles_written):03d}-{stem}.jsonl"
            )
        path = Path(path)
        header = {
            "type": "incident_start",
            "format": INCIDENT_FORMAT,
            "created_unix": time.time(),
            "reason": reason,
            "alert": alert,
            "capacity": self.capacity,
            "environment": environment_fingerprint(),
            "controller": self._controller_info
            or {"kind": "unknown", "replayable": False},
            "system": None if self._system is None else _encode_system(self._system),
        }
        snapshots = [self._snapshot_record(s) for s in self.snapshots]
        context = {
            "type": "context",
            "events": list(self._context),
            "trace_ids": self.active_trace_ids,
        }
        with path.open("w", encoding="utf-8") as handle:
            for record in (
                header,
                *snapshots,
                context,
                {"type": "incident_end", "snapshots": len(snapshots)},
            ):
                handle.write(json.dumps(record, default=_jsonify) + "\n")
        self.bundles_written.append(path)
        registry = get_registry()
        registry.counter("flight.bundles").inc()
        if registry.enabled:
            registry.event(
                "incident.written",
                path=str(path),
                reason=reason,
                snapshots=len(snapshots),
                rule=None if alert is None else alert.get("rule"),
            )
        return path


class FlightRecorderSink(EventSink):
    """Wrap a sink so the recorder sees the live event stream.

    Records pass through to ``inner`` untouched; the recorder keeps its
    context window and auto-dumps on ``alert`` records. Place it
    *outermost* in a sink chain (closest to the registry) so alerts the
    inner :class:`~repro.telemetry.watchdog.WatchdogSink` re-emits
    through the registry are seen too.
    """

    def __init__(self, inner: EventSink, recorder: FlightRecorder) -> None:
        """Wrap ``inner``; every record is also fed to ``recorder``."""
        self.inner = inner
        self.recorder = recorder

    def emit(self, record: dict) -> None:
        """Forward the record, then let the recorder observe it."""
        self.inner.emit(record)
        self.recorder.observe_event(record)

    def flush(self) -> None:
        """Delegate to the inner sink."""
        self.inner.flush()

    def maybe_flush(self) -> None:
        """Delegate to the inner sink."""
        self.inner.maybe_flush()

    def close(self) -> None:
        """Delegate to the inner sink."""
        self.inner.close()


# ----- process-wide recorder --------------------------------------------------

_ACTIVE_RECORDER: FlightRecorder | None = None


def active_recorder() -> FlightRecorder | None:
    """The process-wide recorder the spine snapshots into (``None`` = off)."""
    return _ACTIVE_RECORDER


@contextmanager
def flight_session(recorder: FlightRecorder | None) -> Iterator[FlightRecorder | None]:
    """Install ``recorder`` as the process-wide one for the ``with`` block.

    Every :class:`~repro.simulation.spine.SlotStepper` step inside the
    block snapshots into it (steppers constructed with an explicit
    ``recorder=`` keep their own). ``None`` disables recording for the
    block — :func:`replay_bundle` uses that so replays never re-record.
    """
    global _ACTIVE_RECORDER
    previous = _ACTIVE_RECORDER
    _ACTIVE_RECORDER = recorder
    try:
        yield recorder
    finally:
        _ACTIVE_RECORDER = previous


# ----- bundle reading ---------------------------------------------------------


@dataclass(frozen=True)
class IncidentBundle:
    """A loaded incident bundle.

    Attributes:
        path: the file it came from.
        created_unix: bundle creation time.
        reason: why it was dumped (``alert:<rule>`` or ``manual``).
        alert: the triggering alert event record, if any.
        environment: the recording process's environment fingerprint.
        controller: the replay-relevant controller configuration.
        system: the encoded system description (``None`` if unrecorded).
        snapshots: the ``snapshot`` records, oldest first (raw dicts;
            :func:`replay_bundle` decodes them).
        context: the surrounding event window and active trace ids.
        truncated: the file ended before a consistent ``incident_end``
            (only ever ``True`` for non-strict loads).
    """

    path: Path
    created_unix: float = 0.0
    reason: str = ""
    alert: dict | None = None
    environment: dict | None = None
    controller: dict | None = None
    system: dict | None = None
    snapshots: tuple = ()
    context: dict | None = None
    truncated: bool = False


def read_bundle(path: str | Path, *, strict: bool = True) -> IncidentBundle:
    """Load an incident bundle written by :meth:`FlightRecorder.dump`.

    Raises ``ValueError`` on an unknown format tag or a torn/truncated
    file (missing or inconsistent ``incident_end``). With
    ``strict=False`` truncation is tolerated: the torn tail is dropped,
    every complete record before it is kept, and the returned bundle
    carries ``truncated=True``. :func:`replay_bundle` refuses truncated
    bundles — salvage is for inspection, not for bit-identity claims.
    """
    path = Path(path)
    header: dict = {}
    snapshots: list[dict] = []
    context: dict | None = None
    ended = False
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if strict:
                    raise ValueError(
                        f"{path}: unparseable bundle line {line_number}"
                    ) from None
                break  # torn tail of an interrupted write
            kind = record.get("type")
            if kind == "incident_start":
                if record.get("format") != INCIDENT_FORMAT:
                    raise ValueError(
                        f"{path}: unknown incident format "
                        f"{record.get('format')!r}"
                    )
                header = record
            elif kind == "snapshot":
                snapshots.append(record)
            elif kind == "context":
                context = record
            elif kind == "incident_end":
                ended = True
                if int(record.get("snapshots", -1)) != len(snapshots):
                    raise ValueError(
                        f"{path}: incident_end reports "
                        f"{record.get('snapshots')} snapshots, file holds "
                        f"{len(snapshots)} (line {line_number})"
                    )
    if not header:
        raise ValueError(f"{path}: not an incident bundle (no incident_start)")
    if not ended and strict:
        raise ValueError(f"{path}: truncated bundle (no incident_end record)")
    return IncidentBundle(
        path=path,
        created_unix=float(header.get("created_unix", 0.0)),
        reason=str(header.get("reason", "")),
        alert=header.get("alert"),
        environment=header.get("environment"),
        controller=header.get("controller"),
        system=header.get("system"),
        snapshots=tuple(snapshots),
        context=context,
        truncated=not ended,
    )


# ----- replay -----------------------------------------------------------------


@dataclass(frozen=True)
class ReplayDiff:
    """One field of one replayed slot that failed to reproduce."""

    slot: int
    field: str
    recorded: object
    replayed: object

    def render(self) -> str:
        """``slot N: field recorded X != replayed Y``."""
        return (
            f"slot {self.slot}: {self.field} recorded {self.recorded!r} "
            f"!= replayed {self.replayed!r}"
        )


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of :func:`replay_bundle` over every captured slot.

    Attributes:
        slots: snapshots replayed.
        diffs: every per-field divergence (empty = bit-for-bit identical).
    """

    slots: int
    diffs: tuple[ReplayDiff, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every recorded field reproduced bit-for-bit."""
        return not self.diffs

    def render(self) -> str:
        """Human-readable per-slot verdict plus the per-field diff."""
        verdict = (
            "REPRODUCED bit-for-bit"
            if self.ok
            else f"DIVERGED in {len(self.diffs)} field(s)"
        )
        lines = [f"Replay of {self.slots} snapshot(s): {verdict}"]
        for diff in self.diffs:
            lines.append("  " + diff.render())
        return "\n".join(lines)


#: Recorded fields compared bit-for-bit against the replay.
_COST_FIELDS = (
    "operation",
    "service_quality",
    "reconfiguration",
    "migration",
    "total",
)


def _replay_budget(controller_info: dict, snapshot: dict):
    """The deterministic budget a snapshot replays under.

    A partial per-user solve replays with ``max_iterations`` equal to
    the recorded iteration count — the IPM checks both limits at the
    same point between Newton iterations, so a wall-clock truncation is
    reproduced exactly. Non-partial solves replay with the recorded
    iteration cap (if the budget had one) or unbudgeted; a wall-clock-
    truncated *aggregated* solve has no recorded per-shard iteration
    counts and cannot be replayed deterministically.
    """
    from ..solvers.base import SolveBudget

    recorded = snapshot.get("recorded", {})
    budget = controller_info.get("budget") or {}
    if recorded.get("partial"):
        if controller_info.get("kind") == "aggregated" and not budget.get(
            "max_iterations"
        ):
            raise ValueError(
                "cannot deterministically replay a wall-clock-truncated "
                "aggregated solve (no per-shard iteration counts recorded); "
                "re-record with max_iterations for replayable truncation"
            )
        if controller_info.get("kind") == "aggregated":
            return SolveBudget(max_iterations=budget["max_iterations"])
        # max_iterations=0 is meaningful: the deadline fired before the
        # first Newton iteration, and the cap reproduces exactly that.
        return SolveBudget(max_iterations=int(recorded["iterations"]))
    if budget.get("max_iterations"):
        return SolveBudget(max_iterations=int(budget["max_iterations"]))
    return None


def _replay_snapshot(system, controller_info: dict, snapshot: dict) -> dict:
    """Re-run one snapshot; returns the replayed (costs, iterations, partial)."""
    from ..aggregate.config import AggregationConfig
    from ..core.regularization import OnlineRegularizedAllocator
    from ..simulation.accounting import AccumulatorState
    from ..simulation.observations import SlotObservation
    from ..simulation.spine import SimulationCheckpoint, SlotStepper
    from ..solvers.registry import get_backend

    backend_name = str(controller_info.get("backend", "auto"))
    try:
        backend = get_backend(backend_name)
    except KeyError:
        raise ValueError(
            f"bundle records backend {backend_name!r}, which is not "
            "registered in this process — replay needs the same solver "
            "registry the incident was recorded under"
        ) from None
    aggregation = controller_info.get("aggregation")
    allocator = OnlineRegularizedAllocator(
        eps1=float(controller_info["eps1"]),
        eps2=float(controller_info["eps2"]),
        tol=float(controller_info["tol"]),
        warm_start=bool(controller_info.get("warm_start", True)),
        backend=backend,
        aggregation=None if aggregation is None else AggregationConfig(**aggregation),
        budget=_replay_budget(controller_info, snapshot),
    )
    accumulator = snapshot["accumulator_state"]
    checkpoint = SimulationCheckpoint(
        next_slot=int(snapshot["next_slot"]),
        controller_state=decode_state(snapshot["controller_state"]),
        accumulator_state=AccumulatorState(
            operation=tuple(float(v) for v in accumulator["operation"]),
            service_quality=tuple(
                float(v) for v in accumulator["service_quality"]
            ),
            reconfiguration=tuple(
                float(v) for v in accumulator["reconfiguration"]
            ),
            migration=tuple(float(v) for v in accumulator["migration"]),
            x_prev=decode_state(accumulator["x_prev"]),
        ),
        residuals=tuple(float(r) for r in snapshot["residuals"]),
    )
    payload = snapshot["observation"]
    observation = SlotObservation(
        slot=int(payload["slot"]),
        op_prices=decode_state(payload["op_prices"]),
        attachment=decode_state(payload["attachment"]),
        access_delay=decode_state(payload["access_delay"]),
    )
    controller = allocator.as_controller(system)
    stepper = SlotStepper(
        controller, system, keep_schedule=False, resume_from=checkpoint
    )
    _, costs = stepper.step(observation)
    iterations, partial = _solver_stats(controller)
    return {
        "costs": {
            "operation": costs.operation,
            "service_quality": costs.service_quality,
            "reconfiguration": costs.reconfiguration,
            "migration": costs.migration,
            "total": costs.total,
        },
        "iterations": iterations,
        "partial": partial,
    }


def replay_bundle(bundle: IncidentBundle | str | Path) -> ReplayReport:
    """Re-run every captured slot; verify the recorded outcome bit-for-bit.

    Each snapshot independently seeds a fresh controller and
    :class:`~repro.simulation.spine.SlotStepper` from its recorded
    pre-slot checkpoint, steps the recorded observation, and compares
    the slot's five cost components, solver iteration count, and partial
    flag with exact equality (floats round-trip bit-exactly through the
    bundle's JSON). Returns a :class:`ReplayReport` whose ``diffs`` name
    every field that failed to reproduce.

    Raises ``ValueError`` for truncated (salvaged) bundles, bundles with
    no recorded system, and non-replayable controllers or snapshots —
    replay refuses to make a bit-identity claim it cannot check.
    """
    if not isinstance(bundle, IncidentBundle):
        bundle = read_bundle(bundle, strict=True)
    if bundle.truncated:
        raise ValueError(
            f"{bundle.path}: refusing to replay a truncated bundle — the "
            "tail was torn off mid-write, so the bit-identity contract "
            "cannot be checked (read_bundle(strict=False) salvages it for "
            "inspection)"
        )
    if bundle.system is None:
        raise ValueError(f"{bundle.path}: bundle recorded no system description")
    controller_info = bundle.controller or {}
    if not controller_info.get("replayable", False):
        raise ValueError(
            f"{bundle.path}: controller "
            f"{controller_info.get('kind', 'unknown')!r} is not replayable"
        )
    if not bundle.snapshots:
        raise ValueError(f"{bundle.path}: bundle holds no snapshots")
    system = _decode_system(bundle.system)
    diffs: list[ReplayDiff] = []
    with flight_session(None):  # replays never re-record
        for snapshot in bundle.snapshots:
            slot = int(snapshot.get("slot", -1))
            if not snapshot.get("replayable", False):
                raise ValueError(
                    f"{bundle.path}: snapshot for slot {slot} is not "
                    f"replayable: {snapshot.get('replay_error', 'unknown state')}"
                )
            recorded = snapshot["recorded"]
            replayed = _replay_snapshot(system, controller_info, snapshot)
            for name in _COST_FIELDS:
                want = float(recorded["costs"][name])
                got = float(replayed["costs"][name])
                if want != got:
                    diffs.append(
                        ReplayDiff(slot, f"costs.{name}", want, got)
                    )
            if int(recorded["iterations"]) != int(replayed["iterations"]):
                diffs.append(
                    ReplayDiff(
                        slot,
                        "iterations",
                        int(recorded["iterations"]),
                        int(replayed["iterations"]),
                    )
                )
            if bool(recorded["partial"]) != bool(replayed["partial"]):
                diffs.append(
                    ReplayDiff(
                        slot,
                        "partial",
                        bool(recorded["partial"]),
                        bool(replayed["partial"]),
                    )
                )
    return ReplayReport(slots=len(bundle.snapshots), diffs=tuple(diffs))
