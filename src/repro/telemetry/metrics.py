"""Metrics primitives: counters, gauges, histograms, and their registry.

The registry is the heart of :mod:`repro.telemetry`: every instrumented
site asks :func:`get_registry` for the active registry and records into it.
By default the active registry is a shared :class:`NullRegistry` whose
every operation is a no-op on a cached singleton, so instrumentation costs
one global read plus an attribute check when telemetry is off — and the
recorded numbers never feed back into any computation, so results are
bit-identical either way (pinned by ``tests/telemetry/test_integration.py``).

Design constraints (docs/OBSERVABILITY.md):

* **dependency-free** — stdlib only, importable from every layer
  (including :mod:`repro.parallel`, a dependency leaf);
* **picklable aggregation** — :meth:`MetricsRegistry.snapshot` returns a
  plain-dict snapshot a process-pool worker can ship home, and
  :meth:`MetricsRegistry.merge_snapshot` folds snapshots in a
  deterministic (caller-chosen) order so parallel and serial sweeps
  aggregate to the same numbers;
* **associative merges** — counters add, histograms merge by
  (count, total, min, max) plus integer sketch-bucket counts, so
  regrouping worker snapshots cannot change the result (property-tested
  in ``tests/telemetry/test_metrics.py``).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # type-only: sinks build on this module
    from .sinks import EventSink

#: Children recorded under one span before further siblings are dropped
#: (long memory-bounded runs would otherwise grow an unbounded trace tree;
#: drops are counted in the ``telemetry.spans.dropped`` counter).
MAX_SPAN_CHILDREN = 4096

#: Lower edge of the histogram percentile sketch: observations at or below
#: this value land in bucket 0 (which also absorbs zeros and negatives).
SKETCH_MIN = 1e-6

#: Upper edge of the sketch; larger observations clamp into the top bucket.
SKETCH_MAX = 1e9

#: Geometric resolution: buckets per decade. 16/decade keeps the relative
#: quantile error under ~7.5% (half a bucket) across the full range while
#: the whole sketch stays under ~250 possible buckets.
SKETCH_BUCKETS_PER_DECADE = 16

#: Log-space width of one sketch bucket.
_BUCKET_WIDTH = math.log(10.0) / SKETCH_BUCKETS_PER_DECADE

#: Index of the last (clamping) bucket.
_MAX_BUCKET = 1 + int(math.ceil(math.log(SKETCH_MAX / SKETCH_MIN) / _BUCKET_WIDTH))


def sketch_bucket(value: float) -> int:
    """The sketch bucket index for one observation.

    Pure function of the value, so bucketing is deterministic across
    processes and merging bucket counts (integer addition) is exactly
    associative — the property the parallel executor relies on.
    """
    if value <= SKETCH_MIN:
        return 0
    index = 1 + int(math.log(value / SKETCH_MIN) / _BUCKET_WIDTH)
    return index if index < _MAX_BUCKET else _MAX_BUCKET


def sketch_upper_edge(index: int) -> float:
    """The largest value landing in sketch bucket ``index``.

    Bucket 0 tops out at :data:`SKETCH_MIN`; the final (clamping) bucket
    absorbs everything above :data:`SKETCH_MAX`, so its edge is ``inf``.
    The OpenMetrics exporter uses these edges as its ``le`` labels.
    """
    if index <= 0:
        return SKETCH_MIN
    if index >= _MAX_BUCKET:
        return float("inf")
    return SKETCH_MIN * math.exp(index * _BUCKET_WIDTH)


class Counter:
    """A monotonically accumulating value (e.g. ``solver.fallbacks``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        """Create the counter at zero."""
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A last-write-wins value (e.g. ``sweep.workers``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        """Create the gauge at zero."""
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A streaming summary of observations: moments plus a quantile sketch.

    Tracks the exact count/total/min/max (which merge exactly) and a
    fixed-bucket geometric sketch (:func:`sketch_bucket`) from which
    p50/p95/p99 are read. Bucket counts are integers and bucket placement
    is a pure function of the value, so merging histograms stays exactly
    associative across workers (property-tested in
    ``tests/telemetry/test_metrics.py``).
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str) -> None:
        """Create an empty histogram."""
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        index = sketch_bucket(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of the recorded observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """The ``q``-quantile (``0 < q <= 1``) read from the sketch.

        Accurate to half a bucket (~±7.5% relative) within the sketch
        range; the result is clamped into ``[min, max]`` so single-bucket
        histograms report exact values. ``None`` when empty.
        """
        if not self.count:
            return None
        rank = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                if index == 0:
                    value = min(self.minimum, SKETCH_MIN)
                else:
                    value = SKETCH_MIN * math.exp((index - 0.5) * _BUCKET_WIDTH)
                return min(max(value, self.minimum), self.maximum)
        return self.maximum

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (or snapshot-equivalent) into this one."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        for index, bucket_count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count

    def as_dict(self) -> dict:
        """Plain-dict form used by snapshots and the manifest."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": dict(self.buckets),
        }


class MetricsRegistry:
    """A live collection of metrics, events, and spans for one session.

    Instrumented code records through :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` / :meth:`event` / :meth:`span`; orchestration code
    reads the aggregate out via :meth:`snapshot` or renders it with
    :meth:`summary_table`. Registries are cheap; the parallel executor
    creates one per sweep cell and merges the snapshots deterministically
    on join.
    """

    #: Class-level flag instrumentation checks before doing optional work.
    enabled = True

    def __init__(
        self,
        *,
        sink: "EventSink | None" = None,
        max_events: int | None = None,
    ) -> None:
        """Create an empty registry.

        Args:
            sink: optional event sink (:mod:`repro.telemetry.sinks`); every
                event is forwarded to it at emission time, *before* any
                in-memory bounding, so a streaming manifest always holds
                the full event stream.
            max_events: bound on the in-memory ``events`` buffer. ``None``
                (the default) keeps every event, preserving the historical
                unbounded-list behavior; ``N`` keeps only the newest ``N``
                (a ring buffer), counting evictions in the
                ``telemetry.events.dropped`` counter; ``0`` keeps nothing
                in memory — the memory-bounded streaming mode.
        """
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be >= 0 or None, got {max_events}")
        self.sink = sink
        self.max_events = max_events
        self.events: "list[dict] | deque[dict]" = (
            [] if max_events is None else deque(maxlen=max_events)
        )
        self.spans: list[dict] = []
        self._span_stack: list[dict] = []
        self._context: dict = {}
        self._run_counter = 0

    # ----- metric accessors ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter registered under ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge registered under ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram registered under ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # ----- events and context -------------------------------------------------

    def event(self, kind: str, **payload) -> None:
        """Append one structured event (a manifest line) tagged with the
        active context; ``kind`` becomes the record's ``"type"`` field.

        With a bounded buffer (``max_events``) the oldest in-memory record
        is evicted (and counted) once the ring is full; a sink attached to
        the registry receives every record regardless of the bound. The
        record is buffered before it is streamed, so a sink that emits
        follow-up events re-entrantly (the watchdog's ``alert`` records)
        keeps stream order and buffer order identical.
        """
        record = {"type": kind, **self._context, **payload}
        self._append_event(record)
        if self.sink is not None:
            self.sink.emit(record)

    def _append_event(self, record: dict) -> None:
        """Buffer one event record, honoring the ``max_events`` bound."""
        cap = self.max_events
        if cap is not None and len(self.events) >= cap:
            self.counter("telemetry.events.dropped").inc()
            if cap == 0:
                return
        self.events.append(record)

    def flush(self) -> None:
        """Flush the attached sink, if any (no-op otherwise)."""
        if self.sink is not None:
            self.sink.flush()

    def maybe_flush(self) -> None:
        """Give the attached sink a chance to flush on its time policy.

        Hot loops (the spine's slot loop) call this once per iteration so
        a time-based flush interval takes effect even when the sink's
        event-count threshold has not been reached.
        """
        if self.sink is not None:
            self.sink.maybe_flush()

    @contextmanager
    def context(self, **tags) -> Iterator[None]:
        """Tag every event/span recorded inside the block with ``tags``.

        Contexts nest: inner tags shadow outer ones for the duration of
        the inner block and are restored on exit.
        """
        if not tags:
            yield
            return
        previous = self._context
        self._context = {**previous, **tags}
        try:
            yield
        finally:
            self._context = previous

    def next_run_id(self) -> int:
        """A registry-unique id for one algorithm run (tags its events)."""
        self._run_counter += 1
        return self._run_counter

    # ----- spans ----------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[dict]:
        """Time a block and record it as a node of the session's trace tree.

        Spans nest: a span opened inside another becomes its child. The
        yielded dict is the live node — callers may add keys to its
        ``"meta"`` entry before the block exits. Each parent keeps at most
        :data:`MAX_SPAN_CHILDREN` children; overflow is dropped and counted
        under ``telemetry.spans.dropped``.
        """
        node: dict = {"name": name, "duration_ms": 0.0, "children": []}
        if meta or self._context:
            node["meta"] = {**self._context, **meta}
        siblings = self._span_stack[-1]["children"] if self._span_stack else self.spans
        if len(siblings) < MAX_SPAN_CHILDREN:
            siblings.append(node)
        else:
            self.counter("telemetry.spans.dropped").inc()
        self._span_stack.append(node)
        start = time.perf_counter()
        try:
            yield node
        finally:
            node["duration_ms"] = (time.perf_counter() - start) * 1000.0
            self._span_stack.pop()

    # ----- aggregation ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, picklable copy of everything recorded so far.

        The shape is the one the manifest stores: ``counters`` and
        ``gauges`` map name -> value, ``histograms`` map name ->
        :meth:`Histogram.as_dict`, ``events`` and ``spans`` are lists.
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.as_dict() for n, h in self._histograms.items()},
            "events": list(self.events),
            "spans": list(self.spans),
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, gauges take the snapshot's value (last write in merge
        order wins), histograms merge their moments and sketch buckets,
        events and spans are appended in order. Merging is associative, so any grouping of
        worker snapshots — as long as the caller fixes the merge *order* —
        produces identical aggregates.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            histogram = self.histogram(name)
            histogram.count += int(data["count"])
            histogram.total += float(data["total"])
            if data["min"] is not None and data["min"] < histogram.minimum:
                histogram.minimum = data["min"]
            if data["max"] is not None and data["max"] > histogram.maximum:
                histogram.maximum = data["max"]
            # JSON round-trips bucket keys as strings; coerce back to int.
            for key, bucket_count in data.get("buckets", {}).items():
                index = int(key)
                histogram.buckets[index] = (
                    histogram.buckets.get(index, 0) + int(bucket_count)
                )
        for record in snap.get("events", ()):
            # Route merged events through the sink too: this is how a
            # parallel sweep's per-worker events stream into a live
            # manifest — in the deterministic merge order.
            if self.sink is not None:
                self.sink.emit(record)
            self._append_event(record)
        self.spans.extend(snap.get("spans", ()))

    def summary_table(self) -> str:
        """Render every metric as an aligned plain-text table, sorted by name."""
        rows: list[tuple[str, str, str]] = []
        for name in sorted(self._counters):
            rows.append((name, "counter", f"{self._counters[name].value:g}"))
        for name in sorted(self._gauges):
            rows.append((name, "gauge", f"{self._gauges[name].value:g}"))
        for name in sorted(self._histograms):
            h = self._histograms[name]
            p50, p95, p99 = (
                h.percentile(0.50) or 0.0,
                h.percentile(0.95) or 0.0,
                h.percentile(0.99) or 0.0,
            )
            rows.append(
                (
                    name,
                    "histogram",
                    f"count={h.count} mean={h.mean:.3f} "
                    f"min={h.minimum if h.count else 0:.3f} "
                    f"max={h.maximum if h.count else 0:.3f} "
                    f"p50={p50:.3f} p95={p95:.3f} p99={p99:.3f}",
                )
            )
        if not rows:
            return "metrics: (none recorded)"
        width_name = max(len(r[0]) for r in rows)
        width_type = max(len(r[1]) for r in rows)
        lines = ["metrics summary", "-" * len("metrics summary")]
        lines += [
            f"{name:<{width_name}}  {kind:<{width_type}}  {value}"
            for name, kind, value in rows
        ]
        return "\n".join(lines)


class _NullCounter(Counter):
    """Counter that discards increments (the disabled-telemetry path)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""


class _NullGauge(Gauge):
    """Gauge that discards writes (the disabled-telemetry path)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the value."""


class _NullHistogram(Histogram):
    """Histogram that discards observations (the disabled-telemetry path)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""


class _NullSpan:
    """A reusable, reentrant no-op context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


class NullRegistry(MetricsRegistry):
    """The disabled registry: every operation is a no-op on a cached singleton.

    This is the default active registry, so instrumented hot paths pay one
    global read plus (at most) a no-op method call per recording site when
    telemetry is off.
    """

    enabled = False

    def __init__(self) -> None:
        """Create the shared no-op instruments."""
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")
        self._null_span = _NullSpan()

    def counter(self, name: str) -> Counter:
        """The shared no-op counter."""
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        """The shared no-op gauge."""
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        """The shared no-op histogram."""
        return self._null_histogram

    def event(self, kind: str, **payload) -> None:
        """Discard the event."""

    def context(self, **tags) -> "_NullSpan":  # type: ignore[override]
        """A no-op context block."""
        return self._null_span

    def span(self, name: str, **meta) -> "_NullSpan":  # type: ignore[override]
        """A no-op span block."""
        return self._null_span

    def next_run_id(self) -> int:
        """Run ids are meaningless when disabled; always 0."""
        return 0


#: The process-wide disabled registry (the default active registry).
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY

#: Per-thread registry overrides. The batched sweep runner executes many
#: cells concurrently on threads of one process; each cell must record into
#: its own fresh registry (exactly as the process-pool path gives every cell
#: a fresh worker-side registry), so a thread-local override shadows the
#: process-wide active registry when set. The common single-threaded paths
#: never set it, paying only one ``getattr`` per :func:`get_registry` call.
_thread_override = threading.local()


def get_registry() -> MetricsRegistry:
    """The currently active registry (the shared null registry by default).

    A thread-local override installed by :func:`thread_registry` wins over
    the process-wide registry; without one, every thread sees the registry
    installed by :func:`set_registry`.
    """
    override = getattr(_thread_override, "registry", None)
    return override if override is not None else _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous registry."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def thread_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Activate ``registry`` for the current thread only, for one block.

    Other threads (and code outside the block on this thread) keep seeing
    the process-wide registry. Overrides nest per thread; the previous
    override is restored on exit.
    """
    previous = getattr(_thread_override, "registry", None)
    _thread_override.registry = registry
    try:
        yield registry
    finally:
        _thread_override.registry = previous


def telemetry_enabled() -> bool:
    """Whether the active registry records anything."""
    return get_registry().enabled


@contextmanager
def telemetry_session(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Activate a (fresh or supplied) registry for the duration of a block.

    The previously active registry is restored on exit, so sessions nest
    and test isolation is automatic::

        with telemetry_session() as registry:
            run_fig2(scale)
        print(registry.summary_table())
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def span(name: str, **meta):
    """Open a span on the active registry (module-level convenience)."""
    return get_registry().span(name, **meta)
