"""Exporters: span trees to Chrome ``trace_event`` JSON, metrics to OpenMetrics.

Two read-side bridges from the repo's own telemetry shapes to standard
tooling, both pure functions of recorded data:

* :func:`chrome_trace` / :func:`write_chrome_trace` — convert span trees
  (``{"name", "duration_ms", "children", "meta"?}`` dicts) into the
  Trace Event Format's JSON-object form (``{"traceEvents": [...]}``)
  loadable in ``chrome://tracing`` or Perfetto. Spans record durations,
  not absolute timestamps, so each tree is laid out sequentially: a
  node's children start at its own start and follow one another
  back-to-back. Every root tree gets its own ``tid`` lane, which renders
  a merged parallel sweep as one thread per cell.
* :func:`openmetrics` / :func:`write_openmetrics` — render a metrics
  snapshot (live registry, ``RunRecord``, or plain snapshot dict) as an
  OpenMetrics/Prometheus text exposition: counters as ``_total``
  samples, gauges verbatim, histograms as cumulative ``le`` buckets
  (edges from the registry's log-scale sketch,
  :func:`repro.telemetry.metrics.sketch_upper_edge`) plus ``_sum`` and
  ``_count``. Suitable for the Prometheus node-exporter textfile
  collector.

Both accept the shapes found in a run manifest, so `repro-edge export`
can produce traces and metric snapshots from any archived ``.jsonl``.
:class:`MetricsEndpoint` is the *live* form of the OpenMetrics bridge:
an asyncio HTTP listener that renders the active registry on every
``GET /metrics``, so a running ``repro-edge serve`` is scrapeable by a
stock Prometheus without any textfile-collector hop (docs/SERVING.md).
"""

from __future__ import annotations

import asyncio
import json
import re
from pathlib import Path

from .manifest import RunRecord, _jsonify
from .metrics import MetricsRegistry, get_registry, sketch_upper_edge

#: Characters allowed in an OpenMetrics metric name (everything else
#: becomes ``_``).
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix stamped on every exported metric name.
OPENMETRICS_PREFIX = "repro_"


# ----- Chrome trace_event ------------------------------------------------------


def chrome_trace(spans, *, pid: int = 0) -> dict:
    """Convert span trees to the Trace Event Format JSON-object form.

    Args:
        spans: root span nodes (``registry.spans`` or a manifest's
            ``spans`` record).
        pid: the ``pid`` stamped on every event (nodes whose meta carries
            an integer ``"pid"`` keep their own in linked mode).

    Returns:
        ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` where each
        event is a complete (``"ph": "X"``) event with microsecond ``ts``
        and ``dur``. Each root tree occupies its own ``tid`` lane and
        starts at ``ts = 0``; children are laid out sequentially from
        their parent's start (real inter-child gaps are not recorded by
        the span tree, so self-time shows at the tail of each parent).

    When any span's meta carries distributed-trace ids (``span_id`` /
    ``parent_span_id`` from :mod:`repro.telemetry.tracing`), the export
    switches to **linked mode**: merged forests are re-parented across
    process boundaries. A root whose ``parent_span_id`` resolves to
    another exported span is *adopted* — laid out starting at its
    parent's start time, in its own ``tid`` lane of its own ``pid`` (meta
    ``"pid"`` when present) — so one traced run renders as one connected
    tree per ``trace_id``. Every event's ``args`` then carries a
    resolvable ``span_id``/``parent_span_id`` pair (synthetic ids are
    minted for untraced interior spans), and ``"ph": "M"`` metadata
    events name every process and thread lane. Forests with no trace
    meta export exactly as before — linked mode never changes untraced
    output.
    """
    spans = list(spans)
    if _has_trace_meta(spans):
        return _linked_trace(spans, default_pid=pid)
    events: list[dict] = []
    for tid, root in enumerate(spans):
        _layout(root, 0.0, tid, pid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _layout(
    node: dict, start_us: float, tid: int, pid: int, out: list[dict]
) -> None:
    """Append one node's complete event and lay its children end to end."""
    duration_us = float(node.get("duration_ms", 0.0)) * 1000.0
    event = {
        "name": str(node.get("name", "?")),
        "cat": "repro",
        "ph": "X",
        "ts": round(start_us, 3),
        "dur": round(duration_us, 3),
        "pid": pid,
        "tid": tid,
    }
    meta = node.get("meta")
    if meta:
        event["args"] = {str(key): value for key, value in meta.items()}
    out.append(event)
    cursor = start_us
    for child in node.get("children", ()):
        _layout(child, cursor, tid, pid, out)
        cursor += float(child.get("duration_ms", 0.0)) * 1000.0


def _iter_nodes(node: dict):
    """Yield ``node`` and every descendant, depth first."""
    yield node
    for child in node.get("children", ()):
        yield from _iter_nodes(child)


def _has_trace_meta(spans) -> bool:
    """Whether any span in the forest carries distributed-trace ids."""
    for root in spans:
        for node in _iter_nodes(root):
            meta = node.get("meta")
            if meta and ("span_id" in meta or "parent_span_id" in meta):
                return True
    return False


def _linked_trace(spans, *, default_pid: int) -> dict:
    """Linked-mode export: resolve cross-process parent links.

    Three passes: (1) give every node a span id — its explicit meta
    ``span_id`` when unique, else a synthetic ``autoN`` — and index the
    forest by id; (2) partition roots into *primary* (no resolvable
    ``parent_span_id``) and *adopted* (their parent is another exported
    span — the cross-process link the in-memory tree could not record);
    (3) lay out primary roots at ``ts = 0`` and adopted roots at their
    parent's realized start, chasing chains of adoption to a fixpoint.
    Unresolvable chains degrade to primary lanes rather than being
    dropped.
    """
    ids: dict[int, str] = {}  # id(node) -> assigned span id
    index: dict[str, dict] = {}  # span id -> node
    counter = 0
    for root in spans:
        for node in _iter_nodes(root):
            meta = node.get("meta") or {}
            sid = meta.get("span_id")
            if not isinstance(sid, str) or not sid or sid in index:
                counter += 1
                sid = f"auto{counter}"
            ids[id(node)] = sid
            index[sid] = node

    adopted: dict[int, dict] = {}  # id(root) -> parent node
    primary: list[dict] = []
    for root in spans:
        meta = root.get("meta") or {}
        parent_sid = meta.get("parent_span_id")
        parent = index.get(parent_sid) if isinstance(parent_sid, str) else None
        if parent is not None and parent is not root:
            adopted[id(root)] = parent
        else:
            primary.append(root)

    events: list[dict] = []
    lanes: dict[int, int] = {}  # pid -> number of tid lanes allocated
    lane_names: dict[tuple[int, int], str] = {}
    starts: dict[int, float] = {}  # id(node) -> layout start (us)

    def node_pid(node: dict) -> int:
        value = (node.get("meta") or {}).get("pid")
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        return default_pid

    def lay(node, start_us, tid, pid, tree_parent_sid) -> None:
        starts[id(node)] = start_us
        duration_us = float(node.get("duration_ms", 0.0)) * 1000.0
        meta = node.get("meta") or {}
        sid = ids[id(node)]
        parent_sid = meta.get("parent_span_id")
        if not isinstance(parent_sid, str) or not parent_sid:
            parent_sid = tree_parent_sid
        args = {str(key): value for key, value in meta.items()}
        args["span_id"] = sid
        if parent_sid is not None:
            args["parent_span_id"] = parent_sid
        events.append(
            {
                "name": str(node.get("name", "?")),
                "cat": "repro",
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(duration_us, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        cursor = start_us
        for child in node.get("children", ()):
            lay(child, cursor, tid, pid, sid)
            cursor += float(child.get("duration_ms", 0.0)) * 1000.0

    def lay_root(root, start_us) -> None:
        pid = node_pid(root)
        tid = lanes.get(pid, 0)
        lanes[pid] = tid + 1
        lane_names[(pid, tid)] = str(root.get("name", "?"))
        lay(root, start_us, tid, pid, None)

    for root in primary:
        lay_root(root, 0.0)
    pending = [root for root in spans if id(root) in adopted]
    while pending:
        placed: set[int] = set()
        for root in pending:
            parent = adopted[id(root)]
            if id(parent) in starts:
                lay_root(root, starts[id(parent)])
                placed.add(id(root))
        if not placed:
            for root in pending:  # circular or half-merged chain
                lay_root(root, 0.0)
            break
        pending = [root for root in pending if id(root) not in placed]

    meta_events: list[dict] = []
    for pid in sorted(lanes):
        label = "repro" if pid == default_pid else f"worker {pid}"
        meta_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for tid in range(lanes[pid]):
            meta_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane_names[(pid, tid)]},
                }
            )
    return {"traceEvents": meta_events + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, spans, *, pid: int = 0) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, pid=pid), handle, default=_jsonify)
        handle.write("\n")
    return path


# ----- OpenMetrics / Prometheus text exposition --------------------------------


def _metric_name(name: str) -> str:
    """Sanitize a dotted metric name into an OpenMetrics identifier."""
    return OPENMETRICS_PREFIX + _NAME_OK.sub("_", name)


def _coerce_snapshot(source) -> tuple[dict, dict, dict]:
    """Counters/gauges/histograms from a registry, record, or snapshot."""
    if isinstance(source, MetricsRegistry):
        snap = source.snapshot()
        return snap["counters"], snap["gauges"], snap["histograms"]
    if isinstance(source, RunRecord):
        return source.counters, source.gauges, source.histograms
    if isinstance(source, dict):
        return (
            source.get("counters", {}),
            source.get("gauges", {}),
            source.get("histograms", {}),
        )
    raise TypeError(
        f"cannot read metrics from {type(source).__name__}; expected a "
        "MetricsRegistry, RunRecord, or snapshot dict"
    )


def _format_value(value: float) -> str:
    """Render one sample value (OpenMetrics accepts float syntax)."""
    return f"{float(value):g}"


def _le_label(edge: float) -> str:
    """Render one ``le`` bucket label (``+Inf`` for the clamping bucket)."""
    return "+Inf" if edge == float("inf") else f"{edge:g}"


def openmetrics(source) -> str:
    """Render a metrics snapshot as OpenMetrics text exposition format.

    Args:
        source: a live :class:`~repro.telemetry.metrics.MetricsRegistry`,
            a loaded :class:`~repro.telemetry.manifest.RunRecord`, or a
            plain ``snapshot()``-shaped dict.

    Returns:
        The exposition text: ``# TYPE`` metadata per family, samples
        sorted by name, terminated by ``# EOF``. Counter samples carry
        the ``_total`` suffix; histograms expose cumulative ``le``
        buckets (sketch edges) plus ``_sum``/``_count``.
    """
    counters, gauges, histograms = _coerce_snapshot(source)
    lines: list[str] = []
    for name in sorted(counters):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(counters[name])}")
    for name in sorted(gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    for name in sorted(histograms):
        data = histograms[name]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        count = int(data.get("count", 0))
        # JSON round-trips bucket keys as strings; coerce and cumulate.
        buckets = sorted(
            (int(index), int(n)) for index, n in (data.get("buckets") or {}).items()
        )
        cumulative = 0
        for index, bucket_count in buckets:
            edge = sketch_upper_edge(index)
            if edge == float("inf"):
                break  # the clamping bucket is the +Inf line below
            cumulative += bucket_count
            lines.append(f'{metric}_bucket{{le="{_le_label(edge)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {_format_value(data.get('total', 0.0))}")
        lines.append(f"{metric}_count {count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class MetricsEndpoint:
    """A live ``/metrics`` endpoint over the telemetry registry.

    A deliberately tiny HTTP/1.0-style responder (no framework, no
    keep-alive): each connection reads one request, answers, closes.
    ``GET /metrics`` renders :func:`openmetrics` over the resolved
    source *at request time*, so scrapes always see current counters.

    Attributes:
        source: what to render — a registry/record/snapshot, a zero-arg
            callable returning one, or ``None`` to use the *active*
            registry (:func:`~repro.telemetry.metrics.get_registry`) at
            each request. A disabled (null) active registry renders an
            empty, valid exposition rather than failing the scrape.
        host: listen address.
        port: listen port (0 = pick a free one; read back after start).
    """

    def __init__(
        self, source=None, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.source = source
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the realized port after."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _render(self) -> str:
        source = self.source
        if callable(source):
            source = source()
        if source is None:
            source = get_registry()
        if not isinstance(source, (MetricsRegistry, RunRecord, dict)):
            # Null registry (telemetry off): an empty but valid exposition.
            source = {"counters": {}, "gauges": {}, "histograms": {}}
        return openmetrics(source)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            while True:  # drain headers up to the blank line
                header = await reader.readline()
                if header in (b"", b"\r\n", b"\n"):
                    break
            parts = request.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else ""
            if method != "GET":
                status, body = "405 Method Not Allowed", "method not allowed\n"
            elif path.split("?")[0] != "/metrics":
                status, body = "404 Not Found", "try GET /metrics\n"
            else:
                status, body = "200 OK", self._render()
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            writer.write(payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # close() without wait_closed(): awaiting it in a handler races
            # loop shutdown (handlers are cancelled mid-await).
            writer.close()


def write_openmetrics(path: str | Path, source) -> Path:
    """Write :func:`openmetrics` output to ``path``; returns the path.

    The atomic-rename dance is deliberately omitted: the intended use is
    the Prometheus textfile collector, which tolerates torn reads by
    design, and single-shot snapshots from the CLI.
    """
    path = Path(path)
    path.write_text(openmetrics(source), encoding="utf-8")
    return path
