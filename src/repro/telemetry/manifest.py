"""JSON-lines run manifests: persist one session's telemetry to a file.

A manifest is an append-friendly ``.jsonl`` file: one JSON object per
line, each carrying a ``"type"`` field. The layout (see
docs/OBSERVABILITY.md for the full schema):

1. ``manifest_start`` — format tag, creation time, and the run config;
2. the session's events in recorded order — ``slot`` lines (one per
   accounted slot, with the four unweighted cost components and the
   weighted total), ``run_end`` lines (one per algorithm run, with the
   final cost breakdown totals), plus any ad-hoc events (e.g.
   ``solver.fallback``);
3. ``metrics`` — the registry's counters/gauges/histograms snapshot;
4. ``spans`` — the session's trace trees;
5. ``manifest_end`` — an event count, as a truncation check.

:func:`read_manifest` loads a manifest back into a :class:`RunRecord`;
:mod:`repro.analysis.manifests` builds cost-consistency checks on top.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from .environment import environment_fingerprint
from .metrics import MetricsRegistry

#: Format tag written into every manifest (bump on breaking change).
MANIFEST_FORMAT = "repro.telemetry/1"


def _jsonify(value):
    """JSON fallback for numpy scalars/arrays and other non-native values."""
    if hasattr(value, "tolist"):  # numpy scalar or array, any shape
        return value.tolist()
    return str(value)


@dataclass(frozen=True)
class RunRecord:
    """An in-memory manifest: config, events, metrics, and spans.

    Attributes:
        config: the run configuration written at ``manifest_start``.
        environment: the writing process's environment fingerprint
            (python/numpy/scipy/BLAS versions, ``REPRO_*`` flags — see
            :func:`repro.telemetry.environment.environment_fingerprint`),
            also from ``manifest_start``; empty for pre-fingerprint files.
        events: every event line in file order (each a dict with ``type``).
        counters: metric name -> accumulated value.
        gauges: metric name -> last value.
        histograms: metric name -> ``{count, total, min, max, mean}``.
        spans: root nodes of the session's trace trees.
        created_unix: manifest creation time (seconds since the epoch).
        truncated: the file ended before a consistent ``manifest_end``
            (only ever ``True`` for non-strict loads).
    """

    config: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    created_unix: float = 0.0
    truncated: bool = False

    def events_of_type(self, kind: str) -> list[dict]:
        """Every event whose ``"type"`` equals ``kind``, in file order."""
        return [event for event in self.events if event.get("type") == kind]

    @property
    def slot_events(self) -> list[dict]:
        """The per-slot cost events (``type == "slot"``)."""
        return self.events_of_type("slot")

    @property
    def run_ends(self) -> list[dict]:
        """The per-run summary events (``type == "run_end"``)."""
        return self.events_of_type("run_end")


def write_manifest(
    path: str | Path,
    registry: MetricsRegistry,
    *,
    config: dict | None = None,
) -> Path:
    """Write one session's telemetry as a JSON-lines manifest.

    Args:
        path: destination file (created or truncated).
        registry: the session registry to persist (typically the one a
            :func:`repro.telemetry.telemetry_session` yielded).
        config: arbitrary JSON-able run configuration stored in the
            ``manifest_start`` line (CLI args, scenario parameters, ...).

    Returns:
        The path written.
    """
    path = Path(path)
    snap = registry.snapshot()
    with path.open("w", encoding="utf-8") as handle:

        def emit(record: dict) -> None:
            handle.write(json.dumps(record, default=_jsonify) + "\n")

        emit(
            {
                "type": "manifest_start",
                "format": MANIFEST_FORMAT,
                "created_unix": time.time(),
                "config": config or {},
                "environment": environment_fingerprint(),
            }
        )
        for event in snap["events"]:
            emit(event)
        emit(
            {
                "type": "metrics",
                "counters": snap["counters"],
                "gauges": snap["gauges"],
                "histograms": snap["histograms"],
            }
        )
        emit({"type": "spans", "spans": snap["spans"]})
        emit({"type": "manifest_end", "events": len(snap["events"])})
    return path


def read_manifest(path: str | Path, *, strict: bool = True) -> RunRecord:
    """Load a manifest written by :func:`write_manifest`.

    Raises ``ValueError`` on an unknown format tag or a truncated file
    (missing or inconsistent ``manifest_end``). With ``strict=False``
    truncation is tolerated instead: a torn trailing line is dropped, every
    complete record before it is kept, and the returned record carries
    ``truncated=True`` — for post-mortem tooling (``repro-edge doctor``)
    that must read the manifests of crashed or killed runs.
    """
    path = Path(path)
    config: dict = {}
    environment: dict = {}
    created = 0.0
    events: list[dict] = []
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    spans: list = []
    ended = False
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if strict:
                    raise ValueError(
                        f"{path}: unparseable manifest line {line_number}"
                    ) from None
                break  # torn tail of an interrupted write
            kind = record.get("type")
            if kind == "manifest_start":
                if record.get("format") != MANIFEST_FORMAT:
                    raise ValueError(
                        f"{path}: unknown manifest format {record.get('format')!r}"
                    )
                config = record.get("config", {})
                environment = record.get("environment", {})
                created = float(record.get("created_unix", 0.0))
            elif kind == "metrics":
                counters = record.get("counters", {})
                gauges = record.get("gauges", {})
                histograms = record.get("histograms", {})
            elif kind == "spans":
                spans = record.get("spans", [])
            elif kind == "manifest_end":
                ended = True
                if int(record.get("events", -1)) != len(events):
                    raise ValueError(
                        f"{path}: manifest_end reports {record.get('events')} "
                        f"events, file holds {len(events)} (line {line_number})"
                    )
            else:
                events.append(record)
    if not ended and strict:
        raise ValueError(f"{path}: truncated manifest (no manifest_end record)")
    return RunRecord(
        config=config,
        environment=environment,
        events=events,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        spans=spans,
        created_unix=created,
        truncated=not ended,
    )
