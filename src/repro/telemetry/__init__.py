"""Lightweight, dependency-free observability for the whole system.

Three pieces (docs/OBSERVABILITY.md):

* :class:`MetricsRegistry` — counters, gauges, and histograms keyed by
  dotted names (``solver.ipm.iterations``, ``slot.wall_ms``, ...), plus
  structured events and nestable timing :meth:`~MetricsRegistry.span`
  contexts that record a trace tree per session;
* a global **active registry** (:func:`get_registry`), a
  :class:`NullRegistry` by default so instrumentation is near-free when
  telemetry is off, switched on with :func:`telemetry_session`;
* JSON-lines **run manifests** (:func:`write_manifest` /
  :func:`read_manifest` / :class:`RunRecord`) capturing config, per-slot
  cost events, and final cost breakdowns for later analysis
  (:mod:`repro.analysis.manifests`).

Enabling telemetry never changes results: instrumented code only *reads*
the quantities it reports, and the bit-identity is pinned by
``tests/telemetry/test_integration.py``. The parallel executor gives each
sweep cell a fresh registry and merges the per-worker snapshots
deterministically on join, so metric aggregates are identical at any
worker count.
"""

from .manifest import MANIFEST_FORMAT, RunRecord, read_manifest, write_manifest
from .metrics import (
    MAX_SPAN_CHILDREN,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    span,
    telemetry_enabled,
    telemetry_session,
)
from .spans import render_spans, span_durations, walk_spans

__all__ = [
    "MANIFEST_FORMAT",
    "MAX_SPAN_CHILDREN",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "RunRecord",
    "get_registry",
    "read_manifest",
    "render_spans",
    "set_registry",
    "span",
    "span_durations",
    "telemetry_enabled",
    "telemetry_session",
    "walk_spans",
    "write_manifest",
]
