"""Lightweight, dependency-free observability for the whole system.

The pieces (docs/OBSERVABILITY.md):

* :class:`MetricsRegistry` — counters, gauges, and histograms keyed by
  dotted names (``solver.ipm.iterations``, ``slot.wall_ms``, ...), plus
  structured events and nestable timing :meth:`~MetricsRegistry.span`
  contexts that record a trace tree per session;
* a global **active registry** (:func:`get_registry`), a
  :class:`NullRegistry` by default so instrumentation is near-free when
  telemetry is off, switched on with :func:`telemetry_session`;
* JSON-lines **run manifests** (:func:`write_manifest` /
  :func:`read_manifest` / :class:`RunRecord`) capturing config, per-slot
  cost events, and final cost breakdowns for later analysis
  (:mod:`repro.analysis.manifests`);
* **event sinks** (:mod:`repro.telemetry.sinks`) — most importantly the
  :class:`StreamingManifestWriter`, which appends the manifest
  incrementally so a live run is observable and memory-bounded
  (:func:`streaming_manifest_session` wires it up in one call);
* **exporters** (:mod:`repro.telemetry.exporters`) — span trees to
  Chrome ``trace_event`` JSON, metric snapshots to OpenMetrics text;
* the **watchdog** (:mod:`repro.telemetry.watchdog`) — declarative rules
  (solver stall, fallback storm, certificate gap, ratio over bound)
  evaluated over the live event stream, alerts emitted back into it;
* the **watch view** (:mod:`repro.telemetry.watch`) — tail a streaming
  manifest and render a refreshing dashboard (``repro-edge watch``);
* **tracing** (:mod:`repro.telemetry.tracing`) — ``TraceContext``
  propagation across process/thread/wire boundaries so merged span
  forests render as one connected tree per run or request;
* **profiling** (:mod:`repro.telemetry.profiling`) — deterministic phase
  timers plus a ``sys._current_frames()`` sampling profiler, folded-stack
  output exportable to speedscope/collapsed formats;
* the **flight recorder** (:mod:`repro.telemetry.flight`) — a bounded
  ring of replayable slot snapshots dumped as ``repro.incident/1``
  bundles on watchdog alerts, with bit-for-bit offline replay
  (``repro-edge incident replay``);
* **SLO objectives** (:mod:`repro.telemetry.slo`) — declarative error
  budgets (deadline-miss ratio, latency, fallback rate, ratio vs the
  Theorem 2 bound) with fast/slow burn-rate alerting;
* the **environment fingerprint** (:mod:`repro.telemetry.environment`) —
  python/numpy/scipy/BLAS versions and ``REPRO_*`` flags stamped into
  every manifest and incident bundle.

Enabling telemetry never changes results: instrumented code only *reads*
the quantities it reports, and the bit-identity is pinned by
``tests/telemetry/test_integration.py``. The parallel executor gives each
sweep cell a fresh registry and merges the per-worker snapshots
deterministically on join, so metric aggregates are identical at any
worker count.
"""

from .exporters import (
    MetricsEndpoint,
    chrome_trace,
    openmetrics,
    write_chrome_trace,
    write_openmetrics,
)
from .environment import environment_fingerprint
from .flight import (
    INCIDENT_FORMAT,
    FlightRecorder,
    FlightRecorderSink,
    IncidentBundle,
    ReplayDiff,
    ReplayReport,
    SlotSnapshot,
    active_recorder,
    flight_session,
    read_bundle,
    replay_bundle,
)
from .manifest import MANIFEST_FORMAT, RunRecord, read_manifest, write_manifest
from .metrics import (
    MAX_SPAN_CHILDREN,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    sketch_upper_edge,
    span,
    telemetry_enabled,
    telemetry_session,
    thread_registry,
)
from .profiling import (
    PhaseAccumulator,
    ProfileHandle,
    SamplingProfiler,
    active_profile,
    merge_folded,
    phase,
    profiling_session,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)
from .sinks import (
    EventSink,
    NullSink,
    RingSink,
    StreamingManifestWriter,
    streaming_manifest_session,
)
from .slo import SLO_SIGNALS, SloObjective, SloTracker, default_slos
from .tracing import (
    TraceContext,
    current_trace,
    new_trace,
    trace_scope,
    trace_span,
    traced_root,
)
from .spans import render_spans, span_durations, walk_spans
from .watch import ManifestTail, WatchState, watch
from .watchdog import (
    Alert,
    CertificateGapRule,
    DeadlineMissRule,
    FallbackStormRule,
    RatioBoundRule,
    SolverStallRule,
    Watchdog,
    WatchdogRule,
    WatchdogSink,
    default_rules,
)

__all__ = [
    "INCIDENT_FORMAT",
    "MANIFEST_FORMAT",
    "MAX_SPAN_CHILDREN",
    "NULL_REGISTRY",
    "SLO_SIGNALS",
    "Alert",
    "CertificateGapRule",
    "Counter",
    "DeadlineMissRule",
    "EventSink",
    "FallbackStormRule",
    "FlightRecorder",
    "FlightRecorderSink",
    "Gauge",
    "Histogram",
    "IncidentBundle",
    "ManifestTail",
    "MetricsEndpoint",
    "MetricsRegistry",
    "NullRegistry",
    "NullSink",
    "PhaseAccumulator",
    "ProfileHandle",
    "RatioBoundRule",
    "ReplayDiff",
    "ReplayReport",
    "RingSink",
    "RunRecord",
    "SamplingProfiler",
    "SloObjective",
    "SloTracker",
    "SlotSnapshot",
    "SolverStallRule",
    "StreamingManifestWriter",
    "TraceContext",
    "Watchdog",
    "WatchdogRule",
    "WatchdogSink",
    "WatchState",
    "active_profile",
    "active_recorder",
    "chrome_trace",
    "current_trace",
    "default_rules",
    "default_slos",
    "environment_fingerprint",
    "flight_session",
    "get_registry",
    "merge_folded",
    "new_trace",
    "openmetrics",
    "phase",
    "profiling_session",
    "read_bundle",
    "read_manifest",
    "render_spans",
    "replay_bundle",
    "set_registry",
    "sketch_upper_edge",
    "span",
    "span_durations",
    "speedscope_document",
    "streaming_manifest_session",
    "telemetry_enabled",
    "telemetry_session",
    "thread_registry",
    "trace_scope",
    "trace_span",
    "traced_root",
    "walk_spans",
    "watch",
    "write_chrome_trace",
    "write_collapsed",
    "write_manifest",
    "write_openmetrics",
    "write_speedscope",
]
