"""Distributed trace contexts that flow through every execution boundary.

A :class:`TraceContext` is the (trace_id, span_id, parent_span_id) triple
familiar from W3C Trace Context / OpenTelemetry, shrunk to what this
system actually needs: stitch the per-process span forests that
``merge_snapshot`` produces back into **one causal tree per run or
request**. The propagation rules (docs/OBSERVABILITY.md §11):

* the CLI opens a **root context** (:func:`traced_root`) when
  ``--trace-context`` is passed — one trace per invocation;
* :class:`~repro.parallel.executor.SweepExecutor` mints one **child
  context per cell at the dispatch site** and ships it with the work item
  (pickled pool and shared-memory skeleton alike: a context is a tiny
  frozen dataclass of strings, so it rides the pickle skeleton without
  touching the array arena). The worker activates it for the duration of
  the cell, and at merge time the parent stamps the same ids onto the
  wrapped ``"cell"`` span root — both sides agree without shipping ids
  back through the result pipe;
* :class:`~repro.solvers.batched.BatchCoordinator` captures
  :func:`current_trace` at ``submit()`` so each lane's deferred telemetry
  (emitted later, possibly from another thread) carries its *originating*
  context, not the flusher's;
* the service protocol carries the context as an optional ``"trace"``
  field on ``update`` messages (:func:`TraceContext.to_wire` /
  :func:`TraceContext.from_wire`), and every ``slot_result`` echoes the
  request's ``trace_id`` — a client update → solve → reply round-trip is
  one connected trace even across the TCP boundary.

**Zero overhead / bit identity when off.** The active context lives in a
thread-local; with no context set, :func:`trace_span` delegates to the
plain ``registry.span`` call with unchanged metadata, so manifests are
byte-identical to a build without this module. Tracing never changes
computed results either way — contexts are carried, never consulted.

Span connectivity contract (consumed by
:func:`repro.telemetry.exporters.chrome_trace`): a span whose meta
carries ``span_id`` may be referenced as ``parent_span_id`` by spans in
*other* snapshots; children inside one tree need no explicit ids because
tree structure already links them.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from .metrics import get_registry

__all__ = [
    "TraceContext",
    "current_trace",
    "new_trace",
    "trace_scope",
    "trace_span",
    "traced_root",
]


def _new_id() -> str:
    """A fresh 64-bit hex span/trace id component."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """One node's identity in a distributed trace.

    Attributes:
        trace_id: shared by every span of one run/request tree.
        span_id: this context's own id — children reference it.
        parent_span_id: the id of the context this one was forked from,
            or ``None`` for a trace root.
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None = None

    def child(self) -> "TraceContext":
        """Fork a context for a sub-unit of work (cell, lane, request)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_span_id=self.span_id,
        )

    def as_meta(self) -> dict[str, str]:
        """Span-meta fields that make this span linkable across snapshots."""
        meta = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id is not None:
            meta["parent_span_id"] = self.parent_span_id
        return meta

    def to_wire(self) -> dict[str, str]:
        """JSON-safe form for protocol messages (``"trace"`` field)."""
        return self.as_meta()

    @classmethod
    def from_wire(cls, payload: Any) -> "TraceContext | None":
        """Parse a wire ``"trace"`` field; malformed shapes become ``None``.

        Lenient by design: tracing is observability, so a client sending a
        bad context degrades to an untraced request instead of an error.
        """
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        parent = payload.get("parent_span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if parent is not None and not isinstance(parent, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id, parent_span_id=parent)


def new_trace() -> TraceContext:
    """Mint a fresh root context (no parent)."""
    return TraceContext(trace_id=_new_id(), span_id=_new_id())


_active = threading.local()


def current_trace() -> TraceContext | None:
    """The context active on this thread, or ``None`` (tracing off)."""
    return getattr(_active, "context", None)


@contextmanager
def trace_scope(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Activate ``context`` on this thread for the duration of the block.

    ``None`` is accepted and deactivates tracing inside the block, which
    lets call sites pass an optional context through unconditionally.
    """
    previous = current_trace()
    _active.context = context
    try:
        yield context
    finally:
        _active.context = previous


@contextmanager
def trace_span(name: str, **meta: Any) -> Iterator[Any]:
    """A registry span that is trace-linked when a context is active.

    With no active context this is *exactly* ``registry.span(name,
    **meta)`` — same record, byte-identical manifests. With one, a child
    context is forked, its ids are stamped into the span meta, and it
    becomes the active context inside the block (so nested trace_spans
    and :func:`current_trace` captures chain correctly).
    """
    registry = get_registry()
    context = current_trace()
    if context is None:
        with registry.span(name, **meta) as node:
            yield node
        return
    child = context.child()
    with trace_scope(child):
        with registry.span(name, **{**meta, **child.as_meta()}) as node:
            yield node


@contextmanager
def traced_root(name: str, **meta: Any) -> Iterator[Any]:
    """Open a trace: a fresh root context plus its root span.

    The root span carries the context's ``span_id`` (and no parent), so
    every descendant minted inside the block resolves up to it. Used by
    the CLI's ``--trace-context`` flag around the whole command.
    """
    root = new_trace()
    registry = get_registry()
    with trace_scope(root):
        with registry.span(name, **{**meta, **root.as_meta()}) as node:
            yield node
