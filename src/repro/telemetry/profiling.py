"""Continuous profiling: deterministic phase timers + a sampling profiler.

Two complementary instruments, both off by default and both observe-only
(they read clocks and stack frames, never touch computed values — costs
are bit-identical with profiling on or off):

* **Phase timers** — ``with phase("ipm.assemble"): ...`` around the named
  stages of the hot path. When no profile is active, :func:`phase`
  returns a shared no-op context manager (the NullRegistry trick), so
  instrumented code pays one module-global read per block and nothing
  else. When active, elapsed milliseconds accumulate per phase into the
  :class:`PhaseAccumulator` — per *thread* internally, so concurrent
  batched cells don't bleed into each other's per-slot attribution.
  The phase catalog lives in docs/OBSERVABILITY.md §12: ``ipm.assemble``,
  ``ipm.factorize_smw``, ``ipm.line_search``, ``ipm.convergence_check``
  for the barrier solver; ``spine.start``, ``spine.account``,
  ``spine.checkpoint`` for the slot body; ``spine.unattributed`` is the
  per-slot remainder (slot wall minus attributed phases) so the per-slot
  sums in ``prof.phases`` events always reconcile with ``slot.wall_ms``.

* **Sampling profiler** — a daemon thread polling
  ``sys._current_frames()`` at a configurable rate (default
  :data:`DEFAULT_HZ` = 19 Hz, deliberately co-prime with common periodic
  work so samples don't alias onto slot boundaries). Each observation
  folds into a ``"frame;frame;frame" -> count`` dict — the classic
  collapsed-stack form, which merges associatively across workers and
  runs by plain addition (:func:`merge_folded`).

Both emit ``prof.profile`` manifest events at session exit and export to
speedscope JSON (:func:`speedscope_document` / :func:`write_speedscope`)
or Brendan-Gregg collapsed text (:func:`write_collapsed`) via
``repro-edge profile RUN_CMD...`` and ``repro-edge export --speedscope``.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from .metrics import get_registry

__all__ = [
    "DEFAULT_HZ",
    "PhaseAccumulator",
    "ProfileHandle",
    "SamplingProfiler",
    "active_profile",
    "merge_folded",
    "phase",
    "profiling_session",
    "speedscope_document",
    "write_collapsed",
    "write_speedscope",
]

#: Default sampling rate. 19 Hz keeps overhead ~zero while being co-prime
#: with 1/10/100 ms periodic work, so samples don't lock onto slot edges.
DEFAULT_HZ = 19.0

#: Stack depth cap per sample — enough for this codebase's call trees.
MAX_SAMPLE_FRAMES = 48


class PhaseAccumulator:
    """Per-thread phase wall-time totals, mergeable into one folded view.

    ``add``/``marker``/``since`` operate on the calling thread's private
    totals (no locking on the hot path, and a slot's delta window is not
    polluted by concurrent threads); :meth:`folded` merges every thread's
    totals by addition — the same merge-associative shape as sampled
    stacks, so downstream exporters treat both uniformly.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._per_thread: list[dict[str, float]] = []

    def _totals(self) -> dict[str, float]:
        totals = getattr(self._local, "totals", None)
        if totals is None:
            totals = {}
            self._local.totals = totals
            with self._lock:
                self._per_thread.append(totals)
        return totals

    def add(self, name: str, ms: float) -> None:
        """Credit ``ms`` milliseconds of wall time to ``name``."""
        totals = self._totals()
        totals[name] = totals.get(name, 0.0) + ms

    def marker(self) -> dict[str, float]:
        """Snapshot of this thread's totals (pair with :meth:`since`)."""
        return dict(self._totals())

    def since(self, marker: Mapping[str, float]) -> dict[str, float]:
        """Per-phase milliseconds this thread accumulated since ``marker``."""
        deltas: dict[str, float] = {}
        for name, value in self._totals().items():
            delta = value - marker.get(name, 0.0)
            if delta > 0.0:
                deltas[name] = delta
        return deltas

    def folded(self) -> dict[str, float]:
        """All threads' totals merged by addition (``{phase: ms}``)."""
        with self._lock:
            snapshots = list(self._per_thread)
        merged: dict[str, float] = {}
        for totals in snapshots:
            # A still-running thread may append a key mid-copy; retrying
            # is cheap and the session quiesces threads before reading.
            for _ in range(4):
                try:
                    items = list(totals.items())
                    break
                except RuntimeError:  # pragma: no cover - racing writer
                    continue
            else:  # pragma: no cover - persistent race
                items = []
            for name, value in items:
                merged[name] = merged.get(name, 0.0) + value
        return merged


def merge_folded(
    *profiles: Mapping[str, float],
) -> dict[str, float]:
    """Merge folded profiles by addition — associative and commutative."""
    merged: dict[str, float] = {}
    for folded in profiles:
        for stack, weight in folded.items():
            merged[stack] = merged.get(stack, 0.0) + weight
    return merged


# ----- active-profile plumbing ------------------------------------------------

_active_profile: PhaseAccumulator | None = None
_profile_lock = threading.Lock()


def active_profile() -> PhaseAccumulator | None:
    """The process-wide active accumulator, or ``None`` (profiling off)."""
    return _active_profile


class _NoopTimer:
    """Shared do-nothing context manager for the profiling-off path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


_NOOP_TIMER = _NoopTimer()


class _PhaseTimer:
    __slots__ = ("profile", "name", "start")

    def __init__(self, profile: PhaseAccumulator, name: str) -> None:
        self.profile = profile
        self.name = name

    def __enter__(self) -> "_PhaseTimer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        self.profile.add(
            self.name, (time.perf_counter() - self.start) * 1000.0
        )
        return False


def phase(name: str) -> Any:
    """Time a named phase into the active profile; no-op when profiling is off.

    The off path returns a shared singleton — no allocation, no clock
    read — so leaving ``with phase(...)`` blocks in hot code is free.
    """
    profile = _active_profile
    if profile is None:
        return _NOOP_TIMER
    return _PhaseTimer(profile, name)


# ----- sampling profiler ------------------------------------------------------


def _frame_label(code: Any) -> str:
    """``module:function`` label for one frame, stable across machines."""
    return f"{Path(code.co_filename).stem}:{code.co_name}"


class SamplingProfiler:
    """Low-overhead wall-clock sampler over ``sys._current_frames()``.

    A daemon thread wakes every ``1/hz`` seconds, snapshots every *other*
    thread's Python stack, and folds each into
    ``"outer;...;inner" -> sample count``. Purely observational: it never
    touches the sampled threads, so results are unchanged — only a few
    microseconds of GIL time per tick are spent.
    """

    def __init__(
        self, hz: float = DEFAULT_HZ, *, max_frames: int = MAX_SAMPLE_FRAMES
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = float(hz)
        self.max_frames = max_frames
        self.folded: dict[str, int] = {}
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    def sample_once(self) -> None:
        """Take one sample of every other thread's stack (testable hook)."""
        own = threading.get_ident()
        for ident, frame in sys._current_frames().items():
            if ident == own:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_frames:
                stack.append(_frame_label(frame.f_code))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            key = ";".join(reversed(stack))
            self.folded[key] = self.folded.get(key, 0) + 1
            self.samples += 1

    def stop(self) -> dict[str, int]:
        """Stop the sampler thread and return the folded sample counts."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return dict(self.folded)


# ----- sessions ---------------------------------------------------------------


@dataclass
class ProfileHandle:
    """What a :func:`profiling_session` yields; results land at exit.

    ``phase_folded`` / ``sampler_folded`` are empty until the ``with``
    block closes (the sampler keeps running until then), after which they
    hold the merged ``{phase: ms}`` and ``{stack: samples}`` views — so a
    wrapper like ``repro-edge profile`` can export them even though the
    inner command's telemetry session is already gone.
    """

    hz: float
    phases: PhaseAccumulator
    sampler: SamplingProfiler | None
    phase_folded: dict[str, float] = field(default_factory=dict)
    sampler_folded: dict[str, int] = field(default_factory=dict)
    samples: int = 0


@contextmanager
def profiling_session(
    *, hz: float | None = DEFAULT_HZ, emit: bool = True
) -> Iterator[ProfileHandle]:
    """Activate phase timers (and the sampler unless ``hz`` is 0/None).

    At exit the handle is populated and — when ``emit`` is true and a
    telemetry registry is active — one ``prof.profile`` event per
    instrument is recorded, each carrying a merge-associative ``folded``
    mapping, so manifests from sharded runs aggregate by addition.
    """
    global _active_profile
    phases = PhaseAccumulator()
    sampler = SamplingProfiler(hz=hz) if hz else None
    handle = ProfileHandle(hz=hz or 0.0, phases=phases, sampler=sampler)
    with _profile_lock:
        previous = _active_profile
        _active_profile = phases
    if sampler is not None:
        sampler.start()
    try:
        yield handle
    finally:
        with _profile_lock:
            _active_profile = previous
        if sampler is not None:
            handle.sampler_folded = sampler.stop()
            handle.samples = sampler.samples
        handle.phase_folded = phases.folded()
        if emit:
            registry = get_registry()
            registry.event(
                "prof.profile",
                source="phases",
                unit="ms",
                folded=handle.phase_folded,
            )
            if sampler is not None:
                registry.event(
                    "prof.profile",
                    source="sampler",
                    unit="samples",
                    hz=handle.hz,
                    samples=handle.samples,
                    folded=handle.sampler_folded,
                )


# ----- export -----------------------------------------------------------------

_SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

_UNIT_NAMES = {"ms": "milliseconds", "samples": "none"}


def speedscope_document(
    profiles: Sequence[Mapping[str, Any]],
) -> dict[str, Any]:
    """Build one speedscope file from folded profiles.

    Each input is ``{"name": str, "unit": "ms"|"samples", "folded":
    {stack: weight}}``; each becomes one ``"sampled"`` speedscope profile
    sharing a global frame table. Stacks iterate in sorted order so the
    document is deterministic for a given folded mapping.
    """
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}
    rendered: list[dict[str, Any]] = []
    for profile in profiles:
        samples: list[list[int]] = []
        weights: list[float] = []
        for stack, weight in sorted(profile["folded"].items()):
            indices: list[int] = []
            for label in stack.split(";"):
                index = frame_index.get(label)
                if index is None:
                    index = len(frames)
                    frame_index[label] = index
                    frames.append({"name": label})
                indices.append(index)
            samples.append(indices)
            weights.append(weight)
        rendered.append(
            {
                "type": "sampled",
                "name": profile["name"],
                "unit": _UNIT_NAMES.get(profile.get("unit", "samples"), "none"),
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": _SPEEDSCOPE_SCHEMA,
        "shared": {"frames": frames},
        "profiles": rendered,
        "name": "repro-edge profile",
        "exporter": "repro-edge",
    }


def write_speedscope(
    path: str | Path, profiles: Sequence[Mapping[str, Any]]
) -> Path:
    """Write :func:`speedscope_document` as JSON; returns the path."""
    import json

    path = Path(path)
    path.write_text(
        json.dumps(speedscope_document(profiles), indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def write_collapsed(path: str | Path, folded: Mapping[str, float]) -> Path:
    """Write a folded profile as collapsed-stack text (``stack weight``).

    The flamegraph toolchain's native input; weights keep their unit
    (milliseconds for phase profiles, sample counts for the sampler).
    """
    path = Path(path)
    lines = [
        f"{stack} {weight:g}" for stack, weight in sorted(folded.items())
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
