"""Environment fingerprint: make every recorded artifact attributable.

Run manifests, bench records, and incident bundles are only useful
post-mortems when you know *what build* produced them — the same seeded
run can legitimately differ across BLAS implementations, and the
``REPRO_*`` feature flags change which kernels execute (never the
numbers, but very much the timings). :func:`environment_fingerprint`
collects the identifying facts in one JSON-able dict:

* interpreter: python version and implementation;
* numeric stack: numpy and scipy versions, the BLAS backing numpy;
* host shape: platform triple and visible CPU count;
* feature flags: every ``REPRO_*`` environment variable that is set.

The fingerprint is stamped into every manifest's ``manifest_start``
record (:mod:`repro.telemetry.manifest` and the streaming writer) and
into every incident bundle's ``incident_start`` record
(:mod:`repro.telemetry.flight`); ``repro-edge doctor`` surfaces it at
the top of the post-mortem. Collecting it reads interpreter metadata
only — it never changes computed results.
"""

from __future__ import annotations

import os
import platform
import sys
from functools import lru_cache

import numpy as np


@lru_cache(maxsize=1)
def _blas_name() -> str:
    """Best-effort name of the BLAS/LAPACK backing numpy.

    numpy has changed this API repeatedly; every probe is wrapped so an
    unknown layout degrades to ``"unknown"`` instead of an error.
    """
    try:  # numpy >= 1.26: structured config dict
        config = np.show_config(mode="dicts")  # type: ignore[call-arg]
        blas = (config.get("Build Dependencies") or {}).get("blas") or {}
        name = blas.get("name")
        if name:
            return str(name)
    except Exception:
        pass
    try:  # older numpy: np.__config__ info dicts
        info = np.__config__.get_info("blas_opt_info")  # type: ignore[attr-defined]
        libraries = info.get("libraries")
        if libraries:
            return str(libraries[0])
    except Exception:
        pass
    return "unknown"


def _scipy_version() -> str | None:
    try:
        import scipy

        return str(scipy.__version__)
    except Exception:  # scipy is optional everywhere in this project
        return None


def environment_fingerprint() -> dict:
    """The identifying facts of this process's build, as a JSON-able dict.

    The ``repro_flags`` entry holds every ``REPRO_*`` environment
    variable currently set (e.g. ``REPRO_BATCHED_JIT``), so recorded
    artifacts distinguish flag-on from flag-off runs.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": str(np.__version__),
        "scipy": _scipy_version(),
        "blas": _blas_name(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "executable": sys.executable,
        "repro_flags": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
    }
