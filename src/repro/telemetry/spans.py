"""Trace-tree helpers for the span records produced by the registry.

A span is recorded as a plain dict — ``{"name", "duration_ms",
"children", "meta"?}`` — so trees pickle across process-pool workers and
serialize straight into the run manifest. This module provides the small
read-side toolkit: depth-first iteration, per-name aggregation, and an
indented text rendering for quick inspection.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def walk_spans(spans: Iterable[dict]) -> Iterator[tuple[int, dict]]:
    """Yield ``(depth, node)`` over span trees in depth-first order."""
    stack = [(0, node) for node in reversed(list(spans))]
    while stack:
        depth, node = stack.pop()
        yield depth, node
        for child in reversed(node.get("children", ())):
            stack.append((depth + 1, child))


def span_durations(spans: Iterable[dict]) -> dict[str, tuple[int, float]]:
    """Aggregate ``name -> (count, total_ms)`` over whole span trees."""
    totals: dict[str, tuple[int, float]] = {}
    for _, node in walk_spans(spans):
        count, total = totals.get(node["name"], (0, 0.0))
        totals[node["name"]] = (count + 1, total + float(node["duration_ms"]))
    return totals


def render_spans(spans: Iterable[dict], *, min_ms: float = 0.0) -> str:
    """Render span trees as an indented text outline.

    Args:
        spans: root span nodes (e.g. ``registry.spans`` or the manifest's
            ``spans`` record).
        min_ms: hide spans shorter than this many milliseconds (children of
            a hidden span are hidden with it).
    """
    lines = []
    skip_deeper_than: int | None = None
    for depth, node in walk_spans(spans):
        if skip_deeper_than is not None:
            if depth > skip_deeper_than:
                continue
            skip_deeper_than = None
        if float(node["duration_ms"]) < min_ms:
            skip_deeper_than = depth
            continue
        meta = node.get("meta")
        suffix = f"  {meta}" if meta else ""
        lines.append(
            f"{'  ' * depth}{node['name']}: {float(node['duration_ms']):.3f} ms"
            f"{suffix}"
        )
    return "\n".join(lines) if lines else "(no spans recorded)"
