"""Declarative SLO objectives with multi-window burn-rate alerting.

The watchdog's rules (:mod:`repro.telemetry.watchdog`) are point
detectors: a stalled solve, a fallback storm, a violated certificate.
Service operation needs the complementary *error-budget* view — "at most
1% of slots may miss their deadline" — evaluated the way SRE practice
evaluates it: a **burn rate** (observed bad fraction divided by the
budgeted bad fraction) over a *fast* and a *slow* window simultaneously.
The fast window catches sudden storms quickly; the slow window keeps a
brief blip from paging. An objective **fires** only when both windows
burn above their thresholds, and resolves once the fast window recovers.

:class:`SloTracker` folds the existing event stream — ``service.slot``
for latency and deadline misses, ``slot`` + ``solver.fallback`` for
fallback rate, ``diag.ratio.point`` for the empirical ratio against the
Theorem 2 bound ``1 + γ|I|`` — so the plane is observe-only: no solver
code changes, no new instrumentation points. The
:class:`~repro.telemetry.watchdog.WatchdogSink` hosts a tracker, emits
``slo.burn`` transition events, keeps ``slo.burn.fast.*`` /
``slo.burn.slow.*`` gauges fresh for the OpenMetrics endpoint, and
raises a synthetic ``slo:<name>`` alert on firing — which also triggers
the flight recorder (:mod:`repro.telemetry.flight`), so every burn alert
leaves a replayable incident bundle behind.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

#: Signals an objective can watch (each maps to existing event types).
SLO_SIGNALS = ("latency", "deadline-miss", "fallback", "ratio-bound")


@dataclass(frozen=True)
class SloObjective:
    """One declarative service-level objective.

    Attributes:
        name: objective identifier (``deadline-miss``, ``latency-p99`` ...).
        signal: which event-stream signal classifies slots good/bad —
            one of :data:`SLO_SIGNALS`.
        budget: the error budget — the fraction of slots allowed to be
            bad while the objective is still met (e.g. ``0.01`` = 1%).
        threshold_ms: for the ``latency`` signal, the per-slot latency
            bound; ignored by the other signals.
        fast_window: sample count of the fast (storm-detection) window.
        slow_window: sample count of the slow (sustained-burn) window.
        fast_burn: burn-rate threshold on the fast window (classic
            multi-window alerting uses ~10x budget consumption).
        slow_burn: burn-rate threshold on the slow window.
        min_samples: samples required in a window before it can fire —
            keeps the first bad slot of a run from paging instantly.
    """

    name: str
    signal: str
    budget: float
    threshold_ms: float | None = None
    fast_window: int = 32
    slow_window: int = 256
    fast_burn: float = 10.0
    slow_burn: float = 2.0
    min_samples: int = 8

    def __post_init__(self) -> None:
        if self.signal not in SLO_SIGNALS:
            raise ValueError(
                f"unknown SLO signal {self.signal!r}; expected one of "
                f"{SLO_SIGNALS}"
            )
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {self.budget}")
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise ValueError(
                "windows must satisfy 1 <= fast_window <= slow_window, got "
                f"{self.fast_window}/{self.slow_window}"
            )
        if self.signal == "latency" and self.threshold_ms is None:
            raise ValueError("latency objectives require threshold_ms")


def default_slos(*, deadline_ms: float | None = None) -> tuple[SloObjective, ...]:
    """The paper-centric default objectives.

    Args:
        deadline_ms: latency threshold for the p99-style latency
            objective; defaults to 250 ms when the run has no deadline.

    Returns the four objectives the serving story cares about: slot
    latency, deadline-miss ratio, solver fallback rate, and the
    empirical competitive ratio staying under the Theorem 2 bound
    ``1 + γ|I|`` (any measured violation burns that budget).
    """
    return (
        SloObjective(
            name="latency-p99",
            signal="latency",
            budget=0.01,
            threshold_ms=250.0 if deadline_ms is None else float(deadline_ms),
        ),
        SloObjective(name="deadline-miss", signal="deadline-miss", budget=0.01),
        SloObjective(name="fallback-rate", signal="fallback", budget=0.01),
        SloObjective(
            name="ratio-bound",
            signal="ratio-bound",
            budget=0.001,
            fast_burn=1.0,
            slow_burn=1.0,
            min_samples=1,
        ),
    )


class _ObjectiveState:
    """Rolling good/bad windows plus firing state for one objective."""

    __slots__ = ("objective", "fast", "slow", "firing", "sampled")

    def __init__(self, objective: SloObjective) -> None:
        self.objective = objective
        self.fast: deque[bool] = deque(maxlen=objective.fast_window)
        self.slow: deque[bool] = deque(maxlen=objective.slow_window)
        self.firing = False
        self.sampled = 0

    def burn(self, window: deque[bool]) -> float:
        """Burn rate of one window: bad fraction over the error budget."""
        if not window:
            return 0.0
        return (sum(window) / len(window)) / self.objective.budget

    def push(self, bad: bool) -> dict | None:
        """Fold one sample; return a transition payload if state flips."""
        self.fast.append(bad)
        self.slow.append(bad)
        self.sampled += 1
        objective = self.objective
        if len(self.fast) < objective.min_samples:
            return None
        fast_rate = self.burn(self.fast)
        slow_rate = self.burn(self.slow)
        if not self.firing:
            if fast_rate >= objective.fast_burn and slow_rate >= objective.slow_burn:
                self.firing = True
                return self._transition("firing", fast_rate, slow_rate)
            return None
        if fast_rate < objective.fast_burn:
            self.firing = False
            return self._transition("resolved", fast_rate, slow_rate)
        return None

    def _transition(self, state: str, fast_rate: float, slow_rate: float) -> dict:
        objective = self.objective
        return {
            "objective": objective.name,
            "signal": objective.signal,
            "state": state,
            "fast_burn": fast_rate,
            "slow_burn": slow_rate,
            "fast_threshold": objective.fast_burn,
            "slow_threshold": objective.slow_burn,
            "budget": objective.budget,
            "samples": self.sampled,
        }


class SloTracker:
    """Evaluate a set of :class:`SloObjective` over the live event stream.

    Feed it raw event records via :meth:`observe`; it returns the
    ``slo.burn`` transition payloads (state flips only — steady burn is
    silent, so manifests never flood). Reading the stream is
    observe-only and never raises on unknown or partial records.
    """

    def __init__(self, objectives: tuple[SloObjective, ...] | None = None) -> None:
        """Track ``objectives`` (:func:`default_slos` when omitted)."""
        self.objectives = tuple(
            default_slos() if objectives is None else objectives
        )
        self._states = {o.name: _ObjectiveState(o) for o in self.objectives}
        self._fallback_pending = False
        self.transitions = 0

    @property
    def active(self) -> tuple[str, ...]:
        """Names of the objectives currently firing."""
        return tuple(
            name for name, state in self._states.items() if state.firing
        )

    def burn_rates(self) -> dict[str, dict[str, float]]:
        """Current fast/slow burn rates per objective (sampled ones only)."""
        return {
            name: {
                "fast": state.burn(state.fast),
                "slow": state.burn(state.slow),
                "firing": state.firing,
            }
            for name, state in self._states.items()
            if state.sampled
        }

    def _sample(self, objective: SloObjective, record: dict) -> bool | None:
        """Classify ``record`` for ``objective``; ``None`` = not a sample."""
        kind = record.get("type")
        if objective.signal == "latency":
            if kind != "service.slot":
                return None
            latency = record.get("latency_ms")
            if latency is None:
                return None
            return float(latency) > float(objective.threshold_ms or 0.0)
        if objective.signal == "deadline-miss":
            if kind != "service.slot":
                return None
            return bool(record.get("deadline_miss", False))
        if objective.signal == "fallback":
            if kind != "slot":
                return None
            return self._fallback_pending
        if objective.signal == "ratio-bound":
            if kind != "diag.ratio.point":
                return None
            ratio = record.get("ratio")
            bound = record.get("bound")
            if ratio is None or bound is None:
                return None
            return float(ratio) > float(bound)
        return None

    def observe(self, record: dict) -> list[dict]:
        """Fold one event record; return any ``slo.burn`` transitions."""
        kind = record.get("type")
        if kind == "solver.fallback":
            self._fallback_pending = True
            return []
        transitions: list[dict] = []
        slot = record.get("slot")
        for state in self._states.values():
            bad = self._sample(state.objective, record)
            if bad is None:
                continue
            transition = state.push(bool(bad))
            if transition is not None:
                if slot is not None:
                    transition["slot"] = slot
                transitions.append(transition)
        if kind == "slot":
            self._fallback_pending = False
        self.transitions += len(transitions)
        return transitions
