"""Watchdog rules engine: declarative alerts over the live event stream.

Long-horizon online-placement runs are operated by watching a handful of
health signals — is the solver stalling, is the fallback backend storming,
are the optimality certificates or the Theorem-2 ratio bound violated?
This module evaluates such rules *as the events stream by*, either

* **in-process**, by wrapping any event sink in a :class:`WatchdogSink`
  (e.g. inside :func:`repro.telemetry.sinks.streaming_manifest_session`
  with ``watchdog_rules=default_rules()``) — fired alerts are emitted
  back into the event stream as ``alert`` records, so they land in the
  live manifest next to the events that triggered them; or
* **offline/tailing**, by feeding manifest records through a bare
  :class:`Watchdog` — this is how ``repro-edge watch --strict`` turns a
  rule firing into a nonzero exit code.

Rules are small frozen dataclasses over a shared :class:`WatchdogState`
(rolling slot-wall histogram, recent fallback positions, ...), so the
rule set is declarative: construct the instances you want, with the
thresholds you want, and hand them to the engine. The engine never
alerts on ``alert`` records themselves, so replaying a manifest that
already contains alerts cannot cascade.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .metrics import Histogram, MetricsRegistry
from .sinks import EventSink

#: Default relative duality-gap tolerance (mirrors
#: ``repro.diagnostics.certificates.DEFAULT_GAP_TOL``; kept as a literal so
#: the telemetry leaf does not import the diagnostics layer).
DEFAULT_GAP_TOL = 1e-6

#: Default relative slack on the Theorem-2 bound (mirrors
#: ``repro.diagnostics.ratio.BOUND_RTOL``).
DEFAULT_BOUND_RTOL = 1e-9


@dataclass(frozen=True)
class Alert:
    """One rule firing.

    Attributes:
        rule: the firing rule's name (``solver-stall``, ...).
        message: human-readable one-liner for logs and the watch view.
        slot: the slot the triggering event carried, when it had one.
        value: the observed quantity that tripped the rule.
        threshold: the limit it tripped.
    """

    rule: str
    message: str
    slot: int | None = None
    value: float | None = None
    threshold: float | None = None

    def as_event(self) -> dict:
        """The ``alert`` manifest-record form of this alert."""
        record = {"type": "alert", "rule": self.rule, "message": self.message}
        if self.slot is not None:
            record["slot"] = self.slot
        if self.value is not None:
            record["value"] = self.value
        if self.threshold is not None:
            record["threshold"] = self.threshold
        return record


class WatchdogState:
    """Rolling view of the event stream shared by every rule.

    Attributes:
        slots: ``slot`` events seen so far.
        wall: histogram of their ``wall_ms`` (the stall baseline).
        fallbacks: ``solver.fallback`` events seen so far.
        fallback_positions: slot counts at which recent fallbacks happened
            (pruned by :class:`FallbackStormRule`'s window).
        circuit_opens: ``solver.circuit_open`` events seen so far.
    """

    def __init__(self) -> None:
        """Start with an empty history."""
        self.slots = 0
        self.wall = Histogram("watchdog.slot_wall_ms")
        self.fallbacks = 0
        self.fallback_positions: deque[int] = deque()
        self.circuit_opens = 0
        self.deadline_misses = 0
        self.deadline_miss_positions: deque[int] = deque()

    def update(self, record: dict) -> None:
        """Fold one event record into the rolling state."""
        kind = record.get("type")
        if kind == "slot":
            self.slots += 1
            wall = record.get("wall_ms")
            if wall is not None:
                self.wall.observe(float(wall))
        elif kind == "solver.fallback":
            self.fallbacks += 1
            self.fallback_positions.append(self.slots)
        elif kind == "solver.circuit_open":
            self.circuit_opens += 1
        elif kind == "service.deadline.miss":
            self.deadline_misses += 1
            self.deadline_miss_positions.append(self.slots)


class WatchdogRule:
    """Base class for rules: a name plus an ``observe`` predicate."""

    #: Rule identifier stamped on every alert it fires.
    name = "rule"

    def observe(self, record: dict, state: WatchdogState) -> Alert | None:
        """Inspect one event (after ``state`` absorbed it); maybe alert."""
        raise NotImplementedError


@dataclass(frozen=True)
class SolverStallRule(WatchdogRule):
    """Fire when one slot's wall time dwarfs the run's own p95.

    Attributes:
        factor: how many multiples of the rolling p95 count as a stall.
        min_slots: slots of history required before the rule arms (the
            early p95 is too noisy to compare against).
    """

    factor: float = 8.0
    min_slots: int = 16
    name: str = field(default="solver-stall", init=False)

    def observe(self, record: dict, state: WatchdogState) -> Alert | None:
        """Compare a ``slot`` event's wall time against ``factor``·p95."""
        if record.get("type") != "slot" or "wall_ms" not in record:
            return None
        if state.slots <= self.min_slots:
            return None
        p95 = state.wall.percentile(0.95)
        if p95 is None or p95 <= 0.0:
            return None
        wall = float(record["wall_ms"])
        limit = self.factor * p95
        if wall <= limit:
            return None
        slot = record.get("slot")
        return Alert(
            rule=self.name,
            message=(
                f"slot wall time {wall:.1f} ms exceeds "
                f"{self.factor:g} x p95 ({p95:.1f} ms)"
            ),
            slot=None if slot is None else int(slot),
            value=wall,
            threshold=limit,
        )


@dataclass(frozen=True)
class FallbackStormRule(WatchdogRule):
    """Fire when fallbacks cluster: ``threshold`` within ``window`` slots.

    Fires exactly once per storm — at the moment the count in the window
    *reaches* the threshold — rather than on every further fallback.

    Attributes:
        threshold: fallbacks within the window that constitute a storm.
        window: the window length, measured in accounted slots.
    """

    threshold: int = 3
    window: int = 25
    name: str = field(default="fallback-storm", init=False)

    def observe(self, record: dict, state: WatchdogState) -> Alert | None:
        """Count recent ``solver.fallback`` events inside the slot window."""
        if record.get("type") != "solver.fallback":
            return None
        positions = state.fallback_positions
        while positions and positions[0] < state.slots - self.window:
            positions.popleft()
        if len(positions) != self.threshold:
            return None
        return Alert(
            rule=self.name,
            message=(
                f"{len(positions)} solver fallbacks within the last "
                f"{self.window} slots"
            ),
            value=float(len(positions)),
            threshold=float(self.threshold),
        )


@dataclass(frozen=True)
class CertificateGapRule(WatchdogRule):
    """Fire when a per-slot optimality certificate exceeds the gap tolerance.

    Attributes:
        tol: relative duality-gap tolerance (``diag.certificate``'s
            ``relative_gap`` above this fires).
    """

    tol: float = DEFAULT_GAP_TOL
    name: str = field(default="certificate-gap", init=False)

    def observe(self, record: dict, state: WatchdogState) -> Alert | None:
        """Check a ``diag.certificate`` event's relative gap."""
        if record.get("type") != "diag.certificate":
            return None
        gap = float(record.get("relative_gap", 0.0))
        if gap <= self.tol:
            return None
        slot = record.get("slot")
        return Alert(
            rule=self.name,
            message=f"relative duality gap {gap:.3e} exceeds tol {self.tol:g}",
            slot=None if slot is None else int(slot),
            value=gap,
            threshold=self.tol,
        )


@dataclass(frozen=True)
class RatioBoundRule(WatchdogRule):
    """Fire when the empirical ratio exceeds the certified `1 + γ|I|` bound.

    Listens to the diagnostics ratio feed: each streamed
    ``diag.ratio.point`` is checked against its own ``bound`` field, and
    explicit ``diag.ratio.violation`` events (emitted by
    :func:`repro.diagnostics.ratio.record_ratio_trace`) always fire.

    Attributes:
        rtol: relative slack on the bound (solver noise lives below it).
    """

    rtol: float = DEFAULT_BOUND_RTOL
    name: str = field(default="ratio-over-bound", init=False)

    def observe(self, record: dict, state: WatchdogState) -> Alert | None:
        """Check ratio-feed events against the certified bound."""
        kind = record.get("type")
        if kind not in ("diag.ratio.point", "diag.ratio.violation"):
            return None
        ratio = float(record.get("ratio", 0.0))
        bound = float(record.get("bound", float("inf")))
        if kind == "diag.ratio.point" and ratio <= bound * (1.0 + self.rtol):
            return None
        slot = record.get("slot")
        return Alert(
            rule=self.name,
            message=(
                f"empirical ratio {ratio:.6f} exceeds the certified "
                f"bound {bound:.6f}"
            ),
            slot=None if slot is None else int(slot),
            value=ratio,
            threshold=bound,
        )


@dataclass(frozen=True)
class DeadlineMissRule(WatchdogRule):
    """Fire when the serving deadline is missed repeatedly.

    Listens to the live service's ``service.deadline.miss`` events
    (docs/SERVING.md): a slot whose solve was budget-truncated or whose
    wall latency exceeded the configured deadline. A single miss is the
    degradation ladder doing its job; a *cluster* means the service is
    persistently overloaded, so the rule fires once per storm — at the
    moment the count within the window reaches the threshold — exactly
    like :class:`FallbackStormRule`. Set ``threshold=1`` to alert on
    every miss (what the CI smoke gate does via ``watch --strict``).

    Attributes:
        threshold: misses within the window that constitute overload.
        window: the window length, measured in accounted slots.
    """

    threshold: int = 3
    window: int = 25
    name: str = field(default="deadline-miss", init=False)

    def observe(self, record: dict, state: WatchdogState) -> Alert | None:
        """Count recent ``service.deadline.miss`` events in the window."""
        if record.get("type") != "service.deadline.miss":
            return None
        positions = state.deadline_miss_positions
        while positions and positions[0] < state.slots - self.window:
            positions.popleft()
        if len(positions) != self.threshold:
            return None
        slot = record.get("slot")
        return Alert(
            rule=self.name,
            message=(
                f"{len(positions)} deadline misses within the last "
                f"{self.window} slots"
            ),
            slot=None if slot is None else int(slot),
            value=float(len(positions)),
            threshold=float(self.threshold),
        )


def default_rules() -> tuple[WatchdogRule, ...]:
    """The standard rule set, at default thresholds."""
    return (
        SolverStallRule(),
        FallbackStormRule(),
        CertificateGapRule(),
        RatioBoundRule(),
        DeadlineMissRule(),
    )


class Watchdog:
    """Evaluate a rule set over an event stream, accumulating alerts.

    Attributes:
        rules: the rule instances being evaluated.
        state: the shared rolling state.
        alerts: every alert fired so far, in firing order.
    """

    def __init__(self, rules: "tuple[WatchdogRule, ...] | list | None" = None):
        """Create the engine (``None`` rules = :func:`default_rules`)."""
        self.rules = tuple(rules) if rules is not None else default_rules()
        self.state = WatchdogState()
        self.alerts: list[Alert] = []

    def observe(self, record: dict) -> list[Alert]:
        """Feed one event record; return the alerts it fired (often none).

        ``alert`` records are ignored (never re-evaluated), so replaying
        a manifest that already contains alerts cannot cascade.
        """
        if record.get("type") == "alert":
            return []
        self.state.update(record)
        fired = []
        for rule in self.rules:
            alert = rule.observe(record, self.state)
            if alert is not None:
                fired.append(alert)
        self.alerts.extend(fired)
        return fired

    def observe_all(self, records) -> list[Alert]:
        """Feed many records; return every alert they fired."""
        fired: list[Alert] = []
        for record in records:
            fired.extend(self.observe(record))
        return fired


#: Default per-rule alert cooldown, in accounted slots: a rule that
#: fires again within this many slots of its last *emitted* alert is
#: suppressed (counted, not written), so a persistent condition cannot
#: flood a streaming manifest with one alert per slot.
DEFAULT_ALERT_COOLDOWN = 25

#: Event kinds the SLO tracker can sample — used to keep the exported
#: burn-rate gauges fresh without recomputing them on unrelated records.
_SLO_SAMPLE_KINDS = ("slot", "service.slot", "diag.ratio.point")


class WatchdogSink(EventSink):
    """Wrap a sink with live rule evaluation; alerts join the stream.

    Every record is forwarded to the inner sink first, then evaluated.
    Fired alerts are emitted as ``alert`` records — through the bound
    registry when one is attached (so they carry the active context tags
    and land in the in-memory event buffer too), or straight into the
    inner sink otherwise. Re-entrancy is safe because the engine skips
    ``alert`` records.

    Repeated alerts from the same rule are rate-limited: after a rule's
    alert is emitted, further firings within ``cooldown`` slots are
    suppressed (the engine's ``.alerts`` list still records them), and
    each suppression increments the ``watchdog.suppressed`` counter.

    When an SLO tracker is attached (``slo=``), every record is also
    folded into its burn-rate windows; state transitions are emitted as
    ``slo.burn`` events, the current rates are exported as
    ``slo.burn.fast.*`` / ``slo.burn.slow.*`` gauges, and a newly firing
    objective raises a synthetic ``slo:<name>`` alert — joining the
    normal alert path, so it also triggers the flight recorder.

    Attributes:
        inner: the wrapped sink (e.g. a
            :class:`repro.telemetry.sinks.StreamingManifestWriter`).
        watchdog: the rule engine (``.alerts`` holds everything fired).
        slo: the attached :class:`repro.telemetry.slo.SloTracker` or ``None``.
        cooldown: the per-rule suppression window (0 disables).
        suppressed: alerts suppressed by the cooldown so far.
    """

    def __init__(
        self,
        inner: EventSink,
        *,
        rules: "tuple[WatchdogRule, ...] | list | None" = None,
        cooldown: int = DEFAULT_ALERT_COOLDOWN,
        slo=None,
    ) -> None:
        """Wrap ``inner`` with a fresh :class:`Watchdog` over ``rules``.

        Args:
            inner: the sink every record is forwarded to.
            rules: watchdog rules (``None`` = :func:`default_rules`).
            cooldown: per-rule alert suppression window in slots.
            slo: ``None`` (no SLO plane), a
                :class:`repro.telemetry.slo.SloTracker`, ``True`` (track
                :func:`repro.telemetry.slo.default_slos`), or an iterable
                of :class:`repro.telemetry.slo.SloObjective`.
        """
        self.inner = inner
        self.watchdog = Watchdog(rules)
        self.cooldown = int(cooldown)
        self.suppressed = 0
        self._last_emitted: dict[str, int] = {}
        self._registry: MetricsRegistry | None = None
        if slo is None:
            self.slo = None
        elif hasattr(slo, "observe"):
            self.slo = slo
        else:
            from .slo import SloTracker

            self.slo = SloTracker(None if slo is True else tuple(slo))

    def bind(self, registry: MetricsRegistry) -> None:
        """Route fired alerts through ``registry.event`` (context-tagged)."""
        self._registry = registry

    def _emit_record(self, payload: dict) -> None:
        """Emit a synthesized record through the registry or the inner sink."""
        if self._registry is not None:
            kind = dict(payload)
            self._registry.event(kind.pop("type"), **kind)
        else:
            self.inner.emit(payload)

    def _suppress(self, alert: Alert) -> bool:
        """Whether the cooldown swallows this alert (and count it if so)."""
        if self.cooldown <= 0:
            return False
        now = self.watchdog.state.slots
        last = self._last_emitted.get(alert.rule)
        if last is not None and now - last < self.cooldown:
            self.suppressed += 1
            if self._registry is not None:
                self._registry.counter("watchdog.suppressed").inc()
            return True
        self._last_emitted[alert.rule] = now
        return False

    def _export_burn_gauges(self) -> None:
        """Keep the OpenMetrics-facing burn-rate gauges fresh."""
        if self._registry is None or self.slo is None:
            return
        for name, rates in self.slo.burn_rates().items():
            self._registry.gauge(f"slo.burn.fast.{name}").set(rates["fast"])
            self._registry.gauge(f"slo.burn.slow.{name}").set(rates["slow"])

    def emit(self, record: dict) -> None:
        """Forward the record, evaluate rules and SLOs, emit what fired."""
        self.inner.emit(record)
        kind = record.get("type")
        if kind in ("alert", "slo.burn"):
            return
        for alert in self.watchdog.observe(record):
            if self._suppress(alert):
                continue
            self._emit_record(alert.as_event())
        if self.slo is not None:
            for transition in self.slo.observe(record):
                self._emit_record({"type": "slo.burn", **transition})
                if transition["state"] == "firing":
                    if self._registry is not None:
                        self._registry.counter("slo.alerts").inc()
                    self._emit_record(
                        Alert(
                            rule=f"slo:{transition['objective']}",
                            message=(
                                f"SLO {transition['objective']} burning at "
                                f"{transition['fast_burn']:.1f}x fast / "
                                f"{transition['slow_burn']:.1f}x slow "
                                f"(budget {transition['budget']:g})"
                            ),
                            slot=transition.get("slot"),
                            value=float(transition["fast_burn"]),
                            threshold=float(transition["fast_threshold"]),
                        ).as_event()
                    )
            if kind in _SLO_SAMPLE_KINDS:
                self._export_burn_gauges()

    def flush(self) -> None:
        """Delegate to the inner sink."""
        self.inner.flush()

    def maybe_flush(self) -> None:
        """Delegate to the inner sink."""
        self.inner.maybe_flush()

    def close(self) -> None:
        """Delegate to the inner sink."""
        self.inner.close()
