"""``repro-edge watch``: tail a streaming manifest, render live run state.

A run started with a :class:`repro.telemetry.sinks.StreamingManifestWriter`
(e.g. ``repro-edge fig2 --telemetry run.jsonl --stream``) appends one
JSON line per event as it happens. This module follows such a file the
way ``tail -f`` would — :class:`ManifestTail` reads only the bytes added
since the last poll and never trips over a torn (mid-write) trailing
line — folds every record into a :class:`WatchState`, and renders a
refreshing terminal dashboard: slots done, per-slot wall p50/p95, the
running four-component cost, solver iterations and fallback/circuit
state, the empirical competitive ratio against the certified ``1+γ|I|``
bound, and watchdog alerts.

The watch runs its own :class:`repro.telemetry.watchdog.Watchdog` over
the tailed events, so rules fire even for manifests recorded *without*
an in-process watchdog; alerts already present in the file are merged in
(deduplicated by rule and slot). ``watch(..., strict=True)`` — the CLI's
``--strict`` — turns any alert into a nonzero exit code, which makes the
watcher usable as a CI canary over a long-running job.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from .metrics import Histogram
from .watchdog import Alert, Watchdog, WatchdogRule

#: ANSI sequence that clears the screen and homes the cursor.
CLEAR_SCREEN = "\x1b[2J\x1b[H"

#: How many alerts and runs the dashboard lists before eliding.
MAX_LISTED = 6


class ManifestTail:
    """Incrementally read new complete JSON lines from a growing file.

    Each :meth:`poll` picks up where the previous one stopped. A trailing
    line without a newline (a write in progress) is buffered until its
    remainder arrives, so torn writes never surface as parse errors; a
    *complete* line that still fails to parse is counted in
    ``corrupt_lines`` and skipped.
    """

    def __init__(self, path: str | Path) -> None:
        """Tail ``path`` (which may not exist yet) from its beginning."""
        self.path = Path(path)
        self.corrupt_lines = 0
        self._position = 0
        self._partial = ""

    def poll(self) -> list[dict]:
        """Return every complete record appended since the last poll."""
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                handle.seek(self._position)
                chunk = handle.read()
                self._position = handle.tell()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        lines = (self._partial + chunk).split("\n")
        self._partial = lines.pop()  # "" when the chunk ended on a newline
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                self.corrupt_lines += 1
        return records


class _RunView:
    """Running totals for one ``(cell, run)`` as its slot events stream in."""

    def __init__(self, algorithm: str) -> None:
        self.algorithm = algorithm
        self.slots = 0
        self.costs = {"op": 0.0, "sq": 0.0, "rc": 0.0, "mg": 0.0, "total": 0.0}
        self.finished = False

    def add_slot(self, record: dict) -> None:
        self.slots += 1
        for key in self.costs:
            self.costs[key] += float(record.get(key, 0.0))


class WatchState:
    """Everything the dashboard shows, folded incrementally from records.

    Feed records via :meth:`update` (in file order); read the rendered
    dashboard from :meth:`render`. The embedded watchdog re-evaluates the
    rule set over the stream, and ``alert`` records already present in
    the manifest are merged in, deduplicated by ``(rule, slot)``.
    """

    def __init__(
        self, rules: "tuple[WatchdogRule, ...] | list | None" = None
    ) -> None:
        """Create an empty state with a watchdog over ``rules``."""
        self.config: dict = {}
        self.started = False
        self.done = False
        self.events = 0
        self.wall = Histogram("slot.wall_ms")
        self.runs: dict[tuple, _RunView] = {}
        self.solver_solves = 0
        self.solver_iterations = 0
        self.fallbacks = 0
        self.circuit_opens = 0
        self.ratio: float | None = None
        self.ratio_bound: float | None = None
        self.ratio_worst: float | None = None
        self.ratio_certified: bool | None = None
        self.agg_slots = 0
        self.agg_cohorts = 0
        self.agg_reduction: float | None = None
        self.agg_bound: float | None = None
        self.agg_error_worst: float | None = None
        self.service_slots = 0
        self.service_misses = 0
        self.service_latency = Histogram("service.slot_latency_ms")
        self.phase_latency: dict[str, Histogram] = {}
        self.watchdog = Watchdog(rules)
        self.alerts: list[Alert] = []
        self._alert_keys: set[tuple] = set()
        self.slo_burn: dict[str, dict] = {}
        self.slo_firing: set[str] = set()
        self.incidents: list[str] = []

    # ----- folding ------------------------------------------------------------

    def update(self, record: dict) -> None:
        """Fold one manifest record into the state."""
        kind = record.get("type")
        if kind == "manifest_start":
            self.started = True
            self.config = record.get("config", {})
            return
        if kind == "manifest_end":
            self.done = True
            return
        if kind in ("metrics", "spans"):
            return
        self.events += 1
        if kind == "slot":
            self._on_slot(record)
        elif kind == "run_end":
            key = self._run_key(record)
            view = self.runs.get(key)
            if view is None:
                view = self.runs[key] = _RunView(str(record.get("algorithm", "?")))
            view.finished = True
        elif kind == "solver.ipm.trace":
            self.solver_solves += 1
            self.solver_iterations += int(record.get("iterations", 0))
        elif kind == "solver.fallback":
            self.fallbacks += 1
        elif kind == "solver.circuit_open":
            self.circuit_opens += 1
        elif kind == "aggregate.slot":
            self.agg_slots += 1
            self.agg_cohorts = int(record.get("cohorts", 0))
            self.agg_reduction = float(record.get("reduction", 1.0))
            # Worst-over-run, matching the doctor's Aggregation section
            # (a last-slot bound next to a worst-gap reads inconsistently).
            bound = float(record.get("bound", 0.0))
            if self.agg_bound is None or bound > self.agg_bound:
                self.agg_bound = bound
            error = record.get("disagg_error")
            if error is not None:
                error = float(error)
                if self.agg_error_worst is None or error > self.agg_error_worst:
                    self.agg_error_worst = error
        elif kind == "service.slot":
            self.service_slots += 1
            self.service_latency.observe(float(record.get("latency_ms", 0.0)))
            if record.get("deadline_miss"):
                self.service_misses += 1
        elif kind == "prof.phases":
            for name, ms in (record.get("phases") or {}).items():
                histogram = self.phase_latency.get(str(name))
                if histogram is None:
                    histogram = self.phase_latency[str(name)] = Histogram(
                        f"prof.phase_ms.{name}"
                    )
                histogram.observe(float(ms))
        elif kind == "diag.ratio.point":
            self.ratio = float(record.get("ratio", 0.0))
            self.ratio_bound = float(record.get("bound", 0.0))
        elif kind == "diag.ratio.trace":
            self.ratio = float(record.get("final_ratio", 0.0))
            self.ratio_bound = float(record.get("bound", 0.0))
            self.ratio_worst = float(record.get("worst_ratio", 0.0))
            self.ratio_certified = bool(record.get("certified", False))
        elif kind == "slo.burn":
            name = str(record.get("objective", "?"))
            self.slo_burn[name] = dict(record)
            if record.get("state") == "firing":
                self.slo_firing.add(name)
            else:
                self.slo_firing.discard(name)
        elif kind == "incident.written":
            path = str(record.get("path", "?"))
            if path not in self.incidents:
                self.incidents.append(path)
        elif kind == "alert":
            self._add_alert(
                Alert(
                    rule=str(record.get("rule", "?")),
                    message=str(record.get("message", "")),
                    slot=record.get("slot"),
                    value=record.get("value"),
                    threshold=record.get("threshold"),
                )
            )
        for alert in self.watchdog.observe(record):
            self._add_alert(alert)

    def update_all(self, records) -> None:
        """Fold many records (a :meth:`ManifestTail.poll` batch)."""
        for record in records:
            self.update(record)

    def _on_slot(self, record: dict) -> None:
        if "wall_ms" in record:
            self.wall.observe(float(record["wall_ms"]))
        key = self._run_key(record)
        view = self.runs.get(key)
        if view is None:
            view = self.runs[key] = _RunView(str(record.get("algorithm", "?")))
        view.add_slot(record)

    @staticmethod
    def _run_key(record: dict) -> tuple:
        cell = record.get("cell")
        if isinstance(cell, list):  # JSON round-trips tuples as lists
            cell = tuple(cell)
        return (cell, record.get("run"))

    def _add_alert(self, alert: Alert) -> None:
        key = (alert.rule, alert.slot)
        if key in self._alert_keys:
            return
        self._alert_keys.add(key)
        self.alerts.append(alert)

    # ----- derived ------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        """Slot events folded so far, across every run."""
        return sum(view.slots for view in self.runs.values())

    @property
    def totals(self) -> dict[str, float]:
        """The running four-component (plus weighted total) cost sums."""
        totals = {"op": 0.0, "sq": 0.0, "rc": 0.0, "mg": 0.0, "total": 0.0}
        for view in self.runs.values():
            for key, value in view.costs.items():
                totals[key] += value
        return totals

    # ----- rendering ----------------------------------------------------------

    def render(self, *, title: str = "") -> str:
        """The dashboard as plain text (one frame of the watch loop)."""
        status = "COMPLETE" if self.done else ("LIVE" if self.started else "WAITING")
        lines = [f"repro-edge watch{f' - {title}' if title else ''}  [{status}]"]
        if self.config:
            shown = ", ".join(
                f"{key}={value}"
                for key, value in sorted(self.config.items())
                if value is not None and not callable(value)
            )
            lines.append(f"  config : {shown}")
        running = sum(1 for v in self.runs.values() if not v.finished)
        lines.append(
            f"  slots  : {self.total_slots} done across {len(self.runs)} run(s)"
            f" ({running} in flight), {self.events} events"
        )
        if self.wall.count:
            lines.append(
                "  wall   : "
                f"p50 {self.wall.percentile(0.50):.2f} ms  "
                f"p95 {self.wall.percentile(0.95):.2f} ms  "
                f"max {self.wall.maximum:.2f} ms"
            )
        totals = self.totals
        lines.append(
            "  cost   : "
            f"op {totals['op']:.3f}  sq {totals['sq']:.3f}  "
            f"rc {totals['rc']:.3f}  mg {totals['mg']:.3f}  "
            f"total {totals['total']:.3f}"
        )
        lines.append(
            "  solver : "
            f"{self.solver_iterations} iterations / {self.solver_solves} solves, "
            f"{self.fallbacks} fallback(s), "
            f"{self.circuit_opens} circuit-open(s)"
        )
        if self.ratio is not None and self.ratio_bound is not None:
            certified = (
                ""
                if self.ratio_certified is None
                else f"  certified: {self.ratio_certified}"
            )
            worst = (
                ""
                if self.ratio_worst is None
                else f"  worst prefix {self.ratio_worst:.4f}"
            )
            lines.append(
                f"  ratio  : {self.ratio:.4f} vs bound "
                f"{self.ratio_bound:.4f}{worst}{certified}"
            )
        else:
            lines.append("  ratio  : (no diag.ratio feed in this manifest)")
        if self.agg_slots:
            error = (
                ""
                if self.agg_error_worst is None
                else f"  worst gap {self.agg_error_worst:.2e}"
            )
            lines.append(
                f"  agg    : {self.agg_slots} slot(s), "
                f"{self.agg_cohorts} cohorts "
                f"({self.agg_reduction:.1f}x reduction), "
                f"error bound {self.agg_bound:.3f}{error}"
            )
        if self.service_slots:
            lines.append(
                "  svc    : "
                f"{self.service_slots} request(s)  "
                f"p50 {self.service_latency.percentile(0.50):.2f} ms  "
                f"p95 {self.service_latency.percentile(0.95):.2f} ms  "
                f"{self.service_misses} deadline miss(es)"
            )
        if self.phase_latency:
            ranked = sorted(
                self.phase_latency.items(),
                key=lambda kv: (-kv[1].percentile(0.95), kv[0]),
            )
            shown = "  ".join(
                f"{name} p95 {histogram.percentile(0.95):.2f} ms"
                for name, histogram in ranked[:3]
            )
            lines.append(f"  phases : {shown}")
        if self.slo_burn:
            firing = sorted(self.slo_firing)
            summary = "FIRING " + ", ".join(firing) if firing else "healthy"
            lines.append(
                f"  slo    : {len(self.slo_burn)} objective(s) tracked  "
                f"{summary}"
            )
            for name in firing[:MAX_LISTED]:
                burn = self.slo_burn.get(name, {})
                lines.append(
                    f"    [{name}] burn fast "
                    f"{float(burn.get('fast_burn', 0.0)):.1f}x  slow "
                    f"{float(burn.get('slow_burn', 0.0)):.1f}x  "
                    f"(budget {float(burn.get('budget', 0.0)):g})"
                )
        if self.incidents:
            lines.append(f"  incid  : {len(self.incidents)} bundle(s) written")
            for path in self.incidents[:MAX_LISTED]:
                lines.append(f"    {path}")
        if self.alerts:
            lines.append(f"  alerts : {len(self.alerts)}")
            for alert in self.alerts[:MAX_LISTED]:
                where = "" if alert.slot is None else f" slot {alert.slot}:"
                lines.append(f"    [{alert.rule}]{where} {alert.message}")
            if len(self.alerts) > MAX_LISTED:
                lines.append(f"    ... {len(self.alerts) - MAX_LISTED} more")
        else:
            lines.append("  alerts : none")
        for key, view in list(self.runs.items())[:MAX_LISTED]:
            state = "done" if view.finished else "running"
            lines.append(
                f"    {view.algorithm:20s} {view.slots:5d} slots  "
                f"total {view.costs['total']:12.3f}  [{state}]"
            )
        if len(self.runs) > MAX_LISTED:
            lines.append(f"    ... {len(self.runs) - MAX_LISTED} more run(s)")
        return "\n".join(lines)


def watch(
    path: str | Path,
    *,
    interval: float = 0.5,
    follow: bool = True,
    strict: bool = False,
    timeout: float | None = None,
    rules: "tuple[WatchdogRule, ...] | list | None" = None,
    stream=None,
) -> int:
    """Tail a manifest and render the live dashboard until the run ends.

    Args:
        path: the (possibly still-growing, possibly not-yet-existing)
            manifest file.
        interval: seconds between polls in follow mode.
        follow: keep polling until ``manifest_end`` arrives (or timeout /
            Ctrl-C); ``False`` renders the current state once and returns
            (the CLI's ``--once``).
        strict: exit nonzero when any watchdog alert fired.
        timeout: give up following after this many seconds.
        rules: watchdog rules to evaluate over the stream (default set
            when ``None``).
        stream: output text stream (defaults to ``sys.stdout``); frames
            are preceded by an ANSI clear when it is a TTY and separated
            by a blank line otherwise.

    Returns:
        Process exit code: 1 when ``strict`` and alerts fired, else 0.
    """
    out = stream if stream is not None else sys.stdout
    tail = ManifestTail(path)
    state = WatchState(rules)
    is_tty = bool(getattr(out, "isatty", lambda: False)())
    deadline = None if timeout is None else time.monotonic() + timeout
    first_frame = True
    try:
        while True:
            state.update_all(tail.poll())
            prefix = CLEAR_SCREEN if is_tty else ("" if first_frame else "\n")
            out.write(prefix + state.render(title=str(path)) + "\n")
            out.flush()
            first_frame = False
            if state.done or not follow:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        out.write("(watch interrupted)\n")
    if strict and state.alerts:
        return 1
    return 0
