"""Event sinks: stream telemetry events out of the process as they happen.

PR 3's manifest writer buffers every event in memory and serializes the
lot after the run ends — a crash loses everything and a multi-hour sweep
grows without bound. Sinks fix both: a :class:`MetricsRegistry` created
with ``sink=...`` forwards every event to the sink *at emission time*, so

* :class:`StreamingManifestWriter` appends manifest lines incrementally
  (``manifest_start`` first, then one line per event, metrics/spans/
  ``manifest_end`` at :meth:`~StreamingManifestWriter.finalize`) with a
  configurable flush policy — the file is a valid *partial* manifest at
  every instant (``read_manifest(path, strict=False)``) and a fully
  verifiable one after finalize;
* :class:`RingSink` keeps only the newest N records in memory with a
  dropped-record counter — the bounded companion for ad-hoc consumers;
* :class:`NullSink` discards records — the attachment point for pure
  event *observers* such as the watchdog
  (:class:`repro.telemetry.watchdog.WatchdogSink`).

Combined with ``MetricsRegistry(max_events=0)`` and the spine's
``keep_schedule=False`` mode, a streaming run is memory-bounded end to
end while losing no telemetry. :func:`streaming_manifest_session` wires
the whole stack up in one call. Enabling any of it never changes
computed results — sinks only observe the event stream.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Sequence

from .environment import environment_fingerprint
from .manifest import MANIFEST_FORMAT, _jsonify
from .metrics import MetricsRegistry, telemetry_session

#: Default number of emitted events between forced file flushes.
DEFAULT_FLUSH_EVERY = 64

#: Default maximum seconds a written event may sit unflushed.
DEFAULT_FLUSH_INTERVAL_S = 0.5


class EventSink:
    """The sink interface: receive event records, flush, close.

    Subclasses override :meth:`emit`; the flush/close hooks default to
    no-ops so purely in-memory sinks stay trivial.
    """

    def emit(self, record: dict) -> None:
        """Receive one event record (a plain JSON-able dict with ``type``)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Force any buffered output out (no-op by default)."""

    def maybe_flush(self) -> None:
        """Flush if the sink's own time policy says so (no-op by default)."""

    def close(self) -> None:
        """Release resources; the sink accepts no records afterwards."""


class NullSink(EventSink):
    """A sink that discards every record.

    Useful as the inner sink of a wrapper that only *observes* the stream
    (e.g. a watchdog evaluating rules without writing a manifest).
    """

    def emit(self, record: dict) -> None:
        """Discard the record."""


class RingSink(EventSink):
    """A bounded in-memory sink: keeps the newest ``capacity`` records.

    Attributes:
        records: the retained records, oldest first.
        emitted: total records ever emitted.
        dropped: records evicted after the ring filled up.
    """

    def __init__(self, capacity: int = 1024) -> None:
        """Create the ring with room for ``capacity`` records."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.records: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0

    def emit(self, record: dict) -> None:
        """Retain the record, evicting (and counting) the oldest when full."""
        self.emitted += 1
        if len(self.records) >= self.capacity:
            self.dropped += 1
            if self.capacity == 0:
                return
        self.records.append(record)


class StreamingManifestWriter(EventSink):
    """Append a run manifest incrementally, flushing on a configurable policy.

    The file is written in the exact layout of
    :func:`repro.telemetry.manifest.write_manifest` — ``manifest_start``
    immediately at construction (and flushed, so a watcher sees the config
    at once), one line per emitted event, then ``metrics``/``spans``/
    ``manifest_end`` at :meth:`finalize`. Until finalize the file is a
    readable *partial* manifest: ``read_manifest(path, strict=False)``
    returns every complete record with ``truncated=True`` — which is what
    ``repro-edge watch`` tails.

    Flush policy: an emitted event is flushed to disk once either
    ``flush_every`` events accumulated since the last flush or
    ``flush_interval_s`` seconds elapsed (checked at emit time and by
    :meth:`maybe_flush`, which the spine calls once per slot).

    Attributes:
        path: the manifest file being written.
        events_written: event lines emitted so far (the eventual
            ``manifest_end`` count).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        config: dict | None = None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        flush_interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
    ) -> None:
        """Open (truncate) ``path`` and write the ``manifest_start`` line."""
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = flush_every
        self.flush_interval_s = float(flush_interval_s)
        self.events_written = 0
        self._pending = 0
        self._closed = False
        self._last_flush = time.monotonic()
        self._handle = self.path.open("w", encoding="utf-8")
        self._write(
            {
                "type": "manifest_start",
                "format": MANIFEST_FORMAT,
                "created_unix": time.time(),
                "config": config or {},
                "environment": environment_fingerprint(),
                "streaming": True,
            }
        )
        self.flush()

    # ----- sink interface -----------------------------------------------------

    def emit(self, record: dict) -> None:
        """Append one event line; flush when the policy says so."""
        if self._closed:
            raise ValueError(f"{self.path}: manifest already finalized")
        self._write(record)
        self.events_written += 1
        self._pending += 1
        if (
            self._pending >= self.flush_every
            or time.monotonic() - self._last_flush >= self.flush_interval_s
        ):
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS so a concurrent reader sees them."""
        if not self._closed:
            self._handle.flush()
        self._pending = 0
        self._last_flush = time.monotonic()

    def maybe_flush(self) -> None:
        """Flush pending lines once the time interval has elapsed."""
        if (
            self._pending
            and time.monotonic() - self._last_flush >= self.flush_interval_s
        ):
            self.flush()

    def close(self) -> None:
        """Finalize without a registry (empty metrics/spans sections)."""
        self.finalize(None)

    # ----- manifest completion ------------------------------------------------

    def finalize(self, registry: MetricsRegistry | None = None) -> Path:
        """Write the trailing metrics/spans/``manifest_end`` lines and close.

        Args:
            registry: the session registry whose metric aggregates and
                span trees complete the manifest; ``None`` writes empty
                sections (events remain — the file still verifies).

        Returns:
            The manifest path. Idempotent: later calls are no-ops.
        """
        if self._closed:
            return self.path
        snap = (
            registry.snapshot()
            if registry is not None
            else {"counters": {}, "gauges": {}, "histograms": {}, "spans": []}
        )
        self._write(
            {
                "type": "metrics",
                "counters": snap["counters"],
                "gauges": snap["gauges"],
                "histograms": snap["histograms"],
            }
        )
        self._write({"type": "spans", "spans": snap["spans"]})
        self._write({"type": "manifest_end", "events": self.events_written})
        self._handle.flush()
        self._handle.close()
        self._closed = True
        return self.path

    def __enter__(self) -> "StreamingManifestWriter":
        """Context-manager entry: the open writer itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Finalize on exit (no-op if already finalized explicitly)."""
        self.close()

    # ----- internals ----------------------------------------------------------

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, default=_jsonify) + "\n")


@contextmanager
def streaming_manifest_session(
    path: str | Path,
    *,
    config: dict | None = None,
    max_events: int = 0,
    flush_every: int = DEFAULT_FLUSH_EVERY,
    flush_interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
    watchdog_rules: "Sequence | None" = None,
    slo=None,
    recorder=None,
) -> Iterator[MetricsRegistry]:
    """Run a block under a registry that streams its events to a manifest.

    The one-call form of the streaming stack::

        with streaming_manifest_session("run.jsonl", config=cfg) as registry:
            run_fig2(scale)             # events appear in run.jsonl live

    A fresh registry is installed as the active one (like
    :func:`repro.telemetry.telemetry_session`); its events stream through
    a :class:`StreamingManifestWriter` — optionally wrapped in a
    :class:`repro.telemetry.watchdog.WatchdogSink` when ``watchdog_rules``
    is given, so rule alerts land in the manifest as ``alert`` events.
    The manifest is finalized on exit (exceptions included: a crashed
    block still leaves every streamed event on disk).

    Args:
        path: the manifest file to stream into.
        config: JSON-able run configuration for ``manifest_start``.
        max_events: in-memory event bound for the registry — default 0
            (keep nothing in memory; the manifest holds the stream), the
            memory-bounded mode. Pass ``None`` to also keep every event
            in memory.
        flush_every, flush_interval_s: the writer's flush policy.
        watchdog_rules: optional rule instances for a live watchdog.
        slo: optional SLO plane for the watchdog sink — a
            :class:`repro.telemetry.slo.SloTracker`, ``True`` (defaults),
            or objectives (see :class:`repro.telemetry.watchdog.WatchdogSink`).
            Implies a watchdog sink even without ``watchdog_rules``.
        recorder: optional :class:`repro.telemetry.flight.FlightRecorder`
            — the stream is teed into it (outermost, so re-emitted
            watchdog/SLO alerts trigger incident dumps).
    """
    writer = StreamingManifestWriter(
        path,
        config=config,
        flush_every=flush_every,
        flush_interval_s=flush_interval_s,
    )
    sink: EventSink = writer
    watchdog_sink = None
    if watchdog_rules is not None or slo is not None:
        from .watchdog import WatchdogSink  # lazy: watchdog builds on sinks

        watchdog_sink = WatchdogSink(writer, rules=watchdog_rules, slo=slo)
        sink = watchdog_sink
    if recorder is not None:
        from .flight import FlightRecorderSink  # lazy: flight builds on sinks

        sink = FlightRecorderSink(sink, recorder)
    registry = MetricsRegistry(sink=sink, max_events=max_events)
    if watchdog_sink is not None:
        watchdog_sink.bind(registry)
    try:
        with telemetry_session(registry):
            yield registry
    finally:
        writer.finalize(registry)
