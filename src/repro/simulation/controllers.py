"""Controller forms of the paper's algorithm.

The baselines keep their controller forms next to their batch forms (in
:mod:`repro.baselines`); the regularized algorithm's controller lives here
because :mod:`repro.core` sits below the simulation layer in the import
graph and must not depend on it at module scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.regularization import OnlineRegularizedAllocator
from ..solvers.base import SolverResult
from .observations import SlotObservation, SystemDescription, single_slot_instance


@dataclass
class RegularizedController:
    """Streaming form of :class:`OnlineRegularizedAllocator`.

    Carries x*_{t-1} as internal state; each observation triggers one P2
    solve. Identical decisions to the batch algorithm by construction (P2
    for slot t depends only on slot-t observations and x*_{t-1}) — indeed
    the batch ``run()`` *is* this controller driven over the instance's
    observation stream. Warm starting engages from the second observed
    slot onward, exactly as in the batch loop, and every solve is appended
    to ``algorithm.last_solves`` so solver diagnostics (dual prices,
    iteration counts) keep working on streamed runs.
    """

    system: SystemDescription
    algorithm: OnlineRegularizedAllocator = field(
        default_factory=OnlineRegularizedAllocator
    )
    name: str = "online-approx (streaming)"
    #: Solver result of the most recent observed slot (for SolverStatsHook).
    last_result: SolverResult | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._x_prev = self.system.zero_allocation()
        self._slots_seen = 0

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Solve P2 for the observed slot and advance the internal state."""
        instance = single_slot_instance(self.system, observation)
        x_opt, result = self.algorithm.step(
            instance,
            0,
            self._x_prev,
            warm=self.algorithm.warm_start and self._slots_seen > 0,
        )
        self.algorithm.last_solves.append(result)
        self.last_result = result
        self._x_prev = x_opt
        self._slots_seen += 1
        return x_opt

    def aggregated(self, config=None) -> "object":
        """The cohort-aggregated form of this controller.

        Returns an :class:`repro.aggregate.AggregatedController` sharing
        this controller's system and algorithm: users are clustered into
        (station, workload-bucket) cohorts, one reduced P2 is solved per
        slot — optionally sharded across processes — and the solution is
        split back to users (docs/SCALING.md).
        """
        from ..aggregate.config import AggregationConfig
        from ..aggregate.controller import AggregatedController

        return AggregatedController(
            system=self.system,
            algorithm=self.algorithm,
            config=config if config is not None else AggregationConfig(),
        )

    def reset(self) -> None:
        """Drop state: the next observation starts a fresh horizon."""
        self._x_prev = self.system.zero_allocation()
        self._slots_seen = 0
        self.algorithm.last_solves = []
        self.algorithm.last_certificates = []
        self.last_result = None
        # The fallback wrapper's circuit breaker is scoped "per run": a
        # primary declared broken in one run gets a fresh chance in the
        # next, and serial/parallel sweeps see identical breaker state at
        # every run start regardless of what earlier cells did.
        reset_circuit = getattr(
            self.algorithm._resolve_backend(), "reset_circuit", None
        )
        if reset_circuit is not None:
            reset_circuit()

    def get_state(self) -> tuple[np.ndarray, int]:
        """Snapshot (x*_{t-1}, slots seen); solver diagnostics are not kept."""
        return (self._x_prev.copy(), self._slots_seen)

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        x_prev, slots_seen = state  # type: ignore[misc]
        self._x_prev = np.asarray(x_prev, dtype=float).copy()
        self._slots_seen = int(slots_seen)
