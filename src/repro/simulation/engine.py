"""The discrete-time simulator: run algorithms over instances, score them.

"We built a discrete-time simulator in Python to validate the performance
of the proposed online resource allocation algorithm" (Section V). The
engine runs any :class:`AllocationAlgorithm` on a :class:`ProblemInstance`,
verifies feasibility of what came back, accounts costs with the shared cost
model, and assembles paper-style comparisons normalized by offline-opt.
"""

from __future__ import annotations

import time

from ..baselines.base import AllocationAlgorithm
from ..core.costs import cost_breakdown
from ..core.problem import ProblemInstance
from .results import Comparison, RunResult


def run_algorithm(
    algorithm: AllocationAlgorithm,
    instance: ProblemInstance,
    *,
    require_feasible: bool = True,
    feasibility_tol: float = 1e-5,
) -> RunResult:
    """Run one algorithm on one instance and account its costs.

    Raises ValueError when the algorithm returns an infeasible schedule and
    ``require_feasible`` is set (all algorithms in this project are supposed
    to be feasible by construction; this is the engine's safety net).
    """
    start = time.perf_counter()
    schedule = algorithm.run(instance)
    elapsed = time.perf_counter() - start
    report = schedule.feasibility_report(instance)
    if require_feasible and report.worst() > feasibility_tol:
        raise ValueError(
            f"{algorithm.name} returned an infeasible schedule: "
            f"demand {report.demand_violation:.3e}, "
            f"capacity {report.capacity_violation:.3e}, "
            f"negativity {report.negativity_violation:.3e}"
        )
    return RunResult(
        algorithm=algorithm.name,
        schedule=schedule,
        breakdown=cost_breakdown(schedule, instance),
        feasibility=report,
        wall_time_s=elapsed,
    )


def _run_algorithm_cell(
    work: tuple[AllocationAlgorithm, ProblemInstance, bool]
) -> RunResult:
    """Module-level cell body so the process pool can pickle it."""
    algorithm, instance, require_feasible = work
    return run_algorithm(algorithm, instance, require_feasible=require_feasible)


def compare_algorithms(
    algorithms: list[AllocationAlgorithm],
    instance: ProblemInstance,
    *,
    baseline: str = "offline-opt",
    require_feasible: bool = True,
    workers: int | None = 1,
) -> Comparison:
    """Run every algorithm on the same instance; normalize by ``baseline``.

    The baseline must be among the algorithms (the paper normalizes
    everything by offline-opt). ``workers > 1`` fans the per-algorithm runs
    across a process pool — useful for a one-off comparison on a large
    instance; whole sweeps parallelize better per (instance, repetition)
    cell via :class:`repro.parallel.SweepExecutor`.
    """
    if workers is None or workers > 1:
        # Deferred import: repro.parallel imports this module.
        from ..parallel import SweepExecutor

        cell_results = SweepExecutor(max_workers=workers).map(
            _run_algorithm_cell,
            [(algorithm, instance, require_feasible) for algorithm in algorithms],
            keys=[algorithm.name for algorithm in algorithms],
        )
        failed = [r for r in cell_results if not r.ok]
        if failed:
            raise ValueError(
                f"{len(failed)} algorithm(s) failed: "
                + "; ".join(f"{r.key}: {r.error}" for r in failed)
            )
        results = {r.key: r.value for r in cell_results}
    else:
        results = {
            algorithm.name: run_algorithm(
                algorithm, instance, require_feasible=require_feasible
            )
            for algorithm in algorithms
        }
    return Comparison(results=results, baseline=baseline)
