"""The discrete-time simulator: run algorithms over instances, score them.

"We built a discrete-time simulator in Python to validate the performance
of the proposed online resource allocation algorithm" (Section V). The
engine resolves any :class:`AllocationAlgorithm` to its controller form
(:func:`repro.simulation.spine.controller_for`), drives it over the
instance's observation stream with :func:`repro.simulation.spine.simulate`
— the single per-slot loop shared by batch and streamed execution —
accounts costs incrementally, verifies feasibility of what came back, and
assembles paper-style comparisons normalized by offline-opt.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable

from ..core.problem import ProblemInstance
from ..parallel.executor import SweepExecutor
from ..telemetry import get_registry
from .hooks import SlotHook
from .observations import SystemDescription, iter_observations
from .results import Comparison, RunResult
from .spine import controller_for, simulate

if TYPE_CHECKING:  # the baselines build on this package; type-only import
    from ..baselines.base import AllocationAlgorithm


def run_algorithm(
    algorithm: "AllocationAlgorithm",
    instance: ProblemInstance,
    *,
    require_feasible: bool = True,
    feasibility_tol: float = 1e-5,
    hooks: Iterable[SlotHook] = (),
    keep_schedule: bool = True,
) -> RunResult:
    """Run one algorithm on one instance and account its costs.

    The algorithm is resolved to its controller form and driven through the
    streaming spine; ``hooks`` observe every slot, and
    ``keep_schedule=False`` drops each slot's allocation after accounting
    (``result.schedule`` is then ``None``) so memory stays bounded on long
    horizons.

    Raises ValueError when the algorithm returns an infeasible schedule and
    ``require_feasible`` is set (all algorithms in this project are supposed
    to be feasible by construction; this is the engine's safety net).
    """
    telemetry = get_registry()
    run_tags = (
        {"run": telemetry.next_run_id(), "algorithm": algorithm.name}
        if telemetry.enabled
        else {}
    )
    with telemetry.context(**run_tags), telemetry.span("run"):
        start = time.perf_counter()
        system = SystemDescription.from_instance(instance)
        controller = controller_for(algorithm, instance, system)
        sim = simulate(
            controller,
            iter_observations(instance),
            system,
            hooks=hooks,
            keep_schedule=keep_schedule,
        )
        elapsed = time.perf_counter() - start
        if telemetry.enabled:
            telemetry.event(
                "run_end",
                slots=sim.total_slots,
                wall_s=elapsed,
                totals=sim.breakdown.totals(),
            )
            # Run boundaries are the natural checkpoints of a streaming
            # manifest: force them to disk so a watcher never sees a run's
            # slots without its run_end for longer than one run.
            telemetry.flush()
    report = sim.feasibility
    if require_feasible and report.worst() > feasibility_tol:
        raise ValueError(
            f"{algorithm.name} returned an infeasible schedule: "
            f"demand {report.demand_violation:.3e}, "
            f"capacity {report.capacity_violation:.3e}, "
            f"negativity {report.negativity_violation:.3e}"
        )
    return RunResult(
        algorithm=algorithm.name,
        schedule=sim.schedule,
        breakdown=sim.breakdown,
        feasibility=report,
        wall_time_s=elapsed,
    )


def _run_algorithm_cell(
    work: "tuple[AllocationAlgorithm, ProblemInstance, bool, bool]",
) -> RunResult:
    """Module-level cell body so the process pool can pickle it."""
    algorithm, instance, require_feasible, keep_schedule = work
    return run_algorithm(
        algorithm,
        instance,
        require_feasible=require_feasible,
        keep_schedule=keep_schedule,
    )


def compare_algorithms(
    algorithms: "list[AllocationAlgorithm]",
    instance: ProblemInstance,
    *,
    baseline: str = "offline-opt",
    require_feasible: bool = True,
    workers: int | None = 1,
    keep_schedule: bool = True,
) -> Comparison:
    """Run every algorithm on the same instance; normalize by ``baseline``.

    The baseline must be among the algorithms (the paper normalizes
    everything by offline-opt). ``workers > 1`` fans the per-algorithm runs
    across a process pool — useful for a one-off comparison on a large
    instance; whole sweeps parallelize better per (instance, repetition)
    cell via :class:`repro.parallel.SweepExecutor`. ``keep_schedule=False``
    drops per-slot allocations after cost accounting (ratios only need the
    cost totals).
    """
    if workers is None or workers > 1:
        cell_results = SweepExecutor(max_workers=workers).map(
            _run_algorithm_cell,
            [
                (algorithm, instance, require_feasible, keep_schedule)
                for algorithm in algorithms
            ],
            keys=[algorithm.name for algorithm in algorithms],
        )
        failed = [r for r in cell_results if not r.ok]
        if failed:
            raise ValueError(
                f"{len(failed)} algorithm(s) failed: "
                + "; ".join(f"{r.key}: {r.error}" for r in failed)
            )
        results = {r.key: r.value for r in cell_results}
    else:
        results = {
            algorithm.name: run_algorithm(
                algorithm,
                instance,
                require_feasible=require_feasible,
                keep_schedule=keep_schedule,
            )
            for algorithm in algorithms
        }
    return Comparison(results=results, baseline=baseline)
