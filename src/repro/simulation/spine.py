"""The streaming execution spine: one loop for every algorithm.

The paper's setting is inherently causal — observe slot t, decide x*_t,
pay the costs, move on. :func:`simulate` is the single implementation of
that loop: it drives any :class:`OnlineController` over an observation
stream, accounts all four paper costs incrementally
(:class:`repro.simulation.accounting.CostAccumulator`), tracks feasibility
residuals, calls pluggable per-slot hooks, and supports checkpoint/resume
plus a memory-bounded mode that never materializes the (T, I, J) schedule.

Every batch ``run()`` in the project (the paper's algorithm and all
baselines) is a thin adapter over this spine, so "batch" and "streamed"
execution are the same code path by construction. The per-slot body
lives in :class:`SlotStepper` so callers that do not own the observation
stream — the live allocation service in :mod:`repro.service` — drive the
identical accounting/hook/telemetry path one slot at a time. Generic
controller adapters (:class:`PerSlotController`,
:class:`RecomputeController`, :class:`ScheduleController`) live here so
algorithm modules can build their controller forms without import
cycles; see docs/ENGINE.md and docs/SERVING.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..core.allocation import AllocationSchedule, FeasibilityReport
from ..core.costs import CostBreakdown
from ..core.problem import ProblemInstance
from ..telemetry import (
    active_profile,
    active_recorder,
    get_registry,
    phase,
    trace_span,
)
from .accounting import AccumulatorState, CostAccumulator, SlotCosts
from .hooks import SlotHook
from .observations import (
    OnlineController,
    SlotObservation,
    SystemDescription,
    iter_observations,
)


@dataclass(frozen=True)
class SimulationCheckpoint:
    """Everything needed to continue an interrupted run.

    Attributes:
        next_slot: how many slots have been processed (the resume point).
        controller_state: the controller's :meth:`get_state` snapshot, or
            ``None`` when the controller does not support checkpointing.
        accumulator_state: the cost accumulator snapshot.
        residuals: running (demand, capacity, negativity) maxima.
    """

    next_slot: int
    controller_state: object | None
    accumulator_state: AccumulatorState
    residuals: tuple[float, float, float]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one :func:`simulate` call.

    Attributes:
        schedule: the stacked (T, I, J) trajectory of the slots processed
            *by this call*, or ``None`` in memory-bounded mode
            (``keep_schedule=False``).
        breakdown: per-slot cost breakdown of the *whole* trajectory so far
            (including slots accounted before a resume).
        feasibility: worst constraint violations across the whole trajectory.
        slots: slots processed by this call.
        total_slots: slots accounted in total (resume-aware).
        wall_time_s: wall-clock seconds spent in this call's loop.
        checkpoint: state snapshot for resuming after the last slot.
    """

    schedule: AllocationSchedule | None
    breakdown: CostBreakdown
    feasibility: FeasibilityReport
    slots: int
    total_slots: int
    wall_time_s: float
    checkpoint: SimulationCheckpoint

    @property
    def total_cost(self) -> float:
        """The weighted P0 objective accumulated so far."""
        return self.breakdown.total


class SlotStepper:
    """The per-slot body of :func:`simulate`, one step at a time.

    A stepper owns everything :func:`simulate`'s loop used to own — the
    controller, the incremental cost accumulator, feasibility-residual
    maxima, the optional schedule buffer, hooks and per-slot telemetry —
    but leaves the *stream* to the caller. :func:`simulate` drives it
    from an iterable; the live service (:mod:`repro.service`) drives it
    from network updates. Both produce identical numbers because this is
    the only implementation of the slot body.

    Lifecycle: construct (resets or resumes the controller), then call
    :meth:`step` once per observation; :meth:`finish` fires the run-end
    hooks and returns the :class:`SimulationResult`. :meth:`result` and
    :meth:`checkpoint` can be called at any time for a live snapshot.
    """

    def __init__(
        self,
        controller: OnlineController,
        system: SystemDescription,
        *,
        hooks: Iterable[SlotHook] = (),
        keep_schedule: bool = True,
        resume_from: SimulationCheckpoint | None = None,
        recorder: "object | None" = None,
    ) -> None:
        """Create the stepper (see the class docstring for the lifecycle).

        Args:
            recorder: an explicit
                :class:`repro.telemetry.flight.FlightRecorder` this
                stepper snapshots into. When ``None`` (the default) the
                process-wide recorder installed by
                :func:`repro.telemetry.flight.flight_session` is used,
                if any — so batch runs opt in via the CLI without
                threading the recorder through every layer.
        """
        self.controller = controller
        self.system = system
        self.hooks = tuple(hooks)
        self.keep_schedule = keep_schedule
        self._recorder = recorder
        self.accumulator = CostAccumulator(system)
        if resume_from is None:
            controller.reset()
            self._residual_demand = 0.0
            self._residual_capacity = 0.0
            self._residual_negativity = 0.0
        else:
            set_state = getattr(controller, "set_state", None)
            if set_state is None:
                raise ValueError(
                    f"{type(controller).__name__} cannot resume: it has no set_state()"
                )
            set_state(resume_from.controller_state)
            self.accumulator.set_state(resume_from.accumulator_state)
            (
                self._residual_demand,
                self._residual_capacity,
                self._residual_negativity,
            ) = resume_from.residuals
        self._workloads = np.asarray(system.workloads, dtype=float)
        self._capacities = np.asarray(system.capacities, dtype=float)
        self._slots: list[np.ndarray] = []
        self.processed = 0
        self._started = False

    def start(self) -> None:
        """Fire the run-start hooks once (idempotent; ``step`` calls it)."""
        if self._started:
            return
        self._started = True
        with phase("spine.start"):
            for hook in self.hooks:
                hook.on_run_start(self.system, self.controller)

    def step(self, observation: SlotObservation) -> tuple[np.ndarray, SlotCosts]:
        """Process one slot: decide, account, observe, track residuals."""
        self.start()
        telemetry = get_registry()
        observing = telemetry.enabled
        recorder = self._recorder if self._recorder is not None else active_recorder()
        timing = observing or recorder is not None
        for hook in self.hooks:
            hook.on_slot_start(observation)
        # The flight recorder snapshots the *pre-solve* state (x*_{t-1},
        # warm caches, accumulator totals) before the timed window, so
        # slot.wall_ms keeps meaning "solve + accounting" exactly.
        if recorder is not None:
            recorder.begin_slot(self, observation)
        # Per-slot phase attribution: snapshot the active profile's totals
        # for this thread before the solve, diff after — the window covers
        # exactly what slot.wall_ms covers, so the two reconcile.
        profile = active_profile() if observing else None
        mark = profile.marker() if profile is not None else None
        if timing:
            slot_start = time.perf_counter()
        x_t = np.asarray(self.controller.observe(observation), dtype=float)
        with phase("spine.account"):
            costs = self.accumulator.update(observation, x_t)
        slot_ms = 0.0
        if timing:
            slot_ms = (time.perf_counter() - slot_start) * 1000.0
        if observing:
            telemetry.histogram("slot.wall_ms").observe(slot_ms)
            telemetry.event(
                "slot",
                slot=observation.slot,
                wall_ms=slot_ms,
                op=costs.operation,
                sq=costs.service_quality,
                rc=costs.reconfiguration,
                mg=costs.migration,
                total=costs.total,
            )
            if profile is not None:
                phases = profile.since(mark)
                attributed = sum(phases.values())
                # The remainder keeps per-slot phase sums equal to the
                # slot wall by construction — honest "none of the named
                # phases" time instead of silently missing milliseconds.
                phases["spine.unattributed"] = max(0.0, slot_ms - attributed)
                telemetry.event(
                    "prof.phases",
                    slot=observation.slot,
                    wall_ms=slot_ms,
                    phases=phases,
                )
                for name in sorted(phases):
                    telemetry.histogram("prof.phase_ms." + name).observe(
                        phases[name]
                    )
            # A streaming sink flushes every N events; this per-slot
            # nudge makes its *time* policy effective too, so a
            # watcher's staleness is bounded by the flush interval
            # even when slots are slow and events sparse.
            telemetry.maybe_flush()
        if recorder is not None:
            recorder.end_slot(self, observation, costs, slot_ms)
        self._residual_demand = max(
            self._residual_demand, float((self._workloads - x_t.sum(axis=0)).max())
        )
        self._residual_capacity = max(
            self._residual_capacity, float((x_t.sum(axis=1) - self._capacities).max())
        )
        self._residual_negativity = max(self._residual_negativity, float((-x_t).max()))
        if self.keep_schedule:
            self._slots.append(np.array(x_t, dtype=float))
        for hook in self.hooks:
            hook.on_slot_end(observation, x_t, costs)
        self.processed += 1
        return x_t, costs

    @property
    def residuals(self) -> tuple[float, float, float]:
        """Running (demand, capacity, negativity) violation maxima."""
        return (
            self._residual_demand,
            self._residual_capacity,
            self._residual_negativity,
        )

    def checkpoint(self) -> SimulationCheckpoint:
        """State snapshot sufficient to resume after the last slot."""
        with phase("spine.checkpoint"):
            get_state = getattr(self.controller, "get_state", None)
            return SimulationCheckpoint(
                next_slot=self.accumulator.num_slots,
                controller_state=get_state() if get_state is not None else None,
                accumulator_state=self.accumulator.get_state(),
                residuals=self.residuals,
            )

    def feasibility(self) -> FeasibilityReport:
        """Worst constraint violations seen so far (clipped at zero)."""
        return FeasibilityReport(
            demand_violation=max(0.0, self._residual_demand),
            capacity_violation=max(0.0, self._residual_capacity),
            negativity_violation=max(0.0, self._residual_negativity),
        )

    def result(self, wall_time_s: float = 0.0) -> SimulationResult:
        """Build a :class:`SimulationResult` from the current state."""
        return SimulationResult(
            schedule=AllocationSchedule.from_slots(self._slots)
            if self._slots
            else None,
            breakdown=self.accumulator.breakdown(),
            feasibility=self.feasibility(),
            slots=self.processed,
            total_slots=self.accumulator.num_slots,
            wall_time_s=wall_time_s,
            checkpoint=self.checkpoint(),
        )

    def finish(self, wall_time_s: float = 0.0) -> SimulationResult:
        """Close the run: require at least one slot, fire run-end hooks."""
        if self.accumulator.num_slots == 0:
            raise ValueError("simulate() needs at least one observation")
        for hook in self.hooks:
            hook.on_run_end(self.processed)
        return self.result(wall_time_s)


def simulate(
    controller: OnlineController,
    observations: Iterable[SlotObservation],
    system: SystemDescription,
    *,
    hooks: Iterable[SlotHook] = (),
    keep_schedule: bool = True,
    resume_from: SimulationCheckpoint | None = None,
    max_slots: int | None = None,
    aggregation: object | None = None,
) -> SimulationResult:
    """Drive a controller over an observation stream, one slot at a time.

    The controller never sees more than one slot; costs are accounted
    incrementally from ``(x_t, x_{t-1})`` so the run works on arbitrarily
    long streams.

    Args:
        controller: the decision maker (``reset()`` is called unless
            resuming).
        observations: the slot stream — a list, or a lazy generator such as
            :func:`repro.simulation.observations.iter_observations` for
            memory-bounded runs.
        system: the time-invariant system description (cost prices,
            capacities, weights).
        hooks: per-slot observers (:class:`SlotHook` instances).
        keep_schedule: when ``False``, each slot's allocation is dropped
            after accounting — memory stays O(I·J) regardless of horizon,
            and ``result.schedule`` is ``None``.
        resume_from: a previous result's ``checkpoint`` to continue from;
            the supplied ``observations`` must start at the checkpoint's
            ``next_slot``.
        max_slots: stop (checkpointably) after this many slots of the
            stream, leaving the rest unconsumed.
        aggregation: an :class:`repro.aggregate.AggregationConfig`; when
            set, the controller is converted to its cohort-aggregated form
            via its ``aggregated()`` method before the run (only
            controllers exposing one — the regularized controller —
            support this). See docs/SCALING.md.

    Returns:
        The :class:`SimulationResult`, whose ``checkpoint`` can seed a
        later ``resume_from``.
    """
    if aggregation is not None:
        aggregated = getattr(controller, "aggregated", None)
        if aggregated is None:
            raise ValueError(
                f"{type(controller).__name__} does not support aggregation= "
                "(no aggregated() method); construct the aggregated "
                "controller explicitly"
            )
        controller = aggregated(aggregation)
    stepper = SlotStepper(
        controller,
        system,
        hooks=hooks,
        keep_schedule=keep_schedule,
        resume_from=resume_from,
    )
    stepper.start()
    start = time.perf_counter()
    # trace_span == registry.span when no trace context is active (the
    # default); under --trace-context it links this run into the trace.
    with trace_span("simulate", controller=getattr(controller, "name", "?")):
        stream = iter(observations)
        while max_slots is None or stepper.processed < max_slots:
            observation = next(stream, None)
            if observation is None:
                break
            stepper.step(observation)
    elapsed = time.perf_counter() - start
    return stepper.finish(elapsed)


# ----- generic controller adapters -------------------------------------------


@dataclass
class PerSlotController:
    """Adapter: a per-slot decision function becomes a controller.

    ``solve(observation, x_prev)`` returns the (I, J) decision; the adapter
    carries x*_{t-1} (zeros before the first slot) — the exact contract of
    the old ``run_per_slot`` batch loop, now expressed on the spine.
    """

    system: SystemDescription
    solve: Callable[[SlotObservation, np.ndarray], np.ndarray]
    name: str = "per-slot"

    def __post_init__(self) -> None:
        self._x_prev = self.system.zero_allocation()

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Delegate to the wrapped solver and advance the carried state."""
        x_t = np.asarray(self.solve(observation, self._x_prev), dtype=float)
        self._x_prev = x_t
        return x_t

    def reset(self) -> None:
        """Drop state: the next observation starts a fresh horizon."""
        self._x_prev = self.system.zero_allocation()

    def get_state(self) -> np.ndarray:
        """Snapshot x*_{t-1}."""
        return self._x_prev.copy()

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self._x_prev = np.asarray(state, dtype=float).copy()


@dataclass
class RecomputeController:
    """Adapter for hold-style policies: recompute sometimes, hold otherwise.

    ``solve(observation)`` produces a fresh allocation whenever due —
    every ``period`` slots, or only on the very first slot when ``period``
    is ``None`` (the decide-once static policy).
    """

    system: SystemDescription
    solve: Callable[[SlotObservation], np.ndarray]
    period: int | None = None
    name: str = "recompute"

    def __post_init__(self) -> None:
        if self.period is not None and self.period < 1:
            raise ValueError("period must be at least 1")
        self._current: np.ndarray | None = None
        self._seen = 0

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Recompute when due, otherwise hold the previous allocation."""
        due = self._current is None or (
            self.period is not None and self._seen % self.period == 0
        )
        if due:
            self._current = np.asarray(self.solve(observation), dtype=float)
        self._seen += 1
        return self._current

    def reset(self) -> None:
        """Drop state: the next observation recomputes from scratch."""
        self._current = None
        self._seen = 0

    def get_state(self) -> tuple[np.ndarray | None, int]:
        """Snapshot the held allocation and the slot counter."""
        current = None if self._current is None else self._current.copy()
        return (current, self._seen)

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        current, seen = state  # type: ignore[misc]
        self._current = None if current is None else np.asarray(current, dtype=float)
        self._seen = int(seen)


@dataclass
class ScheduleController:
    """Replay a precomputed (T, I, J) plan one slot at a time.

    This is the *privileged* adapter: the plan may have been computed with
    full-horizon knowledge (offline-opt), so feeding it through the spine
    does not certify causality — it unifies execution and accounting only.
    """

    plan: np.ndarray
    name: str = "schedule"

    def __post_init__(self) -> None:
        self.plan = np.asarray(self.plan, dtype=float)
        if self.plan.ndim != 3:
            raise ValueError("plan must have shape (T, I, J)")
        self._cursor = 0

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Emit the next planned slot."""
        if self._cursor >= self.plan.shape[0]:
            raise ValueError("plan exhausted: more observations than planned slots")
        x_t = self.plan[self._cursor]
        self._cursor += 1
        return x_t

    def reset(self) -> None:
        """Rewind to the first planned slot."""
        self._cursor = 0

    def get_state(self) -> int:
        """Snapshot the replay cursor."""
        return self._cursor

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self._cursor = int(state)


# ----- algorithm <-> controller bridging -------------------------------------


def controller_for(
    algorithm: object,
    instance: ProblemInstance | None = None,
    system: SystemDescription | None = None,
) -> OnlineController:
    """The controller form of an algorithm.

    Resolution order:

    1. ``algorithm.as_controller(system)`` — the causal form (sees only
       the observation stream);
    2. ``algorithm.as_instance_controller(instance)`` — the privileged
       form for algorithms that legitimately need (some of) the future,
       e.g. lookahead windows or the offline optimum;
    3. fallback: run the batch ``algorithm.run(instance)`` once and replay
       its schedule through a :class:`ScheduleController`.

    Algorithms whose ``run()`` delegates to the spine MUST implement one of
    the first two forms, otherwise the fallback would recurse.
    """
    if system is None:
        if instance is None:
            raise ValueError("need an instance or a system description")
        system = SystemDescription.from_instance(instance)
    as_controller = getattr(algorithm, "as_controller", None)
    if as_controller is not None:
        return as_controller(system)
    as_instance_controller = getattr(algorithm, "as_instance_controller", None)
    if as_instance_controller is not None:
        if instance is None:
            raise ValueError(
                f"{getattr(algorithm, 'name', type(algorithm).__name__)} needs the "
                "full instance for its controller form"
            )
        return as_instance_controller(instance)
    if instance is None:
        raise ValueError(
            f"{getattr(algorithm, 'name', type(algorithm).__name__)} has no "
            "controller form and no instance was supplied for the batch fallback"
        )
    schedule = algorithm.run(instance)  # type: ignore[attr-defined]
    return ScheduleController(
        plan=np.asarray(schedule.x),
        name=getattr(algorithm, "name", type(algorithm).__name__),
    )


def run_on_spine(
    algorithm: object,
    instance: ProblemInstance,
    *,
    hooks: Iterable[SlotHook] = (),
    keep_schedule: bool = True,
) -> SimulationResult:
    """Run an algorithm's controller form over a whole instance.

    This is the batch-compatibility adapter: every ``run()`` method in the
    project reduces to ``run_on_spine(self, instance).schedule``.
    """
    system = SystemDescription.from_instance(instance)
    controller = controller_for(algorithm, instance, system)
    return simulate(
        controller,
        iter_observations(instance),
        system,
        hooks=hooks,
        keep_schedule=keep_schedule,
    )
