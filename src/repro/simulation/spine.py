"""The streaming execution spine: one loop for every algorithm.

The paper's setting is inherently causal — observe slot t, decide x*_t,
pay the costs, move on. :func:`simulate` is the single implementation of
that loop: it drives any :class:`OnlineController` over an observation
stream, accounts all four paper costs incrementally
(:class:`repro.simulation.accounting.CostAccumulator`), tracks feasibility
residuals, calls pluggable per-slot hooks, and supports checkpoint/resume
plus a memory-bounded mode that never materializes the (T, I, J) schedule.

Every batch ``run()`` in the project (the paper's algorithm and all
baselines) is a thin adapter over this spine, so "batch" and "streamed"
execution are the same code path by construction. Generic controller
adapters (:class:`PerSlotController`, :class:`RecomputeController`,
:class:`ScheduleController`) live here so algorithm modules can build
their controller forms without import cycles; see docs/ENGINE.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..core.allocation import AllocationSchedule, FeasibilityReport
from ..core.costs import CostBreakdown
from ..core.problem import ProblemInstance
from ..telemetry import get_registry
from .accounting import AccumulatorState, CostAccumulator
from .hooks import SlotHook
from .observations import (
    OnlineController,
    SlotObservation,
    SystemDescription,
    iter_observations,
)


@dataclass(frozen=True)
class SimulationCheckpoint:
    """Everything needed to continue an interrupted run.

    Attributes:
        next_slot: how many slots have been processed (the resume point).
        controller_state: the controller's :meth:`get_state` snapshot, or
            ``None`` when the controller does not support checkpointing.
        accumulator_state: the cost accumulator snapshot.
        residuals: running (demand, capacity, negativity) maxima.
    """

    next_slot: int
    controller_state: object | None
    accumulator_state: AccumulatorState
    residuals: tuple[float, float, float]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one :func:`simulate` call.

    Attributes:
        schedule: the stacked (T, I, J) trajectory of the slots processed
            *by this call*, or ``None`` in memory-bounded mode
            (``keep_schedule=False``).
        breakdown: per-slot cost breakdown of the *whole* trajectory so far
            (including slots accounted before a resume).
        feasibility: worst constraint violations across the whole trajectory.
        slots: slots processed by this call.
        total_slots: slots accounted in total (resume-aware).
        wall_time_s: wall-clock seconds spent in this call's loop.
        checkpoint: state snapshot for resuming after the last slot.
    """

    schedule: AllocationSchedule | None
    breakdown: CostBreakdown
    feasibility: FeasibilityReport
    slots: int
    total_slots: int
    wall_time_s: float
    checkpoint: SimulationCheckpoint

    @property
    def total_cost(self) -> float:
        """The weighted P0 objective accumulated so far."""
        return self.breakdown.total


def simulate(
    controller: OnlineController,
    observations: Iterable[SlotObservation],
    system: SystemDescription,
    *,
    hooks: Iterable[SlotHook] = (),
    keep_schedule: bool = True,
    resume_from: SimulationCheckpoint | None = None,
    max_slots: int | None = None,
    aggregation: object | None = None,
) -> SimulationResult:
    """Drive a controller over an observation stream, one slot at a time.

    The controller never sees more than one slot; costs are accounted
    incrementally from ``(x_t, x_{t-1})`` so the run works on arbitrarily
    long streams.

    Args:
        controller: the decision maker (``reset()`` is called unless
            resuming).
        observations: the slot stream — a list, or a lazy generator such as
            :func:`repro.simulation.observations.iter_observations` for
            memory-bounded runs.
        system: the time-invariant system description (cost prices,
            capacities, weights).
        hooks: per-slot observers (:class:`SlotHook` instances).
        keep_schedule: when ``False``, each slot's allocation is dropped
            after accounting — memory stays O(I·J) regardless of horizon,
            and ``result.schedule`` is ``None``.
        resume_from: a previous result's ``checkpoint`` to continue from;
            the supplied ``observations`` must start at the checkpoint's
            ``next_slot``.
        max_slots: stop (checkpointably) after this many slots of the
            stream, leaving the rest unconsumed.
        aggregation: an :class:`repro.aggregate.AggregationConfig`; when
            set, the controller is converted to its cohort-aggregated form
            via its ``aggregated()`` method before the run (only
            controllers exposing one — the regularized controller —
            support this). See docs/SCALING.md.

    Returns:
        The :class:`SimulationResult`, whose ``checkpoint`` can seed a
        later ``resume_from``.
    """
    hooks = tuple(hooks)
    if aggregation is not None:
        aggregated = getattr(controller, "aggregated", None)
        if aggregated is None:
            raise ValueError(
                f"{type(controller).__name__} does not support aggregation= "
                "(no aggregated() method); construct the aggregated "
                "controller explicitly"
            )
        controller = aggregated(aggregation)
    accumulator = CostAccumulator(system)
    if resume_from is None:
        controller.reset()
        residual_demand = residual_capacity = residual_negativity = 0.0
    else:
        set_state = getattr(controller, "set_state", None)
        if set_state is None:
            raise ValueError(
                f"{type(controller).__name__} cannot resume: it has no set_state()"
            )
        set_state(resume_from.controller_state)
        accumulator.set_state(resume_from.accumulator_state)
        residual_demand, residual_capacity, residual_negativity = resume_from.residuals

    workloads = np.asarray(system.workloads, dtype=float)
    capacities = np.asarray(system.capacities, dtype=float)
    slots: list[np.ndarray] = []
    processed = 0

    for hook in hooks:
        hook.on_run_start(system, controller)

    telemetry = get_registry()
    observing = telemetry.enabled

    start = time.perf_counter()
    with telemetry.span("simulate", controller=getattr(controller, "name", "?")):
        stream = iter(observations)
        while max_slots is None or processed < max_slots:
            observation = next(stream, None)
            if observation is None:
                break
            for hook in hooks:
                hook.on_slot_start(observation)
            if observing:
                slot_start = time.perf_counter()
            x_t = np.asarray(controller.observe(observation), dtype=float)
            costs = accumulator.update(observation, x_t)
            if observing:
                slot_ms = (time.perf_counter() - slot_start) * 1000.0
                telemetry.histogram("slot.wall_ms").observe(slot_ms)
                telemetry.event(
                    "slot",
                    slot=observation.slot,
                    wall_ms=slot_ms,
                    op=costs.operation,
                    sq=costs.service_quality,
                    rc=costs.reconfiguration,
                    mg=costs.migration,
                    total=costs.total,
                )
                # A streaming sink flushes every N events; this per-slot
                # nudge makes its *time* policy effective too, so a
                # watcher's staleness is bounded by the flush interval
                # even when slots are slow and events sparse.
                telemetry.maybe_flush()
            residual_demand = max(
                residual_demand, float((workloads - x_t.sum(axis=0)).max())
            )
            residual_capacity = max(
                residual_capacity, float((x_t.sum(axis=1) - capacities).max())
            )
            residual_negativity = max(residual_negativity, float((-x_t).max()))
            if keep_schedule:
                slots.append(np.array(x_t, dtype=float))
            for hook in hooks:
                hook.on_slot_end(observation, x_t, costs)
            processed += 1
    elapsed = time.perf_counter() - start

    if accumulator.num_slots == 0:
        raise ValueError("simulate() needs at least one observation")
    for hook in hooks:
        hook.on_run_end(processed)

    get_state = getattr(controller, "get_state", None)
    residuals = (residual_demand, residual_capacity, residual_negativity)
    checkpoint = SimulationCheckpoint(
        next_slot=accumulator.num_slots,
        controller_state=get_state() if get_state is not None else None,
        accumulator_state=accumulator.get_state(),
        residuals=residuals,
    )
    return SimulationResult(
        schedule=AllocationSchedule.from_slots(slots) if slots else None,
        breakdown=accumulator.breakdown(),
        feasibility=FeasibilityReport(
            demand_violation=max(0.0, residual_demand),
            capacity_violation=max(0.0, residual_capacity),
            negativity_violation=max(0.0, residual_negativity),
        ),
        slots=processed,
        total_slots=accumulator.num_slots,
        wall_time_s=elapsed,
        checkpoint=checkpoint,
    )


# ----- generic controller adapters -------------------------------------------


@dataclass
class PerSlotController:
    """Adapter: a per-slot decision function becomes a controller.

    ``solve(observation, x_prev)`` returns the (I, J) decision; the adapter
    carries x*_{t-1} (zeros before the first slot) — the exact contract of
    the old ``run_per_slot`` batch loop, now expressed on the spine.
    """

    system: SystemDescription
    solve: Callable[[SlotObservation, np.ndarray], np.ndarray]
    name: str = "per-slot"

    def __post_init__(self) -> None:
        self._x_prev = self.system.zero_allocation()

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Delegate to the wrapped solver and advance the carried state."""
        x_t = np.asarray(self.solve(observation, self._x_prev), dtype=float)
        self._x_prev = x_t
        return x_t

    def reset(self) -> None:
        """Drop state: the next observation starts a fresh horizon."""
        self._x_prev = self.system.zero_allocation()

    def get_state(self) -> np.ndarray:
        """Snapshot x*_{t-1}."""
        return self._x_prev.copy()

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self._x_prev = np.asarray(state, dtype=float).copy()


@dataclass
class RecomputeController:
    """Adapter for hold-style policies: recompute sometimes, hold otherwise.

    ``solve(observation)`` produces a fresh allocation whenever due —
    every ``period`` slots, or only on the very first slot when ``period``
    is ``None`` (the decide-once static policy).
    """

    system: SystemDescription
    solve: Callable[[SlotObservation], np.ndarray]
    period: int | None = None
    name: str = "recompute"

    def __post_init__(self) -> None:
        if self.period is not None and self.period < 1:
            raise ValueError("period must be at least 1")
        self._current: np.ndarray | None = None
        self._seen = 0

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Recompute when due, otherwise hold the previous allocation."""
        due = self._current is None or (
            self.period is not None and self._seen % self.period == 0
        )
        if due:
            self._current = np.asarray(self.solve(observation), dtype=float)
        self._seen += 1
        return self._current

    def reset(self) -> None:
        """Drop state: the next observation recomputes from scratch."""
        self._current = None
        self._seen = 0

    def get_state(self) -> tuple[np.ndarray | None, int]:
        """Snapshot the held allocation and the slot counter."""
        current = None if self._current is None else self._current.copy()
        return (current, self._seen)

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        current, seen = state  # type: ignore[misc]
        self._current = None if current is None else np.asarray(current, dtype=float)
        self._seen = int(seen)


@dataclass
class ScheduleController:
    """Replay a precomputed (T, I, J) plan one slot at a time.

    This is the *privileged* adapter: the plan may have been computed with
    full-horizon knowledge (offline-opt), so feeding it through the spine
    does not certify causality — it unifies execution and accounting only.
    """

    plan: np.ndarray
    name: str = "schedule"

    def __post_init__(self) -> None:
        self.plan = np.asarray(self.plan, dtype=float)
        if self.plan.ndim != 3:
            raise ValueError("plan must have shape (T, I, J)")
        self._cursor = 0

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Emit the next planned slot."""
        if self._cursor >= self.plan.shape[0]:
            raise ValueError("plan exhausted: more observations than planned slots")
        x_t = self.plan[self._cursor]
        self._cursor += 1
        return x_t

    def reset(self) -> None:
        """Rewind to the first planned slot."""
        self._cursor = 0

    def get_state(self) -> int:
        """Snapshot the replay cursor."""
        return self._cursor

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self._cursor = int(state)


# ----- algorithm <-> controller bridging -------------------------------------


def controller_for(
    algorithm: object,
    instance: ProblemInstance | None = None,
    system: SystemDescription | None = None,
) -> OnlineController:
    """The controller form of an algorithm.

    Resolution order:

    1. ``algorithm.as_controller(system)`` — the causal form (sees only
       the observation stream);
    2. ``algorithm.as_instance_controller(instance)`` — the privileged
       form for algorithms that legitimately need (some of) the future,
       e.g. lookahead windows or the offline optimum;
    3. fallback: run the batch ``algorithm.run(instance)`` once and replay
       its schedule through a :class:`ScheduleController`.

    Algorithms whose ``run()`` delegates to the spine MUST implement one of
    the first two forms, otherwise the fallback would recurse.
    """
    if system is None:
        if instance is None:
            raise ValueError("need an instance or a system description")
        system = SystemDescription.from_instance(instance)
    as_controller = getattr(algorithm, "as_controller", None)
    if as_controller is not None:
        return as_controller(system)
    as_instance_controller = getattr(algorithm, "as_instance_controller", None)
    if as_instance_controller is not None:
        if instance is None:
            raise ValueError(
                f"{getattr(algorithm, 'name', type(algorithm).__name__)} needs the "
                "full instance for its controller form"
            )
        return as_instance_controller(instance)
    if instance is None:
        raise ValueError(
            f"{getattr(algorithm, 'name', type(algorithm).__name__)} has no "
            "controller form and no instance was supplied for the batch fallback"
        )
    schedule = algorithm.run(instance)  # type: ignore[attr-defined]
    return ScheduleController(
        plan=np.asarray(schedule.x),
        name=getattr(algorithm, "name", type(algorithm).__name__),
    )


def run_on_spine(
    algorithm: object,
    instance: ProblemInstance,
    *,
    hooks: Iterable[SlotHook] = (),
    keep_schedule: bool = True,
) -> SimulationResult:
    """Run an algorithm's controller form over a whole instance.

    This is the batch-compatibility adapter: every ``run()`` method in the
    project reduces to ``run_on_spine(self, instance).schedule``.
    """
    system = SystemDescription.from_instance(instance)
    controller = controller_for(algorithm, instance, system)
    return simulate(
        controller,
        iter_observations(instance),
        system,
        hooks=hooks,
        keep_schedule=keep_schedule,
    )
