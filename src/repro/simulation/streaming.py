"""Compatibility facade for the streaming (slot-by-slot) interface.

The streaming layer grew into a package of focused modules — this module
re-exports the original names so existing imports keep working:

* observation model → :mod:`repro.simulation.observations`
* the execution loop → :mod:`repro.simulation.spine` (:func:`simulate`)
* the paper algorithm's controller → :mod:`repro.simulation.controllers`
* the greedy controller → :mod:`repro.baselines.greedy` (lazily re-exported
  here, because the baselines build on the simulation package)

:func:`replay` remains the one-call way to feed a full instance through a
controller; it now simply drives the shared spine.
"""

from __future__ import annotations

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from .controllers import RegularizedController
from .observations import (
    OnlineController,
    SlotObservation,
    SystemDescription,
    observations_from_instance,
    single_slot_instance,
)
from .spine import simulate

__all__ = [
    "GreedyController",
    "OnlineController",
    "RegularizedController",
    "SlotObservation",
    "SystemDescription",
    "observations_from_instance",
    "replay",
    "single_slot_instance",
]


def replay(
    controller: OnlineController, instance: ProblemInstance
) -> AllocationSchedule:
    """Feed an instance through a controller slot by slot.

    The controller never sees more than one slot at a time; the returned
    schedule can be scored by the usual cost model. This is a thin wrapper
    over :func:`repro.simulation.spine.simulate`, which also exposes
    incremental cost accounting, hooks, and checkpoint/resume.
    """
    system = SystemDescription.from_instance(instance)
    result = simulate(controller, observations_from_instance(instance), system)
    assert result.schedule is not None
    return result.schedule


def __getattr__(name: str):
    """Lazily re-export :class:`GreedyController` from the baselines layer
    (which builds on this package, so an eager import would be circular)."""
    if name == "GreedyController":
        from ..baselines.greedy import GreedyController

        return GreedyController
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
