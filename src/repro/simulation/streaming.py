"""Streaming (slot-by-slot) interface for online algorithms.

The batch engine hands algorithms the whole :class:`ProblemInstance`, which
is convenient but lets a buggy "online" algorithm peek at the future. This
module enforces online-ness structurally: a :class:`SlotObservation` carries
exactly what the operator observes at the *start* of slot t — the current
operation prices, user attachments and access delays — plus the
time-invariant system description. A controller maps observations to
allocations; :func:`replay` feeds a full instance through a controller one
slot at a time and rebuilds the schedule.

Controllers for the paper's algorithm and the greedy baseline are provided;
``replay`` of either provably matches the corresponding batch run (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..baselines.greedy import OnlineGreedy
from ..core.allocation import AllocationSchedule
from ..core.problem import CostWeights, ProblemInstance
from ..core.regularization import OnlineRegularizedAllocator
from ..pricing.bandwidth import MigrationPrices


@dataclass(frozen=True)
class SystemDescription:
    """The time-invariant part of the system, known to the operator upfront."""

    workloads: np.ndarray
    capacities: np.ndarray
    reconfig_prices: np.ndarray
    migration_prices: MigrationPrices
    inter_cloud_delay: np.ndarray
    weights: CostWeights = field(default_factory=CostWeights)

    @classmethod
    def from_instance(cls, instance: ProblemInstance) -> "SystemDescription":
        return cls(
            workloads=np.asarray(instance.workloads, dtype=float),
            capacities=np.asarray(instance.capacities, dtype=float),
            reconfig_prices=np.asarray(instance.reconfig_prices, dtype=float),
            migration_prices=instance.migration_prices,
            inter_cloud_delay=np.asarray(instance.inter_cloud_delay, dtype=float),
            weights=instance.weights,
        )

    @property
    def num_clouds(self) -> int:
        return int(np.asarray(self.capacities).size)

    @property
    def num_users(self) -> int:
        return int(np.asarray(self.workloads).size)


@dataclass(frozen=True)
class SlotObservation:
    """What the operator sees at the start of one time slot.

    Attributes:
        slot: the slot index t (informational).
        op_prices: (I,) operation prices a_{i,t} for this slot.
        attachment: (J,) current user attachments l_{j,t}.
        access_delay: (J,) current access delays d(j, l_{j,t}).
    """

    slot: int
    op_prices: np.ndarray
    attachment: np.ndarray
    access_delay: np.ndarray

    def __post_init__(self) -> None:
        if np.asarray(self.op_prices).ndim != 1:
            raise ValueError("op_prices must be a (I,) vector")
        if np.asarray(self.attachment).shape != np.asarray(self.access_delay).shape:
            raise ValueError("attachment and access_delay must be index-aligned")


class OnlineController(Protocol):
    """A causal controller: observation in, allocation out, state inside."""

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Decide the (I, J) allocation for the observed slot."""
        ...

    def reset(self) -> None:
        """Forget all state (start a new run)."""
        ...


def _single_slot_instance(
    system: SystemDescription, observation: SlotObservation
) -> ProblemInstance:
    """Wrap one observation as a one-slot ProblemInstance."""
    return ProblemInstance(
        workloads=system.workloads,
        capacities=system.capacities,
        op_prices=np.asarray(observation.op_prices, dtype=float)[None, :],
        reconfig_prices=system.reconfig_prices,
        migration_prices=system.migration_prices,
        inter_cloud_delay=system.inter_cloud_delay,
        attachment=np.asarray(observation.attachment)[None, :],
        access_delay=np.asarray(observation.access_delay, dtype=float)[None, :],
        weights=system.weights,
    )


@dataclass
class RegularizedController:
    """Streaming form of :class:`OnlineRegularizedAllocator`.

    Carries x*_{t-1} as internal state; each observation triggers one P2
    solve. Identical decisions to the batch algorithm by construction (P2
    for slot t depends only on slot-t observations and x*_{t-1}).
    """

    system: SystemDescription
    algorithm: OnlineRegularizedAllocator = field(
        default_factory=OnlineRegularizedAllocator
    )
    name: str = "online-approx (streaming)"

    def __post_init__(self) -> None:
        self._x_prev = np.zeros((self.system.num_clouds, self.system.num_users))

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Solve P2 for the observed slot and advance the internal state."""
        instance = _single_slot_instance(self.system, observation)
        x_opt, _result = self.algorithm.step(instance, 0, self._x_prev)
        self._x_prev = x_opt
        return x_opt

    def reset(self) -> None:
        """Drop state: the next observation starts a fresh horizon."""
        self._x_prev = np.zeros((self.system.num_clouds, self.system.num_users))


@dataclass
class GreedyController:
    """Streaming form of :class:`OnlineGreedy`."""

    system: SystemDescription
    name: str = "online-greedy (streaming)"

    def __post_init__(self) -> None:
        self._x_prev = np.zeros((self.system.num_clouds, self.system.num_users))

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Solve the greedy slot LP and advance the internal state."""
        instance = _single_slot_instance(self.system, observation)
        x_opt = OnlineGreedy.solve_slot(instance, 0, self._x_prev)
        self._x_prev = x_opt
        return x_opt

    def reset(self) -> None:
        """Drop state: the next observation starts a fresh horizon."""
        self._x_prev = np.zeros((self.system.num_clouds, self.system.num_users))


def observations_from_instance(instance: ProblemInstance) -> list[SlotObservation]:
    """Decompose an instance into its per-slot observation stream."""
    return [
        SlotObservation(
            slot=t,
            op_prices=np.asarray(instance.op_prices, dtype=float)[t],
            attachment=np.asarray(instance.attachment)[t],
            access_delay=np.asarray(instance.access_delay, dtype=float)[t],
        )
        for t in range(instance.num_slots)
    ]


def replay(controller: OnlineController, instance: ProblemInstance) -> AllocationSchedule:
    """Feed an instance through a controller slot by slot.

    The controller never sees more than one slot at a time; the returned
    schedule can be scored by the usual cost model.
    """
    controller.reset()
    slots = [
        controller.observe(observation)
        for observation in observations_from_instance(instance)
    ]
    return AllocationSchedule.from_slots(slots)
