"""Batched sweep execution: lockstep P2 solves across concurrent cells.

A ratio sweep's cells spend nearly all of their wall-clock inside per-slot
P2 solves that are individually tiny, so Python dispatch overhead around
the NumPy arithmetic dominates. This runner executes a group of cells as
*threads* whose regularized allocators route their structured-IPM solves
through one :class:`~repro.solvers.batched.BatchCoordinator`: whenever
every live cell is blocked on (or done with) its current solve, the whole
pending set runs as **one** stacked barrier solve
(:func:`repro.solvers.batched.solve_batch`).

Everything else about a cell is untouched — warm starts, feasibility
repair, the circuit breaker, SciPy fallback, telemetry tagging — because
the only swap is the allocator's *backend*: each cell gets a private
``FallbackBackend(DeferringBackend(coordinator), ScipyTrustConstrBackend())``
whose primary defers into the shared batch and whose failure semantics are
exactly the sequential ones (a failed lane raises in the requesting
thread). Results are therefore bit-identical to the serial sweep, pinned
by ``tests/simulation/test_batched_sweep.py``.

With ``workers > 1`` the cells are split into contiguous groups, one
group per worker process (fanned out via the executor's pool machinery,
including the optional shared-memory transport); each group runs its own
in-process lockstep rendezvous. Per-cell telemetry snapshots are merged
into the caller's registry in input order, exactly like
:meth:`repro.parallel.SweepExecutor.map`, so metric aggregates match the
classic paths at any worker count.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import threading
import time
import traceback
from typing import Any, Iterable, Sequence

from ..core.regularization import OnlineRegularizedAllocator
from ..parallel.executor import (
    CellResult,
    SweepError,
    SweepExecutor,
    _wrap_cell_spans,
    resolve_workers,
)
from ..solvers.batched import BatchCoordinator, DeferringBackend
from ..solvers.registry import FallbackBackend
from ..solvers.scipy_backend import ScipyTrustConstrBackend
from ..telemetry import (
    MetricsRegistry,
    TraceContext,
    current_trace,
    get_registry,
    telemetry_enabled,
    thread_registry,
    trace_scope,
    trace_span,
)


def _prepare_cell(cell: Any, coordinator: BatchCoordinator) -> Any:
    """A copy of ``cell`` whose regularized allocators defer into the batch.

    Each cell gets *deep copies* of its allocators — the same isolation the
    process pool provides by pickling — so concurrent cells never share
    mutable allocator state. Algorithms without a swappable backend (the
    baselines, aggregated allocators resolving their backend by registry
    name) run unchanged; their cells simply never enter the rendezvous as
    solvers, only as participants that eventually finish.
    """
    algorithms = []
    swapped = False
    for algorithm in cell.algorithms:
        if isinstance(algorithm, OnlineRegularizedAllocator):
            clone = copy.deepcopy(algorithm)
            clone.backend = FallbackBackend(
                DeferringBackend(coordinator), ScipyTrustConstrBackend()
            )
            algorithms.append(clone)
            swapped = True
        else:
            algorithms.append(algorithm)
    if not swapped:
        return cell
    return dataclasses.replace(cell, algorithms=tuple(algorithms))


def _thread_execute(
    cell: Any, telemetry: bool, trace: TraceContext | None = None
) -> CellResult:
    """Run one cell in the current thread with executor failure semantics.

    Mirrors :func:`repro.parallel.executor._execute_one`, except the fresh
    per-cell registry is installed as a *thread-local* override — the
    process-global registry cannot be swapped while sibling cell threads
    are recording. The cell's trace context (if any) is likewise
    thread-local, which is what lets the batch coordinator capture each
    submitting cell's own context at ``submit()`` time.
    """
    registry = MetricsRegistry() if telemetry else None
    start = time.perf_counter()
    try:
        if registry is not None:
            with thread_registry(registry):
                if trace is not None:
                    with trace_scope(trace), registry.context(
                        trace_id=trace.trace_id
                    ):
                        value = cell.execute()
                else:
                    value = cell.execute()
        else:
            value = cell.execute()
    except Exception as exc:  # noqa: BLE001 - structured capture is the point
        return CellResult(
            key=cell.key,
            value=None,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            wall_time_s=time.perf_counter() - start,
            pid=os.getpid(),
            telemetry=registry.snapshot() if registry is not None else None,
        )
    return CellResult(
        key=cell.key,
        value=value,
        error=None,
        traceback=None,
        wall_time_s=time.perf_counter() - start,
        pid=os.getpid(),
        telemetry=registry.snapshot() if registry is not None else None,
    )


def _run_group(
    cells: Sequence[Any],
    telemetry: bool,
    traces: Sequence[TraceContext | None] | None = None,
) -> list[CellResult]:
    """Execute one group of cells as lockstep threads; results in order."""
    coordinator = BatchCoordinator(total=len(cells))
    prepared = [_prepare_cell(cell, coordinator) for cell in cells]
    results: list[CellResult | None] = [None] * len(cells)
    if traces is None:
        traces = [None] * len(cells)

    def run(index: int) -> None:
        try:
            results[index] = _thread_execute(
                prepared[index], telemetry, traces[index]
            )
        finally:
            # Unconditionally: a participant that never finishes would
            # stall the rendezvous for every other cell in the group.
            coordinator.finish()

    threads = [
        threading.Thread(
            target=run, args=(index,), name=f"batched-cell-{cells[index].key}"
        )
        for index in range(len(cells))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    final: list[CellResult] = []
    for index, result in enumerate(results):
        if result is None:  # thread died outside _thread_execute
            result = CellResult(
                key=cells[index].key,
                value=None,
                error="RuntimeError: batched cell thread produced no result",
                traceback=None,
                wall_time_s=0.0,
                pid=os.getpid(),
            )
        final.append(result)
    return final


def _run_group_item(item: "tuple[Any, ...]") -> list[CellResult]:
    """Module-level pool target: one worker process runs one cell group.

    Accepts ``(cells, telemetry)`` or ``(cells, telemetry, traces)`` — the
    per-cell trace contexts ride the pickled item alongside the cells.
    """
    cells, telemetry, *rest = item
    traces = rest[0] if rest else None
    return _run_group(cells, telemetry, traces)


def _split_groups(cells: list[Any], workers: int) -> list[list[Any]]:
    """Contiguous, near-equal groups (at most ``workers`` of them)."""
    count = min(workers, len(cells))
    size, extra = divmod(len(cells), count)
    groups = []
    cursor = 0
    for index in range(count):
        width = size + (1 if index < extra else 0)
        groups.append(cells[cursor : cursor + width])
        cursor += width
    return groups


def run_cells_batched(
    cells: Iterable[Any],
    *,
    workers: int | None = 1,
    use_shm: bool = False,
) -> list[CellResult]:
    """Run sweep cells with lockstep-batched P2 solves.

    Drop-in alternative to ``SweepExecutor.run_cells``: same cell types,
    same :class:`CellResult` contract (failures structured per cell,
    output order = input order), same telemetry aggregation, bit-identical
    results — but the regularized allocators' structured-IPM solves execute
    as stacked batches instead of one at a time.

    Args:
        cells: anything with ``key``, ``algorithms``, and ``execute()``
            (normally :class:`repro.simulation.cells.SweepCell`).
        workers: worker processes; 1 runs one in-process thread group,
            ``None``/``0`` uses all visible CPUs. Each worker receives one
            contiguous group of cells and batches within it.
        use_shm: ship the cell groups to workers through the shared-memory
            arena transport (:mod:`repro.parallel.shm`).
    """
    cells = list(cells)
    if not cells:
        return []
    telemetry = telemetry_enabled()
    resolved = resolve_workers(workers)
    if telemetry and current_trace() is not None:
        # Same dispatch discipline as SweepExecutor.map: one child context
        # per cell, minted under a dispatch span and stamped back onto the
        # merged cell roots, so batched fan-out traces stay connected.
        with trace_span(
            "sweep.batched", cells=len(cells), workers=resolved
        ):
            dispatch = current_trace()
            contexts = [dispatch.child() for _ in cells]
            return _run_batched(cells, telemetry, resolved, use_shm, contexts)
    return _run_batched(cells, telemetry, resolved, use_shm, None)


def _run_batched(
    cells: list[Any],
    telemetry: bool,
    resolved: int,
    use_shm: bool,
    contexts: Sequence[TraceContext] | None,
) -> list[CellResult]:
    traces: Sequence[TraceContext | None] = (
        contexts if contexts is not None else [None] * len(cells)
    )
    if resolved <= 1 or len(cells) <= 1:
        results = _run_group(cells, telemetry, traces)
    else:
        groups = _split_groups(cells, resolved)
        # _split_groups is deterministic in the input length, so slicing
        # the trace list with it keeps contexts aligned with their cells.
        trace_groups = _split_groups(list(traces), resolved)
        executor = SweepExecutor(max_workers=len(groups), use_shm=use_shm)
        items = [
            (group, telemetry, group_traces)
            for group, group_traces in zip(groups, trace_groups)
        ]
        keys = list(range(len(groups)))
        if use_shm:
            group_results = executor._map_pool_shm(  # noqa: SLF001
                _run_group_item, items, keys, False
            )
        else:
            group_results = executor._map_pool(  # noqa: SLF001
                _run_group_item, items, keys, False
            )
        results = []
        for group_result in group_results:
            if not group_result.ok:
                raise SweepError(
                    f"batched cell group {group_result.key} failed: "
                    f"{group_result.error}\n{group_result.traceback}"
                )
            results.extend(group_result.value)
    if telemetry:
        # Identical merge discipline to SweepExecutor.map: fold per-cell
        # snapshots into the caller's registry in input order, the one
        # fixed order every execution path shares.
        registry = get_registry()
        registry.counter("sweep.cells").inc(len(cells))
        registry.gauge("sweep.workers").set(resolved)
        for result, trace in zip(results, traces):
            if result.telemetry is not None:
                registry.merge_snapshot(_wrap_cell_spans(result, trace))
            registry.histogram("sweep.cell_wall_s").observe(result.wall_time_s)
        registry.flush()
    return results
