"""Discrete-time simulation: scenarios, the engine, and result containers."""

from .engine import compare_algorithms, run_algorithm
from .results import Comparison, RunResult, aggregate_ratios
from .scenario import Scenario
from .streaming import (
    GreedyController,
    OnlineController,
    RegularizedController,
    SlotObservation,
    SystemDescription,
    observations_from_instance,
    replay,
)

__all__ = [
    "Comparison",
    "GreedyController",
    "OnlineController",
    "RegularizedController",
    "RunResult",
    "Scenario",
    "SlotObservation",
    "SystemDescription",
    "aggregate_ratios",
    "compare_algorithms",
    "observations_from_instance",
    "replay",
    "run_algorithm",
]
